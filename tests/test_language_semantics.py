"""End-to-end language semantics: compile + execute tiny programs.

These tests pin down C semantics through the whole pipeline (lexer →
parser → sema → lowering → VM), one behaviour each.
"""

import pytest

from repro.errors import VMTrap

from helpers import c_main, c_output, expr_value, run_c


class TestArithmetic:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("1 + 2", 3),
            ("10 - 4", 6),
            ("6 * 7", 42),
            ("7 / 2", 3),
            ("-7 / 2", -3),  # C truncates toward zero
            ("7 % 3", 1),
            ("-7 % 3", -1),
            ("1 << 4", 16),
            ("-16 >> 2", -4),  # arithmetic shift
            ("0xF0 & 0x1F", 16),
            ("0xF0 | 0x0F", 255),
            ("0xFF ^ 0x0F", 240),
            ("~0", -1),
            ("-(-5)", 5),
            ("!0", 1),
            ("!42", 0),
        ],
    )
    def test_operator(self, expression, expected):
        assert expr_value(expression) == expected

    def test_signed_overflow_wraps(self):
        assert expr_value("2147483647 + 1") == -2147483648

    def test_multiplication_wraps(self):
        assert expr_value("65536 * 65536") == 0

    def test_division_by_zero_traps(self):
        with pytest.raises(VMTrap):
            run_c(c_main("int z = 0; print_int(1 / z);"))

    def test_modulo_by_zero_traps(self):
        with pytest.raises(VMTrap):
            run_c(c_main("int z = 0; print_int(1 % z);"))

    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("1 < 2", 1),
            ("2 < 1", 0),
            ("2 <= 2", 1),
            ("3 > 2", 1),
            ("2 >= 3", 0),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("-1 < 0", 1),
        ],
    )
    def test_comparison(self, expression, expected):
        assert expr_value(expression) == expected


class TestShortCircuit:
    def test_and_skips_rhs(self):
        out = c_output(
            c_main(
                "int hit = 0;",
                prelude="int side(int *p) { *p = 1; return 1; }",
            ).replace(
                "int hit = 0;",
                "int hit = 0; int r = 0 && side(&hit);"
                " print_int(hit); print_int(r);",
            )
        )
        assert out == "00"

    def test_or_skips_rhs(self):
        source = c_main(
            "int hit = 0; int r = 1 || side(&hit);"
            " print_int(hit); print_int(r);",
            prelude="int side(int *p) { *p = 1; return 0; }",
        )
        assert c_output(source) == "01"

    def test_and_evaluates_rhs_when_needed(self):
        source = c_main(
            "int hit = 0; int r = 1 && side(&hit);"
            " print_int(hit); print_int(r);",
            prelude="int side(int *p) { *p = 1; return 7; }",
        )
        assert c_output(source) == "11"  # && normalizes to 1

    def test_conditional_evaluates_one_branch(self):
        source = c_main(
            "int a = 0; int b = 0;"
            " int r = 1 ? set(&a) : set(&b);"
            " print_int(a); print_int(b); print_int(r);",
            prelude="int set(int *p) { *p = 1; return 9; }",
        )
        assert c_output(source) == "109"


class TestControlFlow:
    def test_if_else_chain(self):
        source = c_main(
            "int x = 5;"
            " if (x < 0) print_int(0);"
            " else if (x == 5) print_int(1);"
            " else print_int(2);"
        )
        assert c_output(source) == "1"

    def test_while_loop(self):
        assert c_output(c_main(
            "int i = 0; int s = 0; while (i < 5) { s += i; i++; } print_int(s);"
        )) == "10"

    def test_do_while_runs_once(self):
        assert c_output(c_main(
            "int n = 0; do { n++; } while (0); print_int(n);"
        )) == "1"

    def test_for_loop(self):
        assert c_output(c_main(
            "int s = 0; int i; for (i = 1; i <= 4; i++) s *= 10, s += i;"
            " print_int(s);"
        )) == "1234"

    def test_break(self):
        assert c_output(c_main(
            "int i; for (i = 0; i < 100; i++) { if (i == 3) break; }"
            " print_int(i);"
        )) == "3"

    def test_continue(self):
        assert c_output(c_main(
            "int s = 0; int i;"
            " for (i = 0; i < 5; i++) { if (i % 2) continue; s += i; }"
            " print_int(s);"
        )) == "6"

    def test_nested_break_only_inner(self):
        assert c_output(c_main(
            "int count = 0; int i; int j;"
            " for (i = 0; i < 3; i++)"
            "   for (j = 0; j < 10; j++) { if (j == 2) break; count++; }"
            " print_int(count);"
        )) == "6"

    def test_switch_dispatch(self):
        source = c_main(
            "int i; for (i = 0; i < 5; i++) {"
            " switch (i) {"
            " case 0: print_int(10); break;"
            " case 2: print_int(12); break;"
            " default: print_int(99); break;"
            " } }"
        )
        assert c_output(source) == "1099129999"

    def test_switch_fallthrough(self):
        source = c_main(
            "switch (1) { case 1: print_int(1); case 2: print_int(2); break;"
            " case 3: print_int(3); }"
        )
        assert c_output(source) == "12"

    def test_switch_break_in_loop(self):
        source = c_main(
            "int i; for (i = 0; i < 3; i++) {"
            " switch (i) { case 1: break; default: print_int(i); } }"
        )
        assert c_output(source) == "02"


class TestPointersAndArrays:
    def test_address_and_dereference(self):
        assert c_output(c_main(
            "int a = 5; int *p = &a; *p = 7; print_int(a);"
        )) == "7"

    def test_array_indexing(self):
        assert c_output(c_main(
            "int a[4]; int i; for (i = 0; i < 4; i++) a[i] = i * i;"
            " print_int(a[3]);"
        )) == "9"

    def test_pointer_arithmetic_scaling(self):
        assert c_output(c_main(
            "int a[3]; int *p = a; a[0] = 1; a[1] = 2; a[2] = 3;"
            " print_int(*(p + 2));"
        )) == "3"

    def test_pointer_difference(self):
        assert c_output(c_main(
            "int a[10]; int *p = &a[7]; int *q = &a[2]; print_int(p - q);"
        )) == "5"

    def test_char_pointer_walk(self):
        assert c_output(c_main(
            'char *s = "abc"; int n = 0; while (*s) { n++; s++; } print_int(n);'
        )) == "3"

    def test_pointer_increment_in_deref(self):
        assert c_output(c_main(
            'char *s = "xy"; print_int(*s++); print_int(*s);'
        )) == f"{ord('x')}{ord('y')}"

    def test_2d_array(self):
        assert c_output(c_main(
            "int m[2][3]; int i; int j;"
            " for (i = 0; i < 2; i++) for (j = 0; j < 3; j++) m[i][j] = i * 3 + j;"
            " print_int(m[1][2]);"
        )) == "5"

    def test_array_decay_to_function(self):
        source = c_main(
            "int a[3]; a[0] = 4; a[1] = 5; a[2] = 6; print_int(total(a, 3));",
            prelude="int total(int *p, int n) { int s = 0; int i;"
            " for (i = 0; i < n; i++) s += p[i]; return s; }",
        )
        assert c_output(source) == "15"

    def test_null_deref_traps(self):
        with pytest.raises(VMTrap):
            run_c(c_main("int *p = 0; print_int(*p);"))

    def test_negative_address_traps(self):
        with pytest.raises(VMTrap):
            run_c(c_main("int *p = (int *)(0 - 64); *p = 1;"))

    def test_local_array_initializer(self):
        assert c_output(c_main(
            "int a[3] = {7, 8}; print_int(a[0] + a[1] + a[2]);"
        )) == "15"

    def test_local_string_initializer(self):
        assert c_output(c_main(
            'char s[8] = "hi"; print_str(s);'
        )) == "hi"


class TestChars:
    def test_char_truncation(self):
        assert c_output(c_main("char c = 300; print_int(c);")) == "44"

    def test_char_sign_extension(self):
        assert c_output(c_main("char c = 200; print_int(c);")) == "-56"

    def test_char_array_round_trip(self):
        assert c_output(c_main(
            "char buf[4]; buf[0] = 'A'; buf[1] = buf[0] + 1; buf[2] = 0;"
            " print_str(buf);"
        )) == "AB"

    def test_cast_to_char(self):
        assert expr_value("(char)0x1FF") == -1


class TestFunctions:
    def test_recursion(self):
        source = c_main(
            "print_int(fact(6));",
            prelude="int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }",
        )
        assert c_output(source) == "720"

    def test_mutual_recursion(self):
        source = c_main(
            "print_int(is_even(10)); print_int(is_odd(10));",
            prelude=(
                "int is_odd(int n);"
                "int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }"
                "int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }"
            ),
        )
        assert c_output(source) == "10"

    def test_arguments_by_value(self):
        source = c_main(
            "int x = 1; bump(x); print_int(x);",
            prelude="void bump(int v) { v = 99; }",
        )
        assert c_output(source) == "1"

    def test_out_parameter(self):
        source = c_main(
            "int x = 1; bump(&x); print_int(x);",
            prelude="void bump(int *v) { *v = 99; }",
        )
        assert c_output(source) == "99"

    def test_function_pointer_call(self):
        source = c_main(
            "int (*op)(int a, int b) = add; print_int(op(2, 3));"
            " op = mul; print_int(op(2, 3));",
            prelude=(
                "int add(int a, int b) { return a + b; }"
                "int mul(int a, int b) { return a * b; }"
            ),
        )
        assert c_output(source) == "56"

    def test_function_pointer_table(self):
        source = c_main(
            "int i; for (i = 0; i < 2; i++) print_int(ops[i](6, 3));",
            prelude=(
                "int add(int a, int b) { return a + b; }"
                "int sub(int a, int b) { return a - b; }"
                "int (*ops[2])(int a, int b) = {add, sub};"
            ),
        )
        assert c_output(source) == "93"

    def test_deep_recursion_overflows(self):
        source = c_main(
            "print_int(deep(1000000));",
            prelude=(
                "int deep(int n) { char pad[512];"
                " pad[0] = n; if (n <= 0) return pad[0];"
                " return deep(n - 1); }"
            ),
        )
        with pytest.raises(VMTrap, match="stack overflow"):
            run_c(source)


class TestGlobals:
    def test_scalar_initializer(self):
        assert c_output(c_main("print_int(g);", prelude="int g = 42;")) == "42"

    def test_zero_initialized_by_default(self):
        assert c_output(c_main("print_int(g);", prelude="int g;")) == "0"

    def test_array_initializer(self):
        source = c_main(
            "print_int(t[0] + t[1] + t[4]);",
            prelude="int t[5] = {10, 20, 30};",
        )
        assert c_output(source) == "30"

    def test_string_global(self):
        source = c_main("print_str(msg);", prelude='char msg[] = "hey";')
        assert c_output(source) == "hey"

    def test_pointer_to_string_global(self):
        source = c_main("print_str(msg);", prelude='char *msg = "yo";')
        assert c_output(source) == "yo"

    def test_global_modified_across_calls(self):
        source = c_main(
            "tick(); tick(); tick(); print_int(count);",
            prelude="int count = 0; void tick(void) { count++; }",
        )
        assert c_output(source) == "3"

    def test_constant_expression_initializer(self):
        source = c_main("print_int(g);", prelude="int g = (3 + 4) * 2;")
        assert c_output(source) == "14"


class TestStructsAtRuntime:
    def test_field_store_load(self):
        source = c_main(
            "struct point p; p.x = 3; p.y = 4;"
            " print_int(p.x * p.x + p.y * p.y);",
            prelude="struct point { int x; int y; };",
        )
        assert c_output(source) == "25"

    def test_struct_pointer_arrow(self):
        source = c_main(
            "struct point p; init(&p); print_int(p.y);",
            prelude=(
                "struct point { int x; int y; };"
                "void init(struct point *p) { p->x = 1; p->y = 2; }"
            ),
        )
        assert c_output(source) == "2"

    def test_struct_assignment_copies(self):
        source = c_main(
            "struct pair a; struct pair b; a.lo = 1; a.hi = 2;"
            " b = a; a.lo = 9; print_int(b.lo); print_int(b.hi);",
            prelude="struct pair { int lo; int hi; };",
        )
        assert c_output(source) == "12"

    def test_struct_with_char_fields_layout(self):
        source = c_main(
            "print_int(sizeof(struct mix));",
            prelude="struct mix { char c; int i; char d; };",
        )
        assert c_output(source) == "12"  # 1 + pad3 + 4 + 1 + pad3

    def test_linked_list(self):
        source = c_main(
            "struct node a; struct node b; a.value = 1; b.value = 2;"
            " a.next = &b; b.next = 0;"
            " { struct node *p = &a; int s = 0;"
            "   while (p) { s += p->value; p = p->next; } print_int(s); }",
            prelude="struct node { int value; struct node *next; };",
        )
        assert c_output(source) == "3"

    def test_array_of_structs(self):
        source = c_main(
            "struct item v[3]; int i;"
            " for (i = 0; i < 3; i++) { v[i].id = i; v[i].score = i * 10; }"
            " print_int(v[2].score + v[1].id);",
            prelude="struct item { int id; int score; };",
        )
        assert c_output(source) == "21"


class TestSizeof:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("sizeof(int)", 4),
            ("sizeof(char)", 1),
            ("sizeof(int *)", 4),
            ("sizeof(char *)", 4),
        ],
    )
    def test_sizeof_types(self, expression, expected):
        assert expr_value(expression) == expected

    def test_sizeof_array_variable(self):
        assert c_output(c_main("int a[10]; print_int(sizeof a);")) == "40"


class TestIncrementDecrement:
    def test_post_increment_value(self):
        assert c_output(c_main("int a = 5; print_int(a++); print_int(a);")) == "56"

    def test_pre_increment_value(self):
        assert c_output(c_main("int a = 5; print_int(++a); print_int(a);")) == "66"

    def test_post_decrement_on_array_element(self):
        assert c_output(c_main(
            "int a[2]; a[1] = 3; print_int(a[1]--); print_int(a[1]);"
        )) == "32"

    def test_pointer_increment_scales(self):
        assert c_output(c_main(
            "int a[2]; int *p = a; a[0] = 1; a[1] = 2; p++; print_int(*p);"
        )) == "2"

    def test_compound_assignment_all(self):
        source = c_main(
            "int a = 100;"
            " a += 5; a -= 1; a *= 2; a /= 4; a %= 13;"
            " a <<= 3; a &= 60; a |= 3; a ^= 1; a >>= 1;"
            " print_int(a);"
        )
        a = 100
        a += 5; a -= 1; a *= 2; a //= 4; a %= 13
        a <<= 3; a &= 60; a |= 3; a ^= 1; a >>= 1
        assert c_output(source) == str(a)
