"""Tests for the experiment harness: pipeline and table builders."""

import pytest

from repro.experiments.pipeline import (
    aggregate_dynamic_breakdown,
    run_benchmark,
    run_suite,
)
from repro.experiments.report import fixed, pct, render_table
from repro.experiments.tables import (
    all_tables,
    post_inline_breakdown,
    table1,
    table2,
    table3,
    table4,
)
from repro.inliner.classify import SiteClass
from repro.workloads import benchmark_by_name


@pytest.fixture(scope="module")
def two_results():
    """Pipeline results for a cheap benchmark pair (module-scoped)."""
    return [
        run_benchmark(benchmark_by_name("wc"), "small"),
        run_benchmark(benchmark_by_name("cmp"), "small"),
    ]


class TestPipeline:
    def test_outputs_match_flag(self, two_results):
        assert all(result.outputs_match for result in two_results)

    def test_wc_barely_changes(self, two_results):
        wc = two_results[0]
        assert wc.call_decrease <= 0.05
        assert wc.code_increase <= 0.05

    def test_cmp_halves_calls(self, two_results):
        cmp_result = two_results[1]
        assert 0.35 <= cmp_result.call_decrease <= 0.65

    def test_per_call_metrics_positive(self, two_results):
        for result in two_results:
            assert result.ils_per_call > 0
            assert result.cts_per_call >= 0

    def test_avg_il_thousands(self, two_results):
        for result in two_results:
            assert result.avg_il_thousands == pytest.approx(
                result.profile.avg_il / 1000.0
            )

    def test_run_suite_subset(self):
        results = run_suite("small", names=["tee"])
        assert [r.name for r in results] == ["tee"]

    def test_breakdown_fractions_sum_to_one(self, two_results):
        mix = aggregate_dynamic_breakdown(two_results)
        assert sum(mix.values()) == pytest.approx(1.0)


class TestTables:
    def test_table1_contains_row_per_benchmark(self, two_results):
        text = table1(two_results)
        assert "wc" in text and "cmp" in text
        assert "input description" in text

    def test_table2_has_avg_row(self, two_results):
        text = table2(two_results)
        assert "AVG" in text
        assert "external" in text and "safe" in text

    def test_table3_reports_calls(self, two_results):
        text = table3(two_results)
        assert "Dynamic" in text

    def test_table4_has_avg_and_sd(self, two_results):
        text = table4(two_results)
        assert "AVG" in text and "SD" in text
        assert "code inc" in text and "call dec" in text

    def test_breakdown_mentions_paper_numbers(self, two_results):
        text = post_inline_breakdown(two_results)
        assert "56.1" in text  # the paper's reference values in the title

    def test_all_tables_reports_verification(self, two_results):
        text = all_tables(two_results)
        assert "byte-identical" in text

    def test_wc_row_shape_matches_paper(self, two_results):
        # Paper Table 4: wc has 0% code inc and 0% call dec.
        text = table4(two_results)
        wc_row = next(line for line in text.splitlines() if line.startswith("wc"))
        assert "0%" in wc_row


class TestClassifiedFractionsInPipeline:
    def test_wc_dynamic_calls_mostly_external(self, two_results):
        wc = two_results[0]
        assert wc.classified.dynamic_fraction(SiteClass.EXTERNAL) > 0.9

    def test_cmp_split_between_safe_and_external(self, two_results):
        cmp_result = two_results[1]
        safe = cmp_result.classified.dynamic_fraction(SiteClass.SAFE)
        external = cmp_result.classified.dynamic_fraction(SiteClass.EXTERNAL)
        assert safe == pytest.approx(0.5, abs=0.15)
        assert external == pytest.approx(0.5, abs=0.15)


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table("T", ["col", "x"], [["a", "1"], ["bb", "22"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[2].startswith("---")

    def test_pct(self):
        assert pct(0.1234) == "12.3%"
        assert pct(0.5, 0) == "50%"

    def test_fixed_inf(self):
        assert fixed(float("inf")) == "inf"
        assert fixed(3.14159, 2) == "3.14"
