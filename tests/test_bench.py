"""Tests for bench telemetry records, comparison, and reports."""

import json

import pytest

from repro.cli import main as cli_main
from repro.observability import Observability
from repro.observability.bench import (
    BENCH_SCHEMA_VERSION,
    BenchRecord,
    BenchRecorder,
    collect_phase_seconds,
    compare,
    load_record,
)
from repro.observability.report import (
    load_trace,
    render_comparison_table,
    render_flamegraph,
    render_html_report,
    render_markdown_report,
)
from repro.pipeline.manager import pass_timings


@pytest.fixture(scope="module")
def record():
    """One real two-benchmark record, shared across the module."""
    return BenchRecorder(config_name="t", names=["wc", "tee"]).run()


class TestBenchRecord:
    def test_record_contents(self, record):
        assert record.schema_version == BENCH_SCHEMA_VERSION
        assert set(record.benchmarks) == {"wc", "tee"}
        wc = record.benchmarks["wc"]
        assert wc["counters"]["il"] > 0
        assert wc["post_counters"]["calls"] <= wc["counters"]["calls"]
        assert wc["code_size_after"] >= wc["code_size_before"]
        assert wc["outputs_match"]
        assert "ACCEPTED" in wc["audit"] or wc["audit"]
        assert record.audit_total
        assert record.config["name"] == "t"
        assert record.created_unix > 0

    def test_phase_and_pass_seconds_present(self, record):
        assert "benchmark.compile" in record.phase_seconds
        assert "benchmark.profile" in record.phase_seconds
        assert record.phase_seconds["benchmark.compile"]["count"] == 2
        # the five optimizer passes and six inliner phases all report
        assert "constant-fold" in record.pass_seconds
        assert "select" in record.pass_seconds
        for stats in record.pass_seconds.values():
            assert set(stats) == {
                "seconds",
                "invocations",
                "changes",
                "p50",
                "p90",
                "p99",
            }

    def test_round_trip_and_self_compare(self, record, tmp_path):
        path = record.write(str(tmp_path / "BENCH_t.json"))
        loaded = load_record(path)
        assert loaded.to_dict() == record.to_dict()
        comparison = compare(record, loaded)
        assert comparison.regressions == []
        assert comparison.ok()
        assert comparison.verdict() == "PASS"

    def test_default_path_uses_config_name(self, record):
        assert record.default_path() == "BENCH_t.json"

    def test_schema_version_gate(self, tmp_path):
        payload = {"kind": "bench_record", "schema_version": 999}
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            load_record(str(path))
        with pytest.raises(ValueError, match="not a bench record"):
            BenchRecord.from_dict({"schema_version": BENCH_SCHEMA_VERSION})

    def test_jobs2_counts_match_serial(self, record):
        parallel = BenchRecorder(
            config_name="t2", names=["wc", "tee"], jobs=2
        ).run()
        comparison = compare(record, parallel)
        assert comparison.regressions == []
        assert comparison.ok()
        # and the reverse direction too: parallel introduced nothing
        assert compare(parallel, record).regressions == []


class TestCompare:
    def _doctor(self, record, benchmark, metric, factor):
        payload = json.loads(json.dumps(record.to_dict()))
        payload["benchmarks"][benchmark]["counters"][metric] = int(
            payload["benchmarks"][benchmark]["counters"][metric] * factor
        )
        return BenchRecord.from_dict(payload)

    def test_inflated_counts_regress(self, record):
        doctored = self._doctor(record, "wc", "il", 2)
        comparison = compare(record, doctored)
        assert not comparison.ok()
        offenders = {(d.benchmark, d.metric) for d in comparison.regressions}
        assert ("wc", "il") in offenders

    def test_reduced_counts_improve(self, record):
        doctored = self._doctor(record, "wc", "il", 0.5)
        comparison = compare(record, doctored)
        assert comparison.ok()
        improved = {(d.benchmark, d.metric) for d in comparison.improvements}
        assert ("wc", "il") in improved

    def test_epsilon_tolerates_small_drift(self, record):
        doctored = self._doctor(record, "wc", "il", 1.005)
        assert not compare(record, doctored).ok()
        assert compare(record, doctored, epsilon=0.01).ok()

    def test_missing_benchmark_fails(self, record):
        payload = record.to_dict()
        del payload["benchmarks"]["tee"]
        shrunk = BenchRecord.from_dict(json.loads(json.dumps(payload)))
        comparison = compare(record, shrunk)
        assert comparison.missing_benchmarks == ["tee"]
        assert not comparison.ok()
        # the other direction is an addition, not a failure
        assert compare(shrunk, record).ok()

    def test_time_regressions_do_not_gate_by_default(self, record):
        payload = record.to_dict()
        for stats in payload["phase_seconds"].values():
            stats["seconds"] *= 10
        payload["wall_seconds"] *= 10
        slower = BenchRecord.from_dict(json.loads(json.dumps(payload)))
        comparison = compare(record, slower)
        assert comparison.time_regressions
        assert comparison.regressions == []
        assert comparison.ok()
        assert not comparison.ok(fail_on_time=True)


class TestRendering:
    def test_comparison_table_names_offender(self, record):
        payload = json.loads(json.dumps(record.to_dict()))
        payload["benchmarks"]["wc"]["counters"]["calls"] *= 4
        doctored = BenchRecord.from_dict(payload)
        text = render_comparison_table(compare(record, doctored))
        assert "REGRESSED" in text
        assert "wc" in text and "calls" in text

    def test_markdown_report_sections(self, record):
        text = render_markdown_report(compare(record, record))
        assert "# Performance report" in text
        assert "PASS" in text
        assert "Per-pass time attribution" in text
        assert "constant-fold" in text
        assert "Inline-audit reason rollup" in text

    def test_html_report_is_standalone(self, record):
        text = render_html_report(compare(record, record))
        assert text.startswith("<!doctype html>")
        assert "<table>" in text and "</html>" in text


class TestFlamegraph:
    def test_renders_span_tree(self, tmp_path):
        obs = Observability.create()
        with obs.tracer.span("suite"):
            with obs.tracer.span("benchmark"):
                with obs.tracer.span("benchmark.compile"):
                    pass
            with obs.tracer.span("benchmark"):
                pass
        path = tmp_path / "trace.jsonl"
        obs.tracer.write(str(path))
        flame = render_flamegraph(load_trace(str(path)))
        lines = flame.splitlines()
        assert lines[0].startswith("suite")
        assert any(line.startswith("  benchmark") for line in lines)
        assert any("x2" in line for line in lines if "benchmark " in line)
        assert any("benchmark.compile" in line for line in lines)

    def test_empty_trace(self):
        assert "no spans" in render_flamegraph([])


class TestHelpers:
    def test_collect_phase_seconds(self):
        obs = Observability.create()
        with obs.tracer.span("alpha"):
            pass
        with obs.tracer.span("alpha"):
            pass
        obs.tracer.event("not-a-span")
        phases = collect_phase_seconds(obs.tracer)
        assert phases["alpha"]["count"] == 2
        assert phases["alpha"]["seconds"] >= 0

    def test_pass_timings_schema(self):
        obs = Observability.create()
        obs.metrics.observe("pipeline.pass.fold.seconds", 0.25)
        obs.metrics.observe("pipeline.pass.fold.seconds", 0.75)
        obs.metrics.inc("pipeline.pass.fold.changes", 3)
        obs.metrics.observe("unrelated.seconds", 1.0)
        timings = pass_timings(obs.metrics)
        assert set(timings) == {"fold"}
        assert timings["fold"]["seconds"] == pytest.approx(1.0)
        assert timings["fold"]["invocations"] == 2
        assert timings["fold"]["changes"] == 3


class TestBenchCli:
    def test_bench_writes_record_and_report_round_trips(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = cli_main(["bench", "--benchmarks", "wc", "--config", "suite"])
        assert code == 0
        record_path = tmp_path / "BENCH_suite.json"
        assert record_path.exists()
        payload = json.loads(record_path.read_text())
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert "wc" in payload["benchmarks"]
        capsys.readouterr()

        code = cli_main(["report", str(record_path), str(record_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_report_exits_nonzero_naming_offender(self, tmp_path, capsys):
        record = BenchRecorder(config_name="one", names=["wc"]).run()
        base_path = record.write(str(tmp_path / "BENCH_base.json"))
        payload = json.loads(json.dumps(record.to_dict()))
        payload["benchmarks"]["wc"]["counters"]["il"] *= 2
        doctored = BenchRecord.from_dict(payload)
        cur_path = doctored.write(str(tmp_path / "BENCH_cur.json"))

        code = cli_main(["report", base_path, cur_path])
        captured = capsys.readouterr()
        assert code == 1
        assert "wc" in captured.err and "il" in captured.err

    def test_report_formats(self, tmp_path, capsys):
        record = BenchRecorder(config_name="fmt", names=["wc"]).run()
        path = record.write(str(tmp_path / "BENCH_fmt.json"))
        out_path = tmp_path / "report.html"
        code = cli_main(
            ["report", path, "--format", "html", "-o", str(out_path)]
        )
        assert code == 0
        assert out_path.read_text().startswith("<!doctype html>")
        capsys.readouterr()

    def test_experiments_bench_out(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main

        out = tmp_path / "BENCH_exp.json"
        code = experiments_main(
            [
                "table4",
                "--benchmarks",
                "wc",
                "tee",
                "--jobs",
                "2",
                "--bench-out",
                str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        record = load_record(str(out))
        assert record.config["jobs"] == 2
        assert set(record.benchmarks) == {"wc", "tee"}
        assert compare(record, record).ok()
