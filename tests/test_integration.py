"""Integration tests: the full pipeline on every benchmark.

The load-bearing guarantee of the whole reproduction: for each of the
twelve benchmarks, profile-guided inline expansion (with and without
the post-inline optimizer) preserves every observable output on every
profiling input, while meaningfully reducing dynamic calls on the
call-intensive programs.
"""

import pytest

from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.opt import optimize_module
from repro.profiler.profile import profile_module, run_once
from repro.workloads import benchmark_by_name, benchmark_names

#: Paper Table 4 call-decrease bands we must stay shape-compatible with:
#: high (>=60%), mid (20-65%), none (~0%).
_EXPECTED_BAND = {
    "cccp": "high",
    "cmp": "mid",
    "compress": "high",
    "eqn": "mid",
    "espresso": "high",
    "grep": "high",
    "lex": "high",
    "make": "high",
    "tar": "mid",
    "tee": "none",
    "wc": "none",
    "yacc": "high",
}


@pytest.mark.parametrize("name", benchmark_names())
def test_full_pipeline_on_benchmark(name):
    benchmark = benchmark_by_name(name)
    module = benchmark.compile()
    optimize_module(module)
    specs = benchmark.make_runs("small")

    profile = profile_module(module, specs)
    result = inline_module(module, profile)
    optimize_module(result.module)

    calls_before = 0
    calls_after = 0
    for spec in specs:
        base = run_once(module, spec)
        inlined = run_once(result.module, spec)
        assert inlined.exit_code == base.exit_code == 0, spec.label
        assert inlined.stdout == base.stdout, spec.label
        assert inlined.os.written_files == base.os.written_files, spec.label
        calls_before += base.counters.calls
        calls_after += inlined.counters.calls

    decrease = 1 - calls_after / calls_before
    band = _EXPECTED_BAND[name]
    if band == "high":
        assert decrease >= 0.55, f"{name}: {decrease:.2%}"
    elif band == "mid":
        assert 0.2 <= decrease <= 0.7, f"{name}: {decrease:.2%}"
    else:
        assert decrease <= 0.05, f"{name}: {decrease:.2%}"


@pytest.mark.parametrize("name", ["grep", "compress", "make"])
def test_code_growth_within_cap(name):
    benchmark = benchmark_by_name(name)
    module = benchmark.compile()
    specs = benchmark.make_runs("small")
    profile = profile_module(module, specs)
    params = InlineParameters(size_limit_factor=1.25)
    result = inline_module(module, profile, params)
    # Selection respects the 1.25x cap on projected size; physical
    # expansion matches the projection because commit() mirrors
    # expand_call_site's accounting.
    assert result.final_size <= int(result.original_size * 1.25) + 1


@pytest.mark.parametrize("name", ["espresso", "yacc"])
def test_function_pointer_programs_survive(name):
    """Programs with ### arcs keep their indirect calls working."""
    benchmark = benchmark_by_name(name)
    module = benchmark.compile()
    specs = benchmark.make_runs("small")
    profile = profile_module(module, specs)
    result = inline_module(module, profile)
    for spec in specs:
        assert run_once(result.module, spec).exit_code == 0


def test_second_inline_round_still_correct():
    """A second profile-and-inline round stays semantics-preserving and
    keeps making progress monotonically (never adds dynamic calls)."""
    benchmark = benchmark_by_name("grep")
    module = benchmark.compile()
    specs = benchmark.make_runs("small")
    profile = profile_module(module, specs)
    first = inline_module(module, profile)
    profile2 = profile_module(first.module, specs)
    second = inline_module(first.module, profile2)
    profile3 = profile_module(second.module, specs)
    assert profile3.avg_calls <= profile2.avg_calls
    # External calls can never be expanded away, whatever the round.
    externals = {"read_stdin", "write_stdout", "getchar", "putchar"}
    remaining = sum(
        weight
        for name, weight in profile3.node_weights.items()
        if name in externals
    )
    assert remaining > 0
    for spec in specs:
        assert (
            run_once(second.module, spec).stdout
            == run_once(module, spec).stdout
        )
