"""Unit tests for the IL layer: instructions, functions, modules,
printer, and verifier."""

import pytest

from repro.errors import ILError
from repro.compiler import compile_program
from repro.il.function import CALL_OVERHEAD_BYTES, ILFunction
from repro.il.instructions import (
    Instr,
    Opcode,
    is_control_transfer,
    is_real,
    is_terminator,
)
from repro.il.module import GlobalData, ILModule, InitItem
from repro.il.printer import format_function, format_instr, format_module
from repro.il.verifier import verify_module


def minimal_function(name="f", params=(), returns=False):
    fn = ILFunction(name, list(params), returns)
    fn.body.append(Instr(Opcode.RET, a=0 if returns else None))
    return fn


def minimal_module():
    module = ILModule("main")
    module.add_function(minimal_function("main", returns=True))
    return module


class TestInstr:
    def test_copy_is_deep_enough(self):
        instr = Instr(Opcode.CALL, dst="t0", name="f", args=["a", 1], site=3)
        clone = instr.copy()
        clone.args.append("x")
        assert instr.args == ["a", 1]

    def test_sources_for_bin(self):
        instr = Instr(Opcode.BIN, dst="t", op2="+", a="x", b=2)
        assert list(instr.sources()) == ["x", 2]
        assert instr.source_regs() == ["x"]

    def test_sources_for_call(self):
        instr = Instr(Opcode.CALL, dst="t", name="f", args=["a", "b", 3])
        assert instr.source_regs() == ["a", "b"]

    def test_sources_for_icall_include_pointer(self):
        instr = Instr(Opcode.ICALL, dst="t", a="fp", args=["x"])
        assert instr.source_regs() == ["fp", "x"]

    def test_replace_regs(self):
        instr = Instr(Opcode.BIN, dst="t", op2="+", a="x", b="y")
        instr.replace_regs({"x": "x2", "t": "t2"})
        assert instr.a == "x2" and instr.b == "y" and instr.dst == "t2"

    def test_labels_used_switch(self):
        instr = Instr(Opcode.SWITCH, a="v", cases=[(1, "L1"), (2, "L2")], label2="LD")
        assert instr.labels_used() == ["L1", "L2", "LD"]

    def test_retarget_labels(self):
        instr = Instr(Opcode.CJUMP, a="c", label="A", label2="B")
        instr.retarget_labels({"A": "X"})
        assert instr.label == "X" and instr.label2 == "B"

    def test_classification_predicates(self):
        assert is_real(Instr(Opcode.MOV, dst="a", a="b"))
        assert not is_real(Instr(Opcode.LABEL, label="L"))
        assert is_control_transfer(Instr(Opcode.JUMP, label="L"))
        assert not is_control_transfer(Instr(Opcode.CALL, name="f"))
        assert is_terminator(Instr(Opcode.RET))
        assert not is_terminator(Instr(Opcode.CONST, dst="t", a=1))


class TestILFunction:
    def test_fresh_names_unique(self):
        fn = ILFunction("f", [], False)
        names = {fn.new_temp() for _ in range(100)}
        assert len(names) == 100

    def test_frame_layout_alignment(self):
        fn = ILFunction("f", [], False)
        fn.add_slot("a", 1, 1)
        fn.add_slot("b", 4, 4)
        fn.add_slot("c", 2, 1)
        size = fn.layout_frame()
        assert fn.slots["b"].offset == 4
        assert size % 4 == 0

    def test_duplicate_slot_raises(self):
        fn = ILFunction("f", [], False)
        fn.add_slot("a", 4)
        with pytest.raises(ILError):
            fn.add_slot("a", 4)

    def test_stack_usage_includes_overhead_and_params(self):
        fn = ILFunction("f", ["p0", "p1"], False)
        fn.add_slot("buf", 100, 4)
        fn.layout_frame()
        assert fn.stack_usage() == CALL_OVERHEAD_BYTES + 100 + 8

    def test_code_size_ignores_labels(self):
        fn = minimal_function()
        fn.body.insert(0, Instr(Opcode.LABEL, label="L"))
        assert fn.code_size() == 1

    def test_clone_independent(self):
        fn = minimal_function()
        fn.add_slot("s", 8)
        clone = fn.clone()
        clone.body.append(Instr(Opcode.RET))
        clone.slots["s"].size = 16
        assert len(fn.body) == 1
        assert fn.slots["s"].size == 8


class TestILModule:
    def test_site_ids_unique(self):
        module = ILModule()
        assert module.new_site_id() != module.new_site_id()

    def test_intern_string_deduplicates(self):
        module = ILModule()
        a = module.intern_string("hello")
        b = module.intern_string("hello")
        c = module.intern_string("other")
        assert a == b and a != c

    def test_clone_preserves_site_counter(self):
        module = minimal_module()
        module.new_site_id()
        clone = module.clone()
        assert clone.new_site_id() == module.new_site_id()

    def test_clone_deep_copies_functions(self):
        module = minimal_module()
        clone = module.clone()
        clone.functions["main"].body.clear()
        assert len(module.functions["main"].body) == 1

    def test_duplicate_function_raises(self):
        module = minimal_module()
        with pytest.raises(ILError):
            module.add_function(minimal_function("main", returns=True))

    def test_total_code_size(self):
        module = minimal_module()
        assert module.total_code_size() == 1


class TestVerifier:
    def test_minimal_module_passes(self):
        verify_module(minimal_module())

    def test_missing_entry(self):
        module = ILModule("main")
        module.add_function(minimal_function("other"))
        with pytest.raises(ILError, match="entry"):
            verify_module(module)

    def test_unknown_label(self):
        module = minimal_module()
        module.functions["main"].body.insert(
            0, Instr(Opcode.JUMP, label="nowhere")
        )
        with pytest.raises(ILError, match="unknown label"):
            verify_module(module)

    def test_unknown_frame_slot(self):
        module = minimal_module()
        module.functions["main"].body.insert(
            0, Instr(Opcode.FRAME, dst="t", name="nope")
        )
        with pytest.raises(ILError, match="slot"):
            verify_module(module)

    def test_unknown_global(self):
        module = minimal_module()
        module.functions["main"].body.insert(
            0, Instr(Opcode.GADDR, dst="t", name="nope")
        )
        with pytest.raises(ILError, match="global"):
            verify_module(module)

    def test_unknown_callee(self):
        module = minimal_module()
        module.functions["main"].body.insert(
            0, Instr(Opcode.CALL, name="ghost", site=module.new_site_id())
        )
        with pytest.raises(ILError, match="unknown function"):
            verify_module(module)

    def test_declared_external_callee_ok(self):
        module = minimal_module()
        module.declare_external("ghost")
        module.functions["main"].body.insert(
            0, Instr(Opcode.CALL, name="ghost", site=module.new_site_id())
        )
        verify_module(module)

    def test_arity_mismatch(self):
        module = minimal_module()
        module.add_function(minimal_function("g", params=["p0"]))
        module.functions["main"].body.insert(
            0, Instr(Opcode.CALL, name="g", args=[], site=module.new_site_id())
        )
        with pytest.raises(ILError, match="args"):
            verify_module(module)

    def test_duplicate_site_ids(self):
        module = minimal_module()
        module.add_function(minimal_function("g"))
        main = module.functions["main"]
        main.body.insert(0, Instr(Opcode.CALL, name="g", site=7))
        main.body.insert(0, Instr(Opcode.CALL, name="g", site=7))
        with pytest.raises(ILError, match="duplicate call-site"):
            verify_module(module)

    def test_missing_site_id(self):
        module = minimal_module()
        module.add_function(minimal_function("g"))
        module.functions["main"].body.insert(0, Instr(Opcode.CALL, name="g"))
        with pytest.raises(ILError, match="site"):
            verify_module(module)

    def test_fall_off_end(self):
        module = ILModule("main")
        fn = ILFunction("main", [], True)
        fn.body.append(Instr(Opcode.CONST, dst="t", a=1))
        module.add_function(fn)
        with pytest.raises(ILError, match="fall off"):
            verify_module(module)

    def test_read_before_write(self):
        module = minimal_module()
        module.functions["main"].body.insert(
            0, Instr(Opcode.MOV, dst="a", a="never_written")
        )
        with pytest.raises(ILError, match="before written"):
            verify_module(module)


class TestPrinter:
    def test_format_covers_all_opcodes(self):
        module = compile_program(
            """
            #include <sys.h>
            int pick(int (*f)(int x), int v) { return f(v); }
            int twice(int x) { return x * 2; }
            int main(void) {
                int a[4];
                int i = 0;
                switch (getchar()) { case 1: i = 1; break; default: i = 2; }
                a[i] = pick(twice, i);
                while (i < 3) i++;
                return a[1];
            }
            """,
            link_libc=False,
        )
        text = format_module(module)
        for fragment in ("call", "icall", "switch", "cjump", "jump",
                         "load", "store", "frame", "faddr", "ret"):
            assert fragment in text, fragment

    def test_format_instr_const(self):
        assert "= const #5" in format_instr(Instr(Opcode.CONST, dst="t", a=5))

    def test_format_function_header(self):
        fn = minimal_function("f", params=("p0",), returns=True)
        text = format_function(fn)
        assert text.startswith("func f(p0) -> value")
