"""Unit tests for the parser (AST structure, not execution)."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.parser import parse_translation_unit as parse
from repro.frontend.typesys import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
)


def first_fn(text):
    return parse(text).functions[0]


def main_body(statements):
    return first_fn(f"int main(void) {{ {statements} }}").body.statements


def first_expr(statements):
    stmt = main_body(statements)[0]
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestTopLevel:
    def test_empty_unit(self):
        unit = parse("")
        assert unit.functions == [] and unit.globals == []

    def test_function_definition(self):
        fn = first_fn("int add(int a, int b) { return a + b; }")
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.signature.type.return_type == IntType(4)

    def test_void_parameter_list(self):
        fn = first_fn("int f(void) { return 0; }")
        assert fn.params == []

    def test_prototype_recorded(self):
        unit = parse("int f(int x);")
        assert "f" in unit.declared_only
        assert unit.functions == []

    def test_global_variable(self):
        unit = parse("int counter = 3;")
        assert unit.globals[0].name == "counter"

    def test_global_array(self):
        unit = parse("int table[10];")
        assert unit.globals[0].var_type == ArrayType(IntType(4), 10)

    def test_global_2d_array(self):
        unit = parse("char grid[3][5];")
        grid = unit.globals[0].var_type
        assert grid == ArrayType(ArrayType(IntType(1), 5), 3)

    def test_unsized_array_from_initializer(self):
        unit = parse("int t[] = {1, 2, 3};")
        assert unit.globals[0].var_type.length == 3

    def test_unsized_char_array_from_string(self):
        unit = parse('char s[] = "hi";')
        assert unit.globals[0].var_type.length == 3  # includes NUL

    def test_multiple_declarators(self):
        unit = parse("int a, b = 2, *p;")
        assert [g.name for g in unit.globals] == ["a", "b", "p"]
        assert unit.globals[2].var_type == PointerType(IntType(4))

    def test_inline_keyword_sets_hint(self):
        fn = first_fn("inline int f(void) { return 1; }")
        assert fn.inline_hint

    def test_static_and_extern_tolerated(self):
        fn = first_fn("static int f(void) { return 1; }")
        assert not fn.inline_hint


class TestStructs:
    def test_struct_definition(self):
        unit = parse("struct point { int x; int y; };")
        struct = unit.structs["point"]
        assert isinstance(struct, StructType)
        assert struct.field("y").offset == 4

    def test_struct_usage_in_function(self):
        text = (
            "struct p { int x; int y; };"
            "int f(struct p *q) { return q->x; }"
        )
        fn = parse(text).functions[0]
        assert isinstance(fn.params[0].param_type, PointerType)

    def test_struct_with_array_member(self):
        unit = parse("struct buf { char data[16]; int len; };")
        struct = unit.structs["buf"]
        assert struct.field("len").offset == 16

    def test_struct_redefinition_raises(self):
        with pytest.raises(ParseError):
            parse("struct a { int x; }; struct a { int y; };")

    def test_nested_struct_pointer(self):
        unit = parse(
            "struct node { int value; struct node *next; };"
        )
        node = unit.structs["node"]
        assert node.field("next").type == PointerType(node)


class TestFunctionPointers:
    def test_function_pointer_declarator(self):
        unit = parse("int (*handler)(int a, int b);")
        var_type = unit.globals[0].var_type
        assert isinstance(var_type, PointerType)
        assert isinstance(var_type.pointee, FunctionType)
        assert len(var_type.pointee.param_types) == 2

    def test_function_pointer_array(self):
        unit = parse("int (*table[4])(int x);")
        var_type = unit.globals[0].var_type
        assert isinstance(var_type, ArrayType)
        assert var_type.length == 4

    def test_function_pointer_parameter(self):
        fn = first_fn("int apply(int (*f)(int v), int x) { return f(x); }")
        param = fn.params[0].param_type
        assert isinstance(param, PointerType)
        assert isinstance(param.pointee, FunctionType)


class TestStatements:
    def test_if_else(self):
        stmt = main_body("if (1) ; else ;")[0]
        assert isinstance(stmt, ast.If) and stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        stmt = main_body("if (1) if (2) ; else ;")[0]
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_while(self):
        assert isinstance(main_body("while (0) ;")[0], ast.While)

    def test_do_while(self):
        assert isinstance(main_body("do ; while (0);")[0], ast.DoWhile)

    def test_for_all_clauses(self):
        stmt = main_body("for (1; 2; 3) ;")[0]
        assert stmt.init is not None and stmt.cond is not None and stmt.step is not None

    def test_for_empty_clauses(self):
        stmt = main_body("for (;;) break;")[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_for_with_declaration(self):
        stmt = main_body("for (int i = 0; i < 3; i++) ;")[0]
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_switch_cases(self):
        stmt = main_body(
            "switch (1) { case 1: break; case 2: case 3: break; default: break; }"
        )[0]
        assert isinstance(stmt, ast.Switch)
        values = [case.value for case in stmt.cases]
        assert values == [1, 2, 3, None]

    def test_switch_duplicate_case_raises(self):
        with pytest.raises(ParseError):
            main_body("switch (1) { case 1: break; case 1: break; }")

    def test_declarations_in_block(self):
        statements = main_body("int a = 1; char c; a = 2;")
        assert isinstance(statements[0], ast.DeclStmt)
        assert isinstance(statements[1], ast.DeclStmt)

    def test_return_value(self):
        stmt = main_body("return 5;")[0]
        assert isinstance(stmt, ast.Return)
        assert isinstance(stmt.value, ast.IntLiteral)

    def test_empty_statement(self):
        assert isinstance(main_body(";")[0], ast.EmptyStmt)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = first_expr("1 + 2 * 3;")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_compare(self):
        expr = first_expr("1 << 2 < 3;")
        assert expr.op == "<"

    def test_left_associativity(self):
        expr = first_expr("10 - 4 - 3;")
        assert expr.op == "-" and expr.left.op == "-"

    def test_assignment_right_associative(self):
        expr = first_expr("a = b = 1;", )
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_conditional(self):
        expr = first_expr("1 ? 2 : 3;")
        assert isinstance(expr, ast.Conditional)

    def test_comma_operator(self):
        expr = first_expr("1, 2;")
        assert isinstance(expr, ast.Binary) and expr.op == ","

    def test_call_with_arguments(self):
        expr = first_expr("f(1, 2, 3);")
        assert isinstance(expr, ast.Call) and len(expr.args) == 3

    def test_chained_postfix(self):
        expr = first_expr("a[1][2];")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_member_chain(self):
        expr = first_expr("p->next->value;")
        assert isinstance(expr, ast.Member) and expr.arrow

    def test_sizeof_type(self):
        expr = first_expr("sizeof(int);")
        assert isinstance(expr, ast.SizeofType)

    def test_sizeof_expression(self):
        expr = first_expr("sizeof x;")
        assert isinstance(expr, ast.Unary) and expr.op == "sizeof"

    def test_cast(self):
        expr = first_expr("(char)65;")
        assert isinstance(expr, ast.Cast)

    def test_cast_vs_parenthesized_expr(self):
        expr = first_expr("(x);")
        assert isinstance(expr, ast.Identifier)

    def test_address_and_deref(self):
        expr = first_expr("*&x;")
        assert expr.op == "*" and expr.operand.op == "&"

    def test_string_concatenation(self):
        expr = first_expr('"ab" "cd";')
        assert isinstance(expr, ast.StringLiteral)
        assert expr.value == "abcd"

    def test_compound_assignment(self):
        expr = first_expr("a += 2;")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_pre_and_post_increment(self):
        pre = first_expr("++a;")
        post = first_expr("a++;")
        assert isinstance(pre, ast.Unary)
        assert isinstance(post, ast.PostIncDec)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "int f( { }",
            "int f(void) { return }",
            "int f(void) { if }",
            "int x = ;",
            "int f(void) { a + ; }",
            "int f(void) { case 1: ; }",
            "int [] x;",
            "int f(void) { int a[0]; }",
            "int f(void) {",
        ],
    )
    def test_malformed_input_raises(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_location(self):
        with pytest.raises(ParseError) as info:
            parse("int f(void) {\n  return\n}")
        assert info.value.location.line >= 2
