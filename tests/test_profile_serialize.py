"""Tests for profile persistence (the profiler-to-compiler interface)."""

import pytest

from repro.compiler import compile_program
from repro.inliner.manager import inline_module
from repro.profiler import (
    RunSpec,
    dump_profile,
    load_profile,
    module_fingerprint,
    profile_module,
)

PROGRAM = """
#include <sys.h>
int helper(int x) { return x + 1; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 25; i++)
        s += helper(i);
    print_int(s);
    return 0;
}
"""


def prepared():
    module = compile_program(PROGRAM)
    profile = profile_module(module, [RunSpec()])
    return module, profile


class TestRoundTrip:
    def test_weights_survive(self):
        module, profile = prepared()
        restored = load_profile(dump_profile(profile, module), module)
        assert restored.node_weights == profile.node_weights
        assert restored.arc_weights == profile.arc_weights
        assert restored.runs == profile.runs
        assert restored.avg_il == profile.avg_il

    def test_restored_profile_drives_inlining(self):
        module, profile = prepared()
        restored = load_profile(dump_profile(profile, module), module)
        direct = inline_module(module, profile)
        via_file = inline_module(module, restored)
        assert direct.expanded_sites == via_file.expanded_sites

    def test_profile_without_fingerprint_loads_anywhere(self):
        module, profile = prepared()
        text = dump_profile(profile)  # unbound
        other = compile_program("int main(void) { return 0; }")
        restored = load_profile(text, other)
        assert restored.runs == profile.runs


class TestFingerprint:
    def test_same_module_same_fingerprint(self):
        module_a = compile_program(PROGRAM)
        module_b = compile_program(PROGRAM)
        assert module_fingerprint(module_a) == module_fingerprint(module_b)

    def test_clone_preserves_fingerprint(self):
        module, _ = prepared()
        assert module_fingerprint(module) == module_fingerprint(module.clone())

    def test_changed_call_sites_change_fingerprint(self):
        module, _ = prepared()
        other = compile_program(PROGRAM.replace("helper(i)", "helper(i) + helper(0)"))
        assert module_fingerprint(module) != module_fingerprint(other)

    def test_stale_profile_rejected(self):
        module, profile = prepared()
        text = dump_profile(profile, module)
        changed = compile_program(
            PROGRAM.replace("helper(i)", "helper(i) + helper(0)")
        )
        with pytest.raises(ValueError, match="fingerprint"):
            load_profile(text, changed)

    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="format"):
            load_profile('{"format": 99, "runs": 1}')
