"""Robustness fuzzing: the frontend must never crash with anything but
a ReproError, no matter the input."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.errors import ReproError
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse_translation_unit
from repro.frontend.preprocessor import preprocess
from repro.compiler import compile_program

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_PRINTABLE = st.text(
    alphabet=st.characters(min_codepoint=9, max_codepoint=126), max_size=80
)

# Token soup: structurally plausible garbage is better at finding
# parser holes than uniform noise.
_TOKENS = st.lists(
    st.sampled_from(
        "int char void struct if else while for return break continue "
        "switch case default do sizeof ( ) { } [ ] ; , * & + - / % = "
        "== != < > <= >= && || ! ~ ? : 0 1 42 'a' \"str\" x y foo "
        "#define #include #ifdef #endif".split()
    ),
    max_size=30,
).map(" ".join)


class TestNoCrashes:
    @_SETTINGS
    @given(_PRINTABLE)
    def test_lexer_total(self, text):
        try:
            tokenize(text)
        except ReproError:
            pass

    @_SETTINGS
    @given(_PRINTABLE)
    def test_preprocessor_total(self, text):
        try:
            preprocess(text)
        except ReproError:
            pass

    @_SETTINGS
    @given(_TOKENS)
    def test_parser_total_on_token_soup(self, text):
        try:
            parse_translation_unit(text)
        except ReproError:
            pass

    @_SETTINGS
    @given(_TOKENS)
    def test_full_compile_total_on_token_soup(self, text):
        try:
            compile_program(text, link_libc=False)
        except ReproError:
            pass

    @_SETTINGS
    @given(_PRINTABLE, _PRINTABLE)
    def test_headers_any_content(self, body, header):
        try:
            preprocess('#include "h.h"\n' + body, headers={"h.h": header})
        except ReproError:
            pass


class TestErrorQuality:
    def test_parse_error_is_repro_error(self):
        try:
            parse_translation_unit("int f( {")
        except ReproError as error:
            assert error.location is not None
        else:  # pragma: no cover
            raise AssertionError("expected a ParseError")

    def test_messages_name_the_offender(self):
        try:
            compile_program("int main(void) { return missing_thing; }")
        except ReproError as error:
            assert "missing_thing" in str(error)
