"""Determinism and caching tests for parallel suite execution."""

import pytest

from repro.experiments.pipeline import run_suite
from repro.experiments.tables import all_tables, table4
from repro.observability import Observability
from repro.pipeline import CompilationSession, parallel_map
from repro.pipeline.parallel import validate_executor, validate_jobs

# In suite (Table 1) order — run_suite returns results in suite order.
NAMES = ["cmp", "tee", "wc"]


@pytest.fixture(scope="module")
def serial_results():
    return run_suite("small", names=NAMES, jobs=1)


class TestUnknownNames:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown benchmark name"):
            run_suite("small", names=["wc", "nonesuch"])

    def test_error_lists_every_unknown_name(self):
        with pytest.raises(ValueError, match="nonesuch, other"):
            run_suite("small", names=["other", "wc", "nonesuch"])

    def test_known_subset_still_works(self, serial_results):
        assert [r.name for r in serial_results] == NAMES


class TestParallelDeterminism:
    def test_jobs2_equals_jobs1(self, serial_results):
        parallel = run_suite("small", names=NAMES, jobs=2)
        assert [r.name for r in parallel] == [r.name for r in serial_results]
        for serial, threaded in zip(serial_results, parallel):
            assert threaded.outputs_match == serial.outputs_match
            assert threaded.output_divergences == serial.output_divergences
            assert threaded.code_increase == serial.code_increase
            assert threaded.call_decrease == serial.call_decrease
            assert threaded.runs == serial.runs
        assert all_tables(parallel) == all_tables(serial_results)

    def test_jobs_exceeding_benchmarks(self, serial_results):
        parallel = run_suite("small", names=NAMES, jobs=16)
        assert table4(parallel) == table4(serial_results)

    def test_worker_observability_merged(self):
        obs = Observability.create()
        run_suite("small", names=NAMES, jobs=2, obs=obs)
        assert obs.metrics.counters["pipeline.benchmarks"] == len(NAMES)
        benchmark_spans = [
            r
            for r in obs.tracer.records
            if r["type"] == "span" and r["name"] == "benchmark"
        ]
        assert len(benchmark_spans) == len(NAMES)
        assert {span["attrs"]["name"] for span in benchmark_spans} == set(NAMES)
        # Every absorbed record is tagged with its worker label, and ids
        # stay unique after renumbering.
        assert all("worker" in span for span in benchmark_spans)
        ids = [r["id"] for r in obs.tracer.records if "id" in r]
        assert len(ids) == len(set(ids))


class TestSessionCaching:
    def test_warm_suite_run_is_all_hits(self, serial_results):
        session = CompilationSession()
        cold_obs = Observability.create()
        run_suite("small", names=NAMES, session=session, obs=cold_obs)
        assert cold_obs.metrics.counters["pipeline.cache.misses"] > 0

        warm_obs = Observability.create()
        warm = run_suite("small", names=NAMES, session=session, obs=warm_obs)
        counters = warm_obs.metrics.counters
        hits = counters.get("pipeline.cache.hits", 0)
        misses = counters.get("pipeline.cache.misses", 0)
        assert hits / (hits + misses) >= 0.9
        # Zero recompiles and zero re-profiles on the warm run.
        assert counters.get("frontend.modules_compiled", 0) == 0
        assert counters.get("profiler.runs", 0) == 0
        # And the cached artifacts reproduce identical tables.
        assert all_tables(warm) == all_tables(serial_results)

    def test_cached_run_matches_uncached(self, serial_results):
        session = CompilationSession()
        cached = run_suite("small", names=NAMES, session=session)
        assert all_tables(cached) == all_tables(serial_results)

    def test_parallel_and_cached_together(self, serial_results):
        session = CompilationSession()
        results = run_suite("small", names=NAMES, jobs=2, session=session)
        assert all_tables(results) == all_tables(serial_results)


class TestProcessExecutor:
    def test_process_suite_equals_serial(self, serial_results):
        parallel = run_suite(
            "small", names=NAMES, jobs=2, executor="process"
        )
        assert [r.name for r in parallel] == NAMES
        assert all_tables(parallel) == all_tables(serial_results)

    def test_process_worker_observability_merged(self):
        obs = Observability.create()
        run_suite("small", names=NAMES, jobs=2, executor="process", obs=obs)
        assert obs.metrics.counters["pipeline.benchmarks"] == len(NAMES)
        benchmark_spans = [
            r
            for r in obs.tracer.records
            if r["type"] == "span" and r["name"] == "benchmark"
        ]
        assert {span["attrs"]["name"] for span in benchmark_spans} == set(NAMES)
        assert all("worker" in span for span in benchmark_spans)

    def test_process_workers_share_disk_store(self, tmp_path):
        session = CompilationSession(cache_dir=str(tmp_path / "cache"))
        run_suite(
            "small", names=NAMES, jobs=2, executor="process", session=session
        )
        warm_obs = Observability.create()
        run_suite("small", names=NAMES, session=session, obs=warm_obs)
        # The warm serial run reads artifacts the worker processes wrote.
        assert warm_obs.metrics.counters.get("pipeline.cache.disk_hits", 0) > 0


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            validate_jobs(0)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_suite("small", names=["wc"], jobs=-2)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            validate_executor("fiber")

    def test_parallel_map_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="unknown executor"):
            parallel_map(lambda x, _obs: x, [1], jobs=2, executor="fiber")


def _square_task(item, obs):
    obs.metrics.inc("tick")
    return item * item


class TestParallelMap:
    def test_process_backend_with_picklable_task(self):
        obs = Observability.create()
        items = list(range(8))
        result = parallel_map(
            _square_task, items, jobs=2, obs=obs, executor="process"
        )
        assert result == [x * x for x in items]
        assert obs.metrics.counters["tick"] == len(items)

    def test_order_preserved(self):
        items = list(range(20))
        assert parallel_map(lambda x, _obs: x * x, items, jobs=4) == [
            x * x for x in items
        ]

    def test_serial_uses_parent_obs(self):
        obs = Observability.create()
        parallel_map(
            lambda x, child: child.metrics.inc("tick"), [1, 2], jobs=1, obs=obs
        )
        assert obs.metrics.counters["tick"] == 2

    def test_parallel_metrics_merge(self):
        obs = Observability.create()
        parallel_map(
            lambda x, child: child.metrics.inc("tick"),
            [1, 2, 3, 4],
            jobs=2,
            obs=obs,
        )
        assert obs.metrics.counters["tick"] == 4
