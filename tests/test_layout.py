"""Tests for profile-guided function placement."""

from repro.compiler import compile_program
from repro.layout import affinity_order, placement_experiment
from repro.profiler.profile import RunSpec, profile_module
from repro.vm.machine import Machine
from repro.vm.os import VirtualOS

HOT_PAIR = """
#include <sys.h>
int cold_helper(int x) { return x - 1; }
int hot_helper(int x) { return x + 1; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 100; i++)
        s += hot_helper(i);
    s += cold_helper(s);
    print_int(s);
    return 0;
}
"""


def prepared():
    module = compile_program(HOT_PAIR)
    profile = profile_module(module, [RunSpec()])
    return module, profile


class TestAffinityOrder:
    def test_all_functions_present_once(self):
        module, profile = prepared()
        order = affinity_order(module, profile)
        assert sorted(order) == sorted(module.functions)

    def test_hot_pair_adjacent(self):
        module, profile = prepared()
        order = affinity_order(module, profile)
        assert abs(order.index("main") - order.index("hot_helper")) == 1

    def test_hot_chain_leads(self):
        module, profile = prepared()
        order = affinity_order(module, profile)
        assert order.index("hot_helper") < order.index("strstr")

    def test_deterministic(self):
        module, profile = prepared()
        assert affinity_order(module, profile) == affinity_order(module, profile)


class TestExplicitOrderInVM:
    def test_function_order_respected_and_correct(self):
        module, profile = prepared()
        order = affinity_order(module, profile)
        default = Machine(module, VirtualOS()).run()
        placed = Machine(module, VirtualOS(), function_order=order).run()
        assert placed.stdout == default.stdout
        assert placed.counters.il == default.counters.il

    def test_partial_order_tolerated(self):
        module, _ = prepared()
        result = Machine(
            module, VirtualOS(), function_order=["hot_helper"]
        ).run()
        assert result.exit_code == 0


class TestPlacementExperiment:
    def test_reports_all_configs(self):
        module, _ = prepared()
        points = placement_experiment(
            module, [RunSpec()], configs=[(512, 1)], seeds=(0,)
        )
        [point] = points
        assert 0.0 <= point.miss_scattered <= 1.0
        assert 0.0 <= point.miss_placed <= 1.0
        assert 0.0 <= point.miss_inlined_scattered <= 1.0
