"""Unit tests for the weighted call graph."""

import pytest

from repro.callgraph.build import build_call_graph
from repro.callgraph.cycles import find_sccs, recursive_functions
from repro.callgraph.graph import (
    EXTERNAL_NODE,
    POINTER_NODE,
    ArcKind,
    CallGraph,
)
from repro.callgraph.reachability import (
    eliminate_unreachable,
    reachable_functions,
)
from repro.compiler import compile_program
from repro.profiler.profile import RunSpec, profile_module


def graph_for(source, profile=False, specs=None, link_libc=False):
    module = compile_program(source, link_libc=link_libc)
    data = None
    if profile:
        data = profile_module(module, specs or [RunSpec()], check_exit=False)
    return module, build_call_graph(module, data)


PLAIN = """
int helper(int x) { return x + 1; }
int middle(int x) { return helper(x) + helper(x + 1); }
int main(void) { return middle(3); }
"""


class TestConstruction:
    def test_nodes_for_every_function(self):
        _, graph = graph_for(PLAIN)
        assert {"helper", "middle", "main"} <= set(graph.nodes)

    def test_one_arc_per_call_site(self):
        _, graph = graph_for(PLAIN)
        arcs = graph.arcs_between("middle", "helper")
        assert len(arcs) == 2
        assert arcs[0].site != arcs[1].site

    def test_arc_weights_from_profile(self):
        source = """
        int f(int x) { return x; }
        int main(void) { int i; int s = 0;
            for (i = 0; i < 10; i++) s += f(i); return 0; }
        """
        _, graph = graph_for(source, profile=True)
        [arc] = graph.arcs_between("main", "f")
        assert arc.weight == 10

    def test_node_weights_from_profile(self):
        _, graph = graph_for(PLAIN, profile=True)
        assert graph.node("helper").weight == 2
        assert graph.node("main").weight == 1

    def test_no_special_arcs_for_pure_program(self):
        _, graph = graph_for(PLAIN)
        assert graph.node(EXTERNAL_NODE).out_arcs == []
        assert graph.node(POINTER_NODE).out_arcs == []

    def test_external_call_routes_to_dollar_node(self):
        source = """
        #include <sys.h>
        int main(void) { return putchar('x') == 'x' ? 0 : 1; }
        """
        _, graph = graph_for(source)
        arcs = graph.arcs_between("main", EXTERNAL_NODE)
        assert len(arcs) == 1
        assert arcs[0].kind is ArcKind.EXTERNAL

    def test_external_node_reaches_every_function(self):
        source = """
        #include <sys.h>
        int quiet(int x) { return x; }
        int main(void) { putchar('x'); return quiet(0); }
        """
        _, graph = graph_for(source)
        succ = graph.successors(EXTERNAL_NODE)
        assert {"quiet", "main"} <= succ

    def test_pointer_call_routes_to_hash_node(self):
        source = """
        int f(int x) { return x; }
        int main(void) { int (*p)(int v) = f; return p(1); }
        """
        _, graph = graph_for(source)
        arcs = graph.arcs_between("main", POINTER_NODE)
        assert len(arcs) == 1
        assert arcs[0].kind is ArcKind.POINTER

    def test_pointer_node_targets_address_taken_only_without_externals(self):
        source = """
        int taken(int x) { return x; }
        int nottaken(int x) { return x; }
        int main(void) { int (*p)(int v) = taken;
            return p(1) + nottaken(2); }
        """
        _, graph = graph_for(source)
        succ = graph.successors(POINTER_NODE)
        assert "taken" in succ
        assert "nottaken" not in succ

    def test_pointer_node_targets_everything_with_externals(self):
        source = """
        #include <sys.h>
        int taken(int x) { return x; }
        int nottaken(int x) { return x; }
        int main(void) { int (*p)(int v) = taken;
            putchar('x'); return p(1) + nottaken(2); }
        """
        _, graph = graph_for(source)
        assert "nottaken" in graph.successors(POINTER_NODE)

    def test_call_site_arcs_excludes_synthetic(self):
        source = """
        #include <sys.h>
        int main(void) { putchar('x'); return 0; }
        """
        _, graph = graph_for(source)
        for arc in graph.call_site_arcs():
            assert arc.kind is not ArcKind.SYNTHETIC
            assert arc.site >= 0

    def test_duplicate_arc_id_rejected(self):
        graph = CallGraph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_arc(1, "a", "b")
        with pytest.raises(ValueError):
            graph.add_arc(1, "a", "b")


class TestCycles:
    def test_acyclic_graph_has_no_recursion(self):
        _, graph = graph_for(PLAIN)
        assert recursive_functions(graph) == set()

    def test_self_recursion_detected(self):
        source = "int f(int n) { return n ? f(n - 1) : 0; } int main(void) { return f(3); }"
        _, graph = graph_for(source)
        assert "f" in recursive_functions(graph)
        assert graph.self_recursive("f")

    def test_mutual_recursion_detected(self):
        source = """
        int odd(int n);
        int even(int n) { return n == 0 ? 1 : odd(n - 1); }
        int odd(int n) { return n == 0 ? 0 : even(n - 1); }
        int main(void) { return even(4); }
        """
        _, graph = graph_for(source)
        recursive = recursive_functions(graph)
        assert {"even", "odd"} <= recursive
        assert "main" not in recursive

    def test_external_closure_creates_conservative_cycles(self):
        source = """
        #include <sys.h>
        int noisy(int x) { putchar(x); return x; }
        int main(void) { return noisy('a'); }
        """
        _, graph = graph_for(source)
        # noisy -> $$$ -> noisy is a conservative cycle (the paper's
        # worst-case assumption about externals).
        assert "noisy" in recursive_functions(graph)

    def test_sccs_callee_first(self):
        _, graph = graph_for(PLAIN)
        order = [name for scc in find_sccs(graph) for name in scc]
        assert order.index("helper") < order.index("middle") < order.index("main")

    def test_scc_groups_cycle(self):
        source = """
        int b(int n);
        int a(int n) { return n ? b(n - 1) : 0; }
        int b(int n) { return n ? a(n - 1) : 1; }
        int main(void) { return a(5); }
        """
        _, graph = graph_for(source)
        components = [set(c) for c in find_sccs(graph)]
        assert {"a", "b"} in components


class TestReachability:
    def test_all_reachable_in_connected_graph(self):
        _, graph = graph_for(PLAIN)
        assert {"main", "middle", "helper"} <= reachable_functions(graph)

    def test_unreachable_function_found(self):
        source = PLAIN + "\nint orphan(void) { return 9; }"
        _, graph = graph_for(source)
        assert "orphan" not in reachable_functions(graph)

    def test_eliminate_removes_orphan(self):
        source = PLAIN + "\nint orphan(void) { return 9; }"
        module, graph = graph_for(source)
        removed = eliminate_unreachable(module, graph)
        assert removed == ["orphan"]
        assert "orphan" not in module.functions

    def test_eliminate_conservative_with_externals(self):
        source = """
        #include <sys.h>
        int orphan(void) { return 9; }
        int main(void) { putchar('x'); return 0; }
        """
        module, graph = graph_for(source)
        removed = eliminate_unreachable(module, graph)
        assert removed == []
        assert "orphan" in module.functions

    def test_eliminate_aggressive_mode(self):
        source = """
        #include <sys.h>
        int orphan(void) { return 9; }
        int main(void) { putchar('x'); return 0; }
        """
        module, graph = graph_for(source)
        removed = eliminate_unreachable(module, graph, assume_worst_case=False)
        assert removed == ["orphan"]

    def test_address_taken_survives_aggressive_mode(self):
        source = """
        int used_via_pointer(int x) { return x; }
        int (*table[1])(int x) = {used_via_pointer};
        int main(void) { return table[0](1); }
        """
        module, graph = graph_for(source)
        removed = eliminate_unreachable(module, graph, assume_worst_case=False)
        assert "used_via_pointer" not in removed


class TestDotExport:
    def test_dot_structure(self):
        from repro.callgraph.dot import to_dot

        module, graph = graph_for(PLAIN)
        dot = to_dot(graph)
        assert dot.startswith("digraph callgraph {")
        assert '"main"' in dot and '"helper"' in dot
        assert '"middle" -> "helper"' in dot

    def test_synthetic_arcs_hidden_by_default(self):
        from repro.callgraph.dot import to_dot

        source = (
            "#include <sys.h>\n"
            "int main(void) { putchar('x'); return 0; }"
        )
        module, graph = graph_for(source)
        plain = to_dot(graph)
        full = to_dot(graph, include_synthetic=True)
        assert plain.count("->") < full.count("->")

    def test_min_weight_filters(self):
        from repro.callgraph.dot import to_dot

        _, graph = graph_for(PLAIN, profile=True)
        filtered = to_dot(graph, min_weight=10.0)
        assert '"middle" -> "helper"' not in filtered
