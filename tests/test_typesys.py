"""Unit tests for the type system and constant-expression evaluator."""

import pytest

from repro.errors import SemanticError
from repro.frontend import ast
from repro.frontend.constexpr import (
    INT_MAX,
    INT_MIN,
    apply_binary,
    apply_unary,
    eval_const_expr,
    wrap32,
)
from repro.frontend.typesys import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    decay,
    is_assignable,
    layout_struct,
)


class TestSizes:
    def test_primitive_sizes(self):
        assert INT.size() == 4
        assert CHAR.size() == 1
        assert VOID.size() == 0
        assert PointerType(INT).size() == 4
        assert PointerType(VOID).size() == 4

    def test_array_size(self):
        assert ArrayType(INT, 10).size() == 40
        assert ArrayType(ArrayType(CHAR, 3), 4).size() == 12

    def test_alignment(self):
        assert CHAR.alignment() == 1
        assert INT.alignment() == 4
        assert ArrayType(CHAR, 9).alignment() == 1


class TestStructLayout:
    def test_natural_alignment_padding(self):
        struct = layout_struct("s", [("c", CHAR), ("i", INT), ("d", CHAR)])
        assert struct.field("c").offset == 0
        assert struct.field("i").offset == 4
        assert struct.field("d").offset == 8
        assert struct.size() == 12

    def test_packed_chars(self):
        struct = layout_struct("s", [("a", CHAR), ("b", CHAR)])
        assert struct.field("b").offset == 1
        assert struct.size() == 2

    def test_nested_struct_alignment(self):
        inner = layout_struct("inner", [("x", INT)])
        outer = layout_struct("outer", [("c", CHAR), ("in_", inner)])
        assert outer.field("in_").offset == 4

    def test_duplicate_field_raises(self):
        with pytest.raises(SemanticError):
            layout_struct("s", [("x", INT), ("x", INT)])

    def test_incomplete_struct_size_raises(self):
        with pytest.raises(SemanticError):
            StructType("fwd").size()

    def test_missing_field_raises(self):
        struct = layout_struct("s", [("x", INT)])
        with pytest.raises(SemanticError):
            struct.field("y")
        assert struct.has_field("x")
        assert not struct.has_field("y")


class TestDecayAndAssignability:
    def test_array_decays_to_pointer(self):
        assert decay(ArrayType(INT, 5)) == PointerType(INT)

    def test_function_decays_to_pointer(self):
        fn = FunctionType(INT, (INT,))
        assert decay(fn) == PointerType(fn)

    def test_scalar_unchanged(self):
        assert decay(INT) is INT

    def test_int_to_int(self):
        assert is_assignable(INT, CHAR)
        assert is_assignable(CHAR, INT)

    def test_pointer_to_pointer_permissive(self):
        assert is_assignable(PointerType(CHAR), PointerType(INT))

    def test_null_constant_to_pointer(self):
        assert is_assignable(PointerType(INT), INT)

    def test_struct_needs_same_tag(self):
        a = layout_struct("a", [("x", INT)])
        b = layout_struct("b", [("x", INT)])
        assert is_assignable(a, a)
        assert not is_assignable(a, b)

    def test_array_source_decays(self):
        assert is_assignable(PointerType(INT), ArrayType(INT, 4))


class TestWrap32:
    def test_positive_in_range(self):
        assert wrap32(5) == 5

    def test_overflow_wraps_negative(self):
        assert wrap32(INT_MAX + 1) == INT_MIN

    def test_underflow_wraps_positive(self):
        assert wrap32(INT_MIN - 1) == INT_MAX

    def test_large_multiple(self):
        assert wrap32(2**32) == 0
        assert wrap32(2**32 + 7) == 7


class TestApplyBinary:
    def test_division_truncates_toward_zero(self):
        assert apply_binary("/", 7, 2) == 3
        assert apply_binary("/", -7, 2) == -3
        assert apply_binary("/", 7, -2) == -3

    def test_modulo_sign_follows_dividend(self):
        assert apply_binary("%", 7, 3) == 1
        assert apply_binary("%", -7, 3) == -1
        assert apply_binary("%", 7, -3) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            apply_binary("/", 1, 0)

    def test_shift_masks_amount(self):
        assert apply_binary("<<", 1, 33) == 2

    def test_arithmetic_right_shift(self):
        assert apply_binary(">>", -8, 1) == -4

    def test_comparisons_return_01(self):
        assert apply_binary("<", 1, 2) == 1
        assert apply_binary(">=", 1, 2) == 0

    def test_unknown_operator_raises(self):
        with pytest.raises(SemanticError):
            apply_binary("**", 2, 3)


class TestApplyUnary:
    def test_all_ops(self):
        assert apply_unary("-", 5) == -5
        assert apply_unary("~", 0) == -1
        assert apply_unary("!", 0) == 1
        assert apply_unary("!", 9) == 0
        assert apply_unary("+", 7) == 7

    def test_negate_int_min_wraps(self):
        assert apply_unary("-", INT_MIN) == INT_MIN


class TestEvalConstExpr:
    def test_literal(self):
        assert eval_const_expr(ast.IntLiteral(42)) == 42

    def test_nested_arithmetic(self):
        expr = ast.Binary(
            "*", ast.Binary("+", ast.IntLiteral(2), ast.IntLiteral(3)),
            ast.IntLiteral(4),
        )
        assert eval_const_expr(expr) == 20

    def test_conditional(self):
        expr = ast.Conditional(
            ast.IntLiteral(0), ast.IntLiteral(1), ast.IntLiteral(2)
        )
        assert eval_const_expr(expr) == 2

    def test_short_circuit_avoids_division_by_zero(self):
        expr = ast.Binary(
            "&&",
            ast.IntLiteral(0),
            ast.Binary("/", ast.IntLiteral(1), ast.IntLiteral(0)),
        )
        assert eval_const_expr(expr) == 0

    def test_division_by_zero_raises(self):
        expr = ast.Binary("/", ast.IntLiteral(1), ast.IntLiteral(0))
        with pytest.raises(SemanticError):
            eval_const_expr(expr)

    def test_sizeof_type(self):
        expr = ast.SizeofType(ArrayType(INT, 3))
        assert eval_const_expr(expr) == 12

    def test_cast_to_char_truncates(self):
        expr = ast.Cast(CHAR, ast.IntLiteral(300))
        assert eval_const_expr(expr) == 44

    def test_non_constant_raises(self):
        with pytest.raises(SemanticError):
            eval_const_expr(ast.Identifier("x"))
