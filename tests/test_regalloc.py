"""Tests for the register allocator (interference, coloring, pressure)."""

from repro.compiler import compile_program
from repro.profiler.profile import RunSpec, profile_module
from repro.regalloc import (
    allocate_function,
    allocate_module,
    build_interference,
    pressure_experiment,
)
from repro.regalloc.pressure import measure_pressure


def fn_of(source, name="main"):
    return compile_program(source, link_libc=False).functions[name]


class TestInterference:
    def test_simultaneously_live_registers_interfere(self):
        function = fn_of(
            "#include <sys.h>\n"
            "int main(void) { int a = getchar(); int b = getchar();"
            " print_int(a + b); print_int(a - b); return 0; }"
        )
        graph = build_interference(function)
        a_regs = [r for r in graph.nodes if r.startswith("v.a")]
        b_regs = [r for r in graph.nodes if r.startswith("v.b")]
        assert a_regs and b_regs
        assert b_regs[0] in graph.neighbors(a_regs[0])

    def test_disjoint_lifetimes_do_not_interfere(self):
        function = fn_of(
            "#include <sys.h>\n"
            "int main(void) { int a = getchar(); print_int(a);"
            " { int b = getchar(); print_int(b); } return 0; }"
        )
        graph = build_interference(function)
        a_regs = [r for r in graph.nodes if r.startswith("v.a")]
        b_regs = [r for r in graph.nodes if r.startswith("v.b")]
        assert b_regs[0] not in graph.neighbors(a_regs[0])

    def test_move_pairs_recorded(self):
        function = fn_of(
            "#include <sys.h>\n"
            "int main(void) { int a = getchar(); int b = a;"
            " print_int(b); return 0; }"
        )
        graph = build_interference(function)
        assert graph.move_pairs

    def test_use_counts_positive_for_used_registers(self):
        function = fn_of("int main(void) { int a = 1; return a + a; }")
        graph = build_interference(function)
        assert all(count > 0 for count in graph.use_counts.values())


class TestColoring:
    def test_valid_coloring_on_every_benchmark_function(self):
        from repro.workloads import benchmark_by_name

        module = benchmark_by_name("eqn").compile()
        for name, allocation in allocate_module(module, 12).items():
            assert allocation.verify(), name

    def test_small_function_needs_few_registers(self):
        function = fn_of("int main(void) { int a = 1; return a + 1; }")
        allocation = allocate_function(function, 16)
        assert allocation.spill_count == 0
        assert allocation.registers_used <= 3

    def test_single_register_machine_spills(self):
        function = fn_of(
            "#include <sys.h>\n"
            "int main(void) { int a = getchar(); int b = getchar();"
            " int c = getchar(); print_int(a + b + c);"
            " print_int(a * b * c); return 0; }"
        )
        allocation = allocate_function(function, 1)
        assert allocation.spill_count > 0
        assert allocation.verify()

    def test_more_registers_fewer_spills(self):
        function = fn_of(
            "#include <sys.h>\n"
            "int main(void) { int a = getchar(); int b = getchar();"
            " int c = getchar(); int d = getchar();"
            " print_int(a + b + c + d); print_int(a * b * c * d);"
            " return 0; }"
        )
        spills = [allocate_function(function, k).spill_count for k in (1, 2, 8)]
        assert spills[0] >= spills[1] >= spills[2]
        assert spills[2] == 0

    def test_params_participate(self):
        function = fn_of(
            "int f(int x, int y) { return x * y + x; }"
            "int main(void) { return f(1, 2); }",
            name="f",
        )
        allocation = allocate_function(function, 8)
        colored = set(allocation.assignment) | allocation.spilled
        assert any(reg.startswith("p.x") for reg in colored)


class TestPressure:
    def test_report_fields(self):
        module = compile_program(
            "#include <sys.h>\n"
            "int f(int x) { return x + 1; }\n"
            "int main(void) { int i; int s = 0;"
            " for (i = 0; i < 50; i++) s += f(i);"
            " print_int(s); return 0; }"
        )
        profile = profile_module(module, [RunSpec()])
        report = measure_pressure(module, profile, 8)
        assert report.save_restore_events > 0
        assert report.total_memory_events >= report.spill_events

    def test_inlining_reduces_boundary_traffic(self):
        module = compile_program(
            "#include <sys.h>\n"
            "int f(int x) { return x * 2 + 1; }\n"
            "int main(void) { int i; int s = 0;"
            " for (i = 0; i < 200; i++) s += f(i);"
            " print_int(s); return 0; }"
        )
        results = pressure_experiment(module, [RunSpec()], ks=(8,))
        [(k, before, after)] = results
        assert after.save_restore_events < before.save_restore_events
        assert after.total_memory_events < before.total_memory_events
