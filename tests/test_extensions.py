"""Tests for the paper's extension features: tail-recursion
elimination (§2.2), pointer-callee refinement (§2.5), and the
instruction-cache substrate (§5)."""

import pytest

from repro.callgraph import analyze_pointer_calls, build_call_graph
from repro.callgraph.graph import POINTER_NODE
from repro.compiler import compile_program
from repro.il.verifier import verify_module
from repro.opt import eliminate_tail_recursion, eliminate_tail_recursion_module
from repro.icache import InstructionCache, icache_experiment
from repro.profiler.profile import RunSpec, run_once
from repro.vm.machine import Machine
from repro.vm.os import VirtualOS


class TestTailRecursion:
    def test_gcd_rewritten_and_correct(self):
        module = compile_program(
            "#include <sys.h>\n"
            "int gcd(int a, int b) { if (b == 0) return a;"
            " return gcd(b, a % b); }\n"
            "int main(void) { print_int(gcd(462, 1071)); return 0; }"
        )
        before = run_once(module).stdout
        rewrites = eliminate_tail_recursion_module(module)
        verify_module(module)
        assert rewrites == 1
        assert run_once(module).stdout == before == "21"

    def test_calls_eliminated(self):
        module = compile_program(
            "int down(int n) { if (n == 0) return 0; return down(n - 1); }\n"
            "int main(void) { return down(100); }"
        )
        baseline_calls = run_once(module).counters.calls
        eliminate_tail_recursion_module(module)
        assert run_once(module).counters.calls < baseline_calls / 10

    def test_deep_recursion_no_longer_overflows(self):
        module = compile_program(
            "int count(int n, int acc) { if (n == 0) return acc;"
            " return count(n - 1, acc + 1); }\n"
            "int main(void) { return count(300000, 0) == 300000 ? 0 : 1; }"
        )
        eliminate_tail_recursion_module(module)
        assert run_once(module, fuel=50_000_000).exit_code == 0

    def test_void_tail_call(self):
        module = compile_program(
            "#include <sys.h>\n"
            "void spin(int n) { if (n <= 0) return; putchar('.'); spin(n - 1); }\n"
            "int main(void) { spin(4); return 0; }"
        )
        eliminate_tail_recursion_module(module)
        verify_module(module)
        assert run_once(module).stdout == "...."

    def test_argument_swap_is_safe(self):
        # f(b, a): naive param assignment would clobber; shadows must
        # preserve the simultaneous-assignment semantics.
        module = compile_program(
            "#include <sys.h>\n"
            "int swap_walk(int a, int b) { if (a == 0) return b;"
            " return swap_walk(b - 1, a); }\n"
            "int main(void) { print_int(swap_walk(5, 9)); return 0; }"
        )
        before = run_once(module).stdout
        eliminate_tail_recursion_module(module)
        assert run_once(module).stdout == before

    def test_non_tail_recursion_untouched(self):
        module = compile_program(
            "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }\n"
            "int main(void) { return fact(5) == 120 ? 0 : 1; }"
        )
        assert eliminate_tail_recursion_module(module) == 0
        assert run_once(module).exit_code == 0

    def test_idempotent(self):
        module = compile_program(
            "int down(int n) { if (n == 0) return 0; return down(n - 1); }\n"
            "int main(void) { return down(10); }"
        )
        eliminate_tail_recursion_module(module)
        again = eliminate_tail_recursion(module.functions["down"])
        assert again == 0
        verify_module(module)

    def test_benchmark_survives_pass(self):
        from repro.workloads import benchmark_by_name

        benchmark = benchmark_by_name("make")  # recursive build()
        module = benchmark.compile()
        spec = benchmark.make_runs("small")[0]
        before = run_once(module, spec).stdout
        eliminate_tail_recursion_module(module)
        verify_module(module)
        assert run_once(module, spec).stdout == before


POINTER_PROGRAM = """
#include <sys.h>
int unary(int x) { return x; }
int binary(int a, int b) { return a + b; }
int hidden(int x) { return x; }
int main(void) {
    int (*p)(int v) = unary;
    int (*q)(int a, int b) = binary;
    putchar('x');
    return p(1) + q(1, 2) + hidden(0);
}
"""


class TestPointerAnalysis:
    def test_arity_narrowing(self):
        module = compile_program(POINTER_PROGRAM, link_libc=False)
        summary = analyze_pointer_calls(module)
        sets = sorted(
            tuple(sorted(s)) for s in summary.callees_by_site.values()
        )
        assert sets == [("binary",), ("unary",)]

    def test_non_address_taken_excluded(self):
        module = compile_program(POINTER_PROGRAM, link_libc=False)
        summary = analyze_pointer_calls(module)
        assert "hidden" not in summary.all_targets
        assert "main" not in summary.all_targets

    def test_refined_graph_smaller_than_worst_case(self):
        module = compile_program(POINTER_PROGRAM, link_libc=False)
        worst = build_call_graph(module)
        refined = build_call_graph(module, refine_pointers=True)
        assert refined.successors(POINTER_NODE) < worst.successors(POINTER_NODE)

    def test_refinement_keeps_actual_targets(self):
        module = compile_program(POINTER_PROGRAM, link_libc=False)
        refined = build_call_graph(module, refine_pointers=True)
        assert {"unary", "binary"} <= refined.successors(POINTER_NODE)

    def test_externals_flag(self):
        module = compile_program(POINTER_PROGRAM, link_libc=False)
        summary = analyze_pointer_calls(module)
        assert summary.may_reach_external  # putchar is declared external


class TestInstructionCache:
    def test_direct_mapped_conflict(self):
        cache = InstructionCache(64, 16, 1)  # 4 sets
        assert not cache.access(0)  # miss
        assert cache.access(0)  # hit
        assert not cache.access(64)  # same set, evicts
        assert not cache.access(0)  # conflict miss

    def test_two_way_keeps_both(self):
        cache = InstructionCache(128, 16, 2)  # 4 sets, 2 ways
        cache.access(0)
        cache.access(64)
        assert cache.access(0)
        assert cache.access(64)

    def test_lru_eviction(self):
        cache = InstructionCache(128, 16, 2)
        cache.access(0)
        cache.access(64)
        cache.access(0)  # 64 is now LRU
        cache.access(128)  # evicts 64
        assert cache.access(0)
        assert not cache.access(64)

    def test_line_granularity(self):
        cache = InstructionCache(64, 16, 1)
        cache.access(0)
        assert cache.access(4)
        assert cache.access(12)
        assert cache.stats.misses == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            InstructionCache(100, 16, 1)
        with pytest.raises(ValueError):
            InstructionCache(64, 12, 1)

    def test_vm_trace_counts_match(self):
        module = compile_program(
            "#include <sys.h>\n"
            "int main(void) { int i; for (i = 0; i < 50; i++) putchar('x');"
            " return 0; }"
        )
        cache = InstructionCache(1024, 16, 1)
        result = Machine(module, VirtualOS(), icache=cache).run()
        assert cache.stats.accesses == result.counters.il

    def test_layouts_execute_identically(self):
        module = compile_program(
            "#include <sys.h>\n"
            "int h(int x) { return x * 3; }\n"
            "int main(void) { print_int(h(4)); return 0; }"
        )
        sequential = Machine(module, VirtualOS(), code_layout="sequential").run()
        scattered = Machine(module, VirtualOS(), code_layout="scattered").run()
        assert sequential.stdout == scattered.stdout
        assert sequential.counters.il == scattered.counters.il

    def test_experiment_reports_points(self):
        from repro.workloads import benchmark_by_name

        benchmark = benchmark_by_name("cmp")
        module = benchmark.compile()
        specs = benchmark.make_runs("small")[:1]
        points = icache_experiment(
            module, specs, configs=[(512, 16, 1)], seeds=(0, 1)
        )
        [point] = points
        assert 0.0 <= point.miss_before <= 1.0
        assert 0.0 <= point.miss_after <= 1.0
