"""Unit tests for the inline expander: classification, linearization,
cost function, selection, and physical expansion."""

import pytest

from repro.callgraph.build import build_call_graph
from repro.callgraph.graph import ArcStatus
from repro.compiler import compile_program
from repro.errors import InlineError
from repro.il.verifier import verify_module
from repro.inliner.classify import SiteClass, classify_sites
from repro.inliner.cost import INFINITY, make_cost_model
from repro.inliner.expand import expand_call_site
from repro.inliner.linearize import linearize, order_index
from repro.inliner.manager import InlineExpander, inline_module
from repro.inliner.params import InlineParameters
from repro.inliner.select import select_sites
from repro.profiler.profile import RunSpec, profile_module, run_once

HOT_COLD = """
#include <sys.h>
int hot(int x) { return x * 3 + 1; }
int cold(int x) { return x - 1; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 100; i++)
        s += hot(i);
    s += cold(s);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""


def prepared(source, specs=None):
    module = compile_program(source)
    profile = profile_module(module, specs or [RunSpec()], check_exit=False)
    graph = build_call_graph(module, profile)
    return module, profile, graph


class TestClassification:
    def test_classes_partition_all_sites(self):
        module, profile, graph = prepared(HOT_COLD)
        classified = classify_sites(module, graph, profile)
        assert classified.total_static == len(graph.call_site_arcs())

    def test_hot_call_is_safe(self):
        module, profile, graph = prepared(HOT_COLD)
        classified = classify_sites(module, graph, profile)
        [arc] = graph.arcs_between("main", "hot")
        assert classified.by_site[arc.site] is SiteClass.SAFE

    def test_cold_call_is_unsafe(self):
        module, profile, graph = prepared(HOT_COLD)
        classified = classify_sites(module, graph, profile)
        [arc] = graph.arcs_between("main", "cold")
        assert classified.by_site[arc.site] is SiteClass.UNSAFE

    def test_external_call_classified(self):
        module, profile, graph = prepared(HOT_COLD)
        classified = classify_sites(module, graph, profile)
        external = [
            site
            for site, cls in classified.by_site.items()
            if cls is SiteClass.EXTERNAL
        ]
        assert external  # putchar / print_int sites

    def test_pointer_call_classified(self):
        source = """
        int f(int x) { return x; }
        int main(void) { int (*p)(int v) = f; int i; int s = 0;
            for (i = 0; i < 50; i++) s += p(i); return s ? 0 : 1; }
        """
        module, profile, graph = prepared(source)
        classified = classify_sites(module, graph, profile)
        assert classified.dynamic[SiteClass.POINTER] == 50

    def test_self_recursive_call_unsafe(self):
        source = """
        int f(int n) { return n <= 0 ? 0 : n + f(n - 1); }
        int main(void) { return f(50) ? 0 : 1; }
        """
        module, profile, graph = prepared(source)
        classified = classify_sites(module, graph, profile)
        [self_arc] = graph.arcs_between("f", "f")
        assert classified.by_site[self_arc.site] is SiteClass.UNSAFE

    def test_big_frame_recursive_callee_unsafe(self):
        source = """
        int g(int n);
        int f(int n) { char buf[8192]; buf[0] = n;
            return n <= 0 ? buf[0] : g(n - 1); }
        int g(int n) { return f(n - 1); }
        int main(void) { int i; int s = 0;
            for (i = 0; i < 40; i++) s += f(2); return s ? 0 : 1; }
        """
        module, profile, graph = prepared(source)
        params = InlineParameters(stack_bound=4096)
        classified = classify_sites(module, graph, profile, params)
        [arc] = graph.arcs_between("g", "f")
        assert classified.by_site[arc.site] is SiteClass.UNSAFE

    def test_dynamic_fractions_sum_to_one(self):
        module, profile, graph = prepared(HOT_COLD)
        classified = classify_sites(module, graph, profile)
        total = sum(classified.dynamic_fraction(cls) for cls in SiteClass)
        assert total == pytest.approx(1.0)


class TestLinearization:
    def test_weight_order_hot_first(self):
        module, profile, _ = prepared(HOT_COLD)
        sequence = linearize(module, profile, method="weight")
        assert sequence.index("hot") < sequence.index("main")

    def test_hybrid_order_callee_before_caller(self):
        module, profile, _ = prepared(HOT_COLD)
        sequence = linearize(module, profile, method="hybrid")
        assert sequence.index("hot") < sequence.index("main")
        assert sequence.index("cold") < sequence.index("main")

    def test_deterministic_given_seed(self):
        module, profile, _ = prepared(HOT_COLD)
        assert linearize(module, profile, seed=1) == linearize(
            module, profile, seed=1
        )

    def test_unknown_method_raises(self):
        module, profile, _ = prepared(HOT_COLD)
        with pytest.raises(ValueError):
            linearize(module, profile, method="nope")

    def test_order_index(self):
        assert order_index(["a", "b"]) == {"a": 0, "b": 1}

    def test_all_functions_present(self):
        module, profile, _ = prepared(HOT_COLD)
        sequence = linearize(module, profile)
        assert set(sequence) == set(module.functions)


class TestCostModel:
    def test_cheap_hot_arc_finite(self):
        module, profile, graph = prepared(HOT_COLD)
        model = make_cost_model(module, graph, InlineParameters())
        [arc] = graph.arcs_between("main", "hot")
        assert model.cost(arc) < INFINITY

    def test_below_threshold_infinite(self):
        module, profile, graph = prepared(HOT_COLD)
        model = make_cost_model(module, graph, InlineParameters())
        [arc] = graph.arcs_between("main", "cold")
        arc.weight = 1
        assert model.cost(arc) == INFINITY

    def test_size_limit_infinite(self):
        module, profile, graph = prepared(HOT_COLD)
        params = InlineParameters(size_limit_fixed=1)
        model = make_cost_model(module, graph, params)
        [arc] = graph.arcs_between("main", "hot")
        assert model.cost(arc) == INFINITY

    def test_commit_grows_sizes(self):
        module, profile, graph = prepared(HOT_COLD)
        model = make_cost_model(module, graph, InlineParameters())
        [arc] = graph.arcs_between("main", "hot")
        before = model.sizes["main"]
        program_before = model.program_size
        model.commit(arc)
        assert model.sizes["main"] > before
        assert model.program_size > program_before

    def test_commit_accumulates_frames(self):
        module, profile, graph = prepared(HOT_COLD)
        model = make_cost_model(module, graph, InlineParameters())
        [arc] = graph.arcs_between("main", "hot")
        frame_before = model.frames["main"]
        model.commit(arc)
        assert model.frames["main"] >= frame_before

    def test_self_arc_infinite(self):
        source = "int f(int n) { return n ? f(n - 1) : 0; } int main(void) { return f(100) ? 0 : 1; }"
        module, profile, graph = prepared(source)
        model = make_cost_model(module, graph, InlineParameters(weight_threshold=1))
        [arc] = graph.arcs_between("f", "f")
        assert model.cost(arc) == INFINITY


class TestSelection:
    def test_hot_arc_selected(self):
        module, profile, graph = prepared(HOT_COLD)
        sequence = linearize(module, profile)
        selection = select_sites(module, profile and graph, profile, sequence)
        selected_pairs = {(a.caller, a.callee) for a in selection.selected}
        assert ("main", "hot") in selected_pairs

    def test_cold_arc_rejected(self):
        module, profile, graph = prepared(HOT_COLD)
        sequence = linearize(module, profile)
        selection = select_sites(module, graph, profile, sequence)
        rejected_pairs = {(a.caller, a.callee) for a in selection.rejected}
        assert ("main", "cold") in rejected_pairs

    def test_statuses_assigned(self):
        module, profile, graph = prepared(HOT_COLD)
        sequence = linearize(module, profile)
        select_sites(module, graph, profile, sequence)
        statuses = {arc.status for arc in graph.call_site_arcs()}
        assert ArcStatus.EXPANDABLE not in statuses  # all decided

    def test_special_arcs_not_expandable(self):
        module, profile, graph = prepared(HOT_COLD)
        sequence = linearize(module, profile)
        selection = select_sites(module, graph, profile, sequence)
        for arc in selection.not_expandable:
            assert arc.callee in ("$$$", "###") or arc.caller in ("$$$", "###")

    def test_expected_calls_eliminated(self):
        module, profile, graph = prepared(HOT_COLD)
        sequence = linearize(module, profile)
        selection = select_sites(module, graph, profile, sequence)
        assert selection.expected_calls_eliminated >= 100

    def test_max_expansions_cap(self):
        module, profile, graph = prepared(HOT_COLD)
        sequence = linearize(module, profile)
        params = InlineParameters(max_expansions=0)
        selection = select_sites(module, graph, profile, sequence, params)
        assert selection.selected == []


class TestPhysicalExpansion:
    def test_expansion_preserves_output(self):
        module, profile, graph = prepared(HOT_COLD)
        [arc] = graph.arcs_between("main", "hot")
        before = run_once(module).stdout
        working = module.clone()
        expand_call_site(working, "main", arc.site)
        verify_module(working)
        assert run_once(working).stdout == before

    def test_expansion_removes_call(self):
        module, profile, graph = prepared(HOT_COLD)
        [arc] = graph.arcs_between("main", "hot")
        working = module.clone()
        expand_call_site(working, "main", arc.site)
        remaining = [
            instr
            for caller, instr in working.call_sites()
            if caller == "main" and instr.name == "hot"
        ]
        assert remaining == []

    def test_copied_sites_get_fresh_ids(self):
        source = """
        int inner(int x) { return x + 1; }
        int outer(int x) { return inner(x) * 2; }
        int main(void) { int i; int s = 0;
            for (i = 0; i < 50; i++) s += outer(i);
            return s ? 0 : 1; }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "outer")
        working = module.clone()
        record = expand_call_site(working, "main", arc.site)
        assert record.copied_sites  # the inner() call was duplicated
        verify_module(working)  # fresh ids keep site uniqueness

    def test_frame_slots_merged(self):
        source = """
        int sum3(int *p) { return p[0] + p[1] + p[2]; }
        int fill(void) { int buf[3]; buf[0] = 1; buf[1] = 2; buf[2] = 3;
            return sum3(buf); }
        int main(void) { int i; int s = 0;
            for (i = 0; i < 30; i++) s += fill(); return s == 180 ? 0 : 1; }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "fill")
        working = module.clone()
        before_slots = len(working.functions["main"].slots)
        expand_call_site(working, "main", arc.site)
        assert len(working.functions["main"].slots) > before_slots
        assert run_once(working).exit_code == 0

    def test_void_callee(self):
        source = """
        #include <sys.h>
        int n = 0;
        void tick(void) { n++; }
        int main(void) { int i; for (i = 0; i < 20; i++) tick();
            print_int(n); return 0; }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "tick")
        working = module.clone()
        expand_call_site(working, "main", arc.site)
        assert run_once(working).stdout == "20"

    def test_multiple_returns_in_callee(self):
        source = """
        #include <sys.h>
        int sign(int x) { if (x > 0) return 1; if (x < 0) return -1; return 0; }
        int main(void) { print_int(sign(5)); print_int(sign(-5));
            print_int(sign(0)); return 0; }
        """
        module, profile, graph = prepared(source)
        working = module.clone()
        for arc in graph.arcs_between("main", "sign"):
            expand_call_site(working, "main", arc.site)
        verify_module(working)
        assert run_once(working).stdout == "1-10"

    def test_unknown_site_raises(self):
        module, profile, graph = prepared(HOT_COLD)
        with pytest.raises(InlineError):
            expand_call_site(module.clone(), "main", 424242)

    def test_self_call_raises(self):
        source = "int f(int n) { return n ? f(n - 1) : 0; } int main(void) { return f(1); }"
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("f", "f")
        with pytest.raises(InlineError, match="self-recursive"):
            expand_call_site(module.clone(), "f", arc.site)

    def test_indirect_site_raises(self):
        source = """
        int f(int x) { return x; }
        int main(void) { int (*p)(int v) = f; return p(0); }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "###")
        with pytest.raises(InlineError, match="indirect"):
            expand_call_site(module.clone(), "main", arc.site)


class TestManager:
    def test_inline_module_end_to_end(self):
        module = compile_program(HOT_COLD)
        profile = profile_module(module, [RunSpec()])
        result = inline_module(module, profile)
        assert result.records
        after = run_once(result.module)
        assert after.stdout == run_once(module).stdout
        assert after.counters.calls < run_once(module).counters.calls

    def test_input_module_untouched(self):
        module = compile_program(HOT_COLD)
        profile = profile_module(module, [RunSpec()])
        size_before = module.total_code_size()
        inline_module(module, profile)
        assert module.total_code_size() == size_before

    def test_code_increase_reported(self):
        module = compile_program(HOT_COLD)
        profile = profile_module(module, [RunSpec()])
        result = inline_module(module, profile)
        assert result.final_size > result.original_size
        assert result.code_increase == pytest.approx(
            (result.final_size - result.original_size) / result.original_size
        )

    def test_expanded_arcs_marked(self):
        module = compile_program(HOT_COLD)
        profile = profile_module(module, [RunSpec()])
        result = inline_module(module, profile)
        for arc in result.selection.selected:
            assert arc.status is ArcStatus.EXPANDED

    def test_transitive_chain_inlined_via_linear_order(self):
        source = """
        #include <sys.h>
        int a(int x) { return x + 1; }
        int b(int x) { return a(x) * 2; }
        int c(int x) { return b(x) + 3; }
        int main(void) { int i; int s = 0;
            for (i = 0; i < 200; i++) s += c(i);
            print_int(s); return 0; }
        """
        module = compile_program(source)
        profile = profile_module(module, [RunSpec()])
        result = inline_module(module, profile)
        after = run_once(result.module)
        assert after.stdout == run_once(module).stdout
        # All user-level calls on the hot path disappear.
        user_calls = sum(
            count
            for name, count in after.counters.func_counts.items()
            if name in ("a", "b", "c")
        )
        assert user_calls == 0

    def test_zero_weight_profile_inlines_nothing(self):
        module = compile_program(HOT_COLD)
        empty_profile = profile_module(
            compile_program("int main(void) { return 0; }"), [RunSpec()]
        )
        result = InlineExpander(module, empty_profile).run()
        assert result.records == []

    def test_stack_hazard_blocks_recursive_expansion(self):
        source = """
        #include <sys.h>
        int helper(int n) { char big[4096]; big[0] = n; return big[0] + 1; }
        int walk(int n) { if (n <= 0) return 0;
            return helper(n) + walk(n - 1); }
        int main(void) { print_int(walk(60)); return 0; }
        """
        module = compile_program(source)
        profile = profile_module(module, [RunSpec()])
        params = InlineParameters(stack_bound=2048, weight_threshold=5)
        result = inline_module(module, profile, params)
        callees = {record.callee for record in result.records}
        assert "helper" not in callees  # would explode walk's frames
        assert run_once(result.module).stdout == run_once(module).stdout


class TestExpansionEdgeCases:
    def test_callee_with_indirect_call_inlined(self):
        source = """
        #include <sys.h>
        int add(int a, int b) { return a + b; }
        int apply(int (*f)(int a, int b), int x) { return f(x, 10); }
        int main(void) {
            int i; int s = 0;
            for (i = 0; i < 60; i++)
                s += apply(add, i);
            print_int(s);
            return 0;
        }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "apply")
        working = module.clone()
        record = expand_call_site(working, "main", arc.site)
        verify_module(working)
        assert record.copied_sites  # the inner icall got a fresh site id
        assert run_once(working).stdout == run_once(module).stdout

    def test_callee_with_switch_inlined(self):
        source = """
        #include <sys.h>
        int kind(int c) {
            switch (c) {
            case 0: return 10;
            case 1: return 20;
            default: return 30;
            }
        }
        int main(void) {
            int i;
            for (i = 0; i < 40; i++)
                print_int(kind(i % 3));
            return 0;
        }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "kind")
        working = module.clone()
        expand_call_site(working, "main", arc.site)
        verify_module(working)
        assert run_once(working).stdout == run_once(module).stdout

    def test_two_sites_same_callee_in_one_caller(self):
        source = """
        #include <sys.h>
        int peak(int a, int b) { return a > b ? a : b; }
        int main(void) {
            int i; int s = 0;
            for (i = 0; i < 30; i++)
                s += peak(i, 7) + peak(9, i);
            print_int(s);
            return 0;
        }
        """
        module, profile, graph = prepared(source)
        working = module.clone()
        for arc in graph.arcs_between("main", "peak"):
            expand_call_site(working, "main", arc.site)
        verify_module(working)
        # Path-qualified names kept the two copies' slots/regs disjoint.
        assert run_once(working).stdout == run_once(module).stdout

    def test_inlined_copy_reuses_callers_string_globals(self):
        source = """
        #include <sys.h>
        void tag(void) { print_str("tag"); }
        int main(void) {
            int i;
            for (i = 0; i < 20; i++)
                tag();
            return 0;
        }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "tag")
        working = module.clone()
        expand_call_site(working, "main", arc.site)
        verify_module(working)
        assert run_once(working).stdout == "tag" * 20

    def test_address_taken_param_in_callee(self):
        source = """
        #include <sys.h>
        int via_pointer(int x) { int *p = &x; *p = *p + 5; return x; }
        int main(void) {
            int i; int s = 0;
            for (i = 0; i < 50; i++)
                s += via_pointer(i);
            print_int(s);
            return 0;
        }
        """
        module, profile, graph = prepared(source)
        [arc] = graph.arcs_between("main", "via_pointer")
        working = module.clone()
        expand_call_site(working, "main", arc.site)
        verify_module(working)
        assert run_once(working).stdout == run_once(module).stdout
