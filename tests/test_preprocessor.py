"""Unit tests for the mini preprocessor."""

import pytest

from repro.errors import PreprocessorError
from repro.frontend.preprocessor import Preprocessor, preprocess


def pp(text, headers=None, predefined=None):
    return preprocess(text, headers=headers, predefined=predefined)


class TestObjectMacros:
    def test_simple_substitution(self):
        assert "x = 5 ;" in pp("#define N 5\nx = N;").replace("5;", "5 ;").replace(
            "x = 5;", "x = 5 ;"
        ) or "x = 5;" in pp("#define N 5\nx = N;")

    def test_substitution_value(self):
        out = pp("#define N 5\nint x = N;")
        assert "int x = 5;" in out

    def test_no_substitution_inside_identifier(self):
        out = pp("#define N 5\nint NN = 1; int xN = N;")
        assert "int NN = 1;" in out
        assert "int xN = 5;" in out

    def test_no_substitution_inside_string(self):
        out = pp('#define N 5\nchar *s = "N";')
        assert '"N"' in out

    def test_chained_macros(self):
        out = pp("#define A B\n#define B 7\nint x = A;")
        assert "int x = 7;" in out

    def test_self_reference_does_not_loop(self):
        out = pp("#define X X\nint X;")
        assert "int X;" in out

    def test_undef(self):
        out = pp("#define N 5\n#undef N\nint x = N;")
        assert "int x = N;" in out

    def test_redefinition_wins(self):
        out = pp("#define N 5\n#define N 6\nint x = N;")
        assert "int x = 6;" in out


class TestFunctionMacros:
    def test_single_parameter(self):
        out = pp("#define SQ(x) ((x)*(x))\nint y = SQ(3);")
        assert "int y = ((3)*(3));" in out

    def test_two_parameters(self):
        out = pp("#define MAX(a,b) ((a)>(b)?(a):(b))\nint y = MAX(1, 2);")
        assert "((1)>(2)?(1):(2))" in out

    def test_name_without_parens_not_invoked(self):
        out = pp("#define F(x) x\nint y = F;")
        assert "int y = F;" in out

    def test_nested_invocation(self):
        out = pp("#define SQ(x) ((x)*(x))\nint y = SQ(SQ(2));")
        assert "((((2)*(2)))*(((2)*(2))))" in out

    def test_argument_count_mismatch(self):
        with pytest.raises(PreprocessorError):
            pp("#define F(a,b) a+b\nint x = F(1);")

    def test_zero_parameter_macro(self):
        out = pp("#define GET() 99\nint x = GET();")
        assert "int x = 99;" in out

    def test_parenthesized_argument_with_comma(self):
        out = pp("#define ID(x) x\nint y = ID((1, 2));")
        assert "(1, 2)" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = pp("#define YES 1\n#ifdef YES\nint a;\n#endif\nint b;")
        assert "int a;" in out and "int b;" in out

    def test_ifdef_skipped(self):
        out = pp("#ifdef NO\nint a;\n#endif\nint b;")
        assert "int a;" not in out and "int b;" in out

    def test_ifndef(self):
        out = pp("#ifndef NO\nint a;\n#endif")
        assert "int a;" in out

    def test_else(self):
        out = pp("#ifdef NO\nint a;\n#else\nint b;\n#endif")
        assert "int a;" not in out and "int b;" in out

    def test_elif(self):
        out = pp("#if 0\nint a;\n#elif 1\nint b;\n#else\nint c;\n#endif")
        assert "int b;" in out
        assert "int a;" not in out and "int c;" not in out

    def test_nested_conditionals(self):
        text = (
            "#define A 1\n#ifdef A\n#ifdef B\nint x;\n#else\nint y;\n"
            "#endif\n#endif"
        )
        out = pp(text)
        assert "int y;" in out and "int x;" not in out

    def test_if_expression_arithmetic(self):
        out = pp("#if 2 + 3 == 5\nint a;\n#endif")
        assert "int a;" in out

    def test_if_defined(self):
        out = pp("#define X 1\n#if defined(X) && !defined(Y)\nint a;\n#endif")
        assert "int a;" in out

    def test_unknown_identifier_is_zero(self):
        out = pp("#if UNDEFINED_THING\nint a;\n#endif\nint b;")
        assert "int a;" not in out

    def test_unterminated_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#ifdef A\nint x;")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#endif")

    def test_defines_inside_false_branch_ignored(self):
        out = pp("#ifdef NO\n#define N 5\n#endif\nint x = N;")
        assert "int x = N;" in out


class TestIncludes:
    def test_quoted_include(self):
        out = pp('#include "h.h"\nint b;', headers={"h.h": "int a;"})
        assert "int a;" in out and "int b;" in out

    def test_angle_include(self):
        out = pp("#include <h.h>", headers={"h.h": "int a;"})
        assert "int a;" in out

    def test_missing_header_raises(self):
        with pytest.raises(PreprocessorError):
            pp('#include "nope.h"')

    def test_include_guard_pattern(self):
        header = "#ifndef H\n#define H\nint once;\n#endif"
        out = pp(
            '#include "h.h"\n#include "h.h"', headers={"h.h": header}
        )
        assert out.count("int once;") == 1

    def test_header_macros_visible_after_include(self):
        out = pp('#include "h.h"\nint x = N;', headers={"h.h": "#define N 3"})
        assert "int x = 3;" in out

    def test_include_depth_limit(self):
        with pytest.raises(PreprocessorError):
            pp('#include "a.h"', headers={"a.h": '#include "a.h"'})


class TestMisc:
    def test_line_continuation(self):
        out = pp("#define LONG 1 + \\\n 2\nint x = LONG;")
        assert "int x = 1 +  2;" in out

    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            pp("#error broken")

    def test_error_in_false_branch_ignored(self):
        out = pp("#ifdef NO\n#error never\n#endif\nint x;")
        assert "int x;" in out

    def test_pragma_ignored(self):
        assert "int x;" in pp("#pragma whatever\nint x;")

    def test_predefined_macros(self):
        out = pp("int x = FOO;", predefined={"FOO": "42"})
        assert "int x = 42;" in out

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessorError):
            pp("#frobnicate")

    def test_comments_stripped_from_directives(self):
        out = pp("#define N 5 /* five */\nint x = N;")
        assert "int x = 5" in out

    def test_macro_state_object(self):
        preprocessor = Preprocessor()
        preprocessor.process("#define A 1\n#define B(x) x")
        assert "A" in preprocessor.macros
        assert preprocessor.macros["B"].is_function_like
