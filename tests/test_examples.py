"""Every example script must run clean — they are the documentation."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they do"


def test_expected_examples_present():
    names = {path.name for path in _EXAMPLES}
    assert {
        "quickstart.py",
        "custom_program.py",
        "heuristic_comparison.py",
        "optimization_scope.py",
        "paper_tables.py",
    } <= names
