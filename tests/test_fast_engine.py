"""The fast execution tier: engine equivalence and trap parity.

The fast engine's admissibility contract is total observational
equivalence with the reference counting interpreter: identical exit
code, stdout, written files, and the exact same integer counters —
``il``/``ct``/``calls``/``returns`` plus the per-site, per-function,
and per-branch dictionaries — on every successful run, and a trap in
the same situations on aborted runs.
"""

import pytest

from repro.compiler import compile_program
from repro.errors import ILError, VMTrap
from repro.profiler.profile import RunSpec, run_once
from repro.vm.machine import ENGINES, Machine
from repro.vm.os import VirtualOS

from helpers import c_main


def _counter_state(counters) -> dict:
    return {
        "il": counters.il,
        "ct": counters.ct,
        "calls": counters.calls,
        "returns": counters.returns,
        "site_counts": dict(counters.site_counts),
        "func_counts": dict(counters.func_counts),
        "branch_counts": dict(counters.branch_counts),
    }


def _run_engine(module, engine, *, stdin=b"", files=None, argv=None, **kwargs):
    os = VirtualOS(stdin=stdin, files=dict(files or {}), argv=list(argv or []))
    kwargs.setdefault("fuel", 50_000_000)
    kwargs.setdefault("collect_branches", True)
    return Machine(module, os, engine=engine, **kwargs).run()


def assert_engines_agree(source, **run_kwargs):
    module = compile_program(source)
    reference = _run_engine(module, "counting", **run_kwargs)
    fast = _run_engine(module, "fast", **run_kwargs)
    assert fast.exit_code == reference.exit_code
    assert bytes(fast.os.stdout) == bytes(reference.os.stdout)
    assert bytes(fast.os.stderr) == bytes(reference.os.stderr)
    assert fast.os.written_files == reference.os.written_files
    assert _counter_state(fast.counters) == _counter_state(reference.counters)
    return reference


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        module = compile_program(c_main("putchar('x');"))
        with pytest.raises(ILError, match="unknown engine"):
            Machine(module, engine="warp")

    def test_engines_constant_lists_both(self):
        assert ENGINES == ("counting", "fast")

    def test_fast_rejects_icache(self):
        from repro.icache import InstructionCache

        module = compile_program(c_main("putchar('x');"))
        cache = InstructionCache(64, 16, 1)
        with pytest.raises(ILError, match="icache"):
            Machine(module, icache=cache, engine="fast")

    def test_run_once_threads_engine(self):
        module = compile_program(c_main("print_int(6 * 7);"))
        result = run_once(module, RunSpec(), engine="fast")
        assert result.stdout == "42"


class TestEngineEquivalence:
    def test_straight_line_output_and_counters(self):
        assert_engines_agree(c_main("print_int(strlen(\"abcd\")); putchar(10);"))

    def test_loops_and_branch_profile(self):
        source = c_main(
            "int i; int odd = 0;"
            " for (i = 0; i < 50; i++) if (i % 2) odd++;"
            " print_int(odd);"
        )
        reference = assert_engines_agree(source)
        assert reference.counters.branch_counts  # mode actually profiled

    def test_recursion(self):
        source = c_main(
            "print_int(fib(15));",
            prelude="int fib(int n) { if (n < 2) return n;"
            " return fib(n - 1) + fib(n - 2); }",
        )
        assert_engines_agree(source)

    def test_deep_recursion_past_python_depth_limit(self):
        # 2000 frames exceeds the fast tier's direct-call depth budget
        # (_DEPTH_LIMIT), forcing it through the explicit trampoline;
        # counters must still match the interpreter exactly.
        from repro.vm.fast import _DEPTH_LIMIT

        depth = 2 * _DEPTH_LIMIT + 100
        source = c_main(
            f"print_int(down({depth}));",
            prelude="int down(int n) { if (n == 0) return 0;"
            " return down(n - 1) + 1; }",
        )
        assert_engines_agree(source)

    def test_function_pointers_and_files(self):
        source = c_main(
            'int (*emit)(int c, int fd) = fputc;'
            ' int fd = open("out.txt", O_WRITE);'
            " emit('h', fd); emit('i', fd); close(fd);"
            ' int rd = open("in.txt", O_READ);'
            " print_int(fgetc(rd)); close(rd);"
        )
        assert_engines_agree(source, files={"in.txt": b"Z"})

    def test_stdin_and_argv(self):
        source = """
        #include <sys.h>
        int main(int argc, char **argv) {
            int c = getchar();
            while (c != EOF) { putchar(c); c = getchar(); }
            print_int(argc);
            print_str(argv[1]);
            return 0;
        }
        """
        assert_engines_agree(source, stdin=b"stream", argv=["alpha"])

    def test_exit_mid_program(self):
        assert_engines_agree(c_main("putchar('a'); exit(7); putchar('b');"))

    def test_suite_benchmarks_identical(self):
        from repro.workloads.suite import benchmark_suite

        for benchmark in benchmark_suite():
            module = benchmark.compile()
            for spec in benchmark.make_runs("small"):
                reference = run_once(
                    module, spec, collect_branches=True, engine="counting"
                )
                fast = run_once(
                    module, spec, collect_branches=True, engine="fast"
                )
                label = f"{benchmark.name}/{spec.label}"
                assert fast.exit_code == reference.exit_code, label
                assert bytes(fast.os.stdout) == bytes(reference.os.stdout), label
                assert fast.os.written_files == reference.os.written_files, label
                assert _counter_state(fast.counters) == _counter_state(
                    reference.counters
                ), label

    def test_fuzz_corpus_replays_identically(self):
        from repro.verify import replay_fuzz_corpus

        reports = replay_fuzz_corpus(8, seed=0)
        assert reports, "corpus generated no runnable programs"
        assert all(report.ok for report in reports), [
            report.summary() for report in reports if not report.ok
        ]

    def test_inlined_modules_agree(self):
        # The fast tier must stay sound on post-expansion shapes too
        # (spliced bodies, renamed temporaries, copied call sites).
        from repro.inliner.manager import inline_module
        from repro.inliner.params import InlineParameters
        from repro.profiler.profile import profile_module

        source = c_main(
            "int i; int s = 0;"
            " for (i = 0; i < 40; i++) s += bump(i);"
            " print_int(s);",
            prelude="int bump(int v) { return v + 1; }",
        )
        module = compile_program(source)
        profile = profile_module(module, [RunSpec()])
        result = inline_module(
            module, profile, InlineParameters(weight_threshold=1.0)
        )
        assert result.records, "expected at least one expansion"
        reference = run_once(
            result.module, RunSpec(), collect_branches=True, engine="counting"
        )
        fast = run_once(
            result.module, RunSpec(), collect_branches=True, engine="fast"
        )
        assert fast.stdout == reference.stdout
        assert _counter_state(fast.counters) == _counter_state(
            reference.counters
        )


class TestFastTrapParity:
    def _both_trap(self, source, match, **kwargs):
        module = compile_program(source)
        for engine in ENGINES:
            with pytest.raises(VMTrap, match=match):
                _run_engine(module, engine, **kwargs)

    def test_fuel_exhaustion(self):
        self._both_trap(c_main("while (1) ;"), "fuel", fuel=10_000)

    def test_control_stack_overflow(self):
        # Non-tail recursion with a real frame: the local array keeps
        # the frontend from looping the self-call and makes each frame
        # consume control-stack bytes, so sp actually overflows.
        self._both_trap(
            c_main(
                "print_int(spin(0));",
                prelude="int spin(int n) { int pad[32]; pad[0] = n;"
                " return spin(n + 1) + pad[0]; }",
            ),
            "stack overflow",
            stack_size=1 << 16,
        )

    def test_icall_arity_mismatch(self):
        self._both_trap(
            """
            #include <sys.h>
            int two(int a, int b) { return a + b; }
            int main(void) {
                int (*p)(int v) = (int (*)(int v))two;
                return p(1);
            }
            """,
            "args",
        )

    def test_icall_bad_pointer(self):
        self._both_trap(
            c_main("int (*p)(int v) = (int (*)(int v))12345; p(1);"),
            "bad pointer",
        )

    def test_unavailable_external(self):
        module = compile_program(
            "int mystery(int x);\nint main(void) { return mystery(1); }",
            link_libc=False,
        )
        for engine in ENGINES:
            with pytest.raises(VMTrap, match="unavailable external"):
                Machine(module, VirtualOS(), engine=engine).run()

    def test_out_of_range_store(self):
        self._both_trap(
            c_main("int *p = (int *)99999999; *p = 1;"), "bad address"
        )

    def test_heap_exhaustion(self):
        module = compile_program(c_main("while (1) malloc(1 << 16);"))
        for engine in ENGINES:
            with pytest.raises(VMTrap, match="out of heap"):
                Machine(
                    module, VirtualOS(), engine=engine, heap_limit=1 << 20
                ).run()
