"""Tests for the analysis package (CFG, dominators, loops, liveness)
and the CSE pass that builds on value numbering."""

from repro.analysis import (
    build_cfg,
    call_sites_in_loops,
    dominator_sets,
    immediate_dominators,
    liveness,
    natural_loops,
)
from repro.compiler import compile_program
from repro.il.instructions import Opcode
from repro.il.verifier import verify_module
from repro.opt import optimize_module
from repro.opt.cse import eliminate_common_subexpressions
from repro.profiler.profile import run_once


def fn_of(source, name="main"):
    return compile_program(source, link_libc=False).functions[name]


STRAIGHT = "int main(void) { int a = 1; int b = a + 2; return b; }"

DIAMOND = """
int main(void) {
    int a = 1;
    if (a) a = 2; else a = 3;
    return a;
}
"""

LOOP = """
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 10; i++)
        s += i;
    return s;
}
"""


class TestCFG:
    def test_straight_line_single_reachable_block(self):
        cfg = build_cfg(fn_of(STRAIGHT))
        # One real block plus possibly the unreachable fallback-return
        # block the lowering appends after an explicit return.
        assert len(cfg.blocks) <= 2
        assert cfg.blocks[0].successors == []

    def test_diamond_shape(self):
        cfg = build_cfg(fn_of(DIAMOND))
        entry = cfg.entry
        assert len(entry.successors) == 2
        join_candidates = [
            b.index
            for b in cfg.blocks
            if len(b.predecessors) >= 2
        ]
        assert join_candidates  # the merge block exists

    def test_every_instruction_in_exactly_one_block(self):
        function = fn_of(LOOP)
        cfg = build_cfg(function)
        covered = []
        for block in cfg.blocks:
            covered.extend(range(block.start, block.end))
        assert covered == list(range(len(function.body)))

    def test_labels_map_to_blocks(self):
        function = fn_of(LOOP)
        cfg = build_cfg(function)
        for label, block_index in cfg.block_of_label.items():
            block = cfg.blocks[block_index]
            labels_at_head = [
                i.label
                for i in block.instructions(function)
                if i.op is Opcode.LABEL
            ]
            assert label in labels_at_head

    def test_edges_are_symmetric(self):
        cfg = build_cfg(fn_of(LOOP))
        for block in cfg.blocks:
            for successor in block.successors:
                assert block.index in cfg.blocks[successor].predecessors


class TestDominators:
    def test_entry_dominates_everything_reachable(self):
        cfg = build_cfg(fn_of(DIAMOND))
        dom = dominator_sets(cfg)
        for block in cfg.blocks:
            if block.predecessors or block.index == 0:
                assert 0 in dom[block.index]

    def test_branch_arms_do_not_dominate_join(self):
        cfg = build_cfg(fn_of(DIAMOND))
        dom = dominator_sets(cfg)
        join = next(
            b.index for b in cfg.blocks if len(b.predecessors) >= 2
        )
        arms = cfg.entry.successors
        for arm in arms:
            if arm != join:
                assert arm not in dom[join]

    def test_immediate_dominator_of_entry_is_none(self):
        cfg = build_cfg(fn_of(DIAMOND))
        assert immediate_dominators(cfg)[0] is None

    def test_idom_is_a_strict_dominator(self):
        cfg = build_cfg(fn_of(LOOP))
        dom = dominator_sets(cfg)
        for index, idom in immediate_dominators(cfg).items():
            if idom is not None:
                assert idom in dom[index] and idom != index


class TestLoops:
    def test_for_loop_detected(self):
        cfg = build_cfg(fn_of(LOOP))
        loops = natural_loops(cfg)
        assert len(loops) >= 1
        header_block = cfg.blocks[loops[0].header]
        assert header_block.predecessors  # entered from two places

    def test_straight_line_has_no_loops(self):
        assert natural_loops(build_cfg(fn_of(STRAIGHT))) == []

    def test_call_in_loop_found(self):
        function = fn_of(
            "int g(int x) { return x; }"
            "int main(void) { int i; int s = 0;"
            " for (i = 0; i < 5; i++) s += g(i); return s; }"
        )
        assert len(call_sites_in_loops(function)) == 1

    def test_call_outside_loop_not_flagged(self):
        function = fn_of(
            "int g(int x) { return x; }"
            "int main(void) { int i; int s = g(1);"
            " for (i = 0; i < 5; i++) s += i; return s; }"
        )
        assert call_sites_in_loops(function) == set()

    def test_nested_loops(self):
        function = fn_of(
            "int main(void) { int i; int j; int s = 0;"
            " for (i = 0; i < 3; i++)"
            "   for (j = 0; j < 3; j++) s++;"
            " return s; }"
        )
        loops = natural_loops(build_cfg(function))
        assert len(loops) == 2
        sizes = sorted(len(loop.body) for loop in loops)
        assert sizes[0] < sizes[1]  # inner loop nested in outer


class TestLiveness:
    def test_loop_variable_live_around_backedge(self):
        function = fn_of(LOOP)
        result = liveness(function)
        live = result.live_anywhere()
        # The induction register (v.i.*) stays live across blocks.
        assert any(reg.startswith("v.i") for reg in live)

    def test_dead_value_not_live_out_of_definition(self):
        function = fn_of(
            "int main(void) { int unused = 5; return 0; }"
        )
        result = liveness(function)
        assert all(
            not reg.startswith("v.unused") for reg in result.live_anywhere()
        )

    def test_params_live_in_entry_when_used(self):
        function = fn_of(
            "int f(int x) { return x + 1; } int main(void) { return f(1); }",
            name="f",
        )
        result = liveness(function)
        assert any(reg.startswith("p.x") for reg in result.live_in[0])


class TestCSE:
    def test_redundant_address_arithmetic_removed(self):
        source = """
        #include <sys.h>
        int v[10];
        int main(void) {
            int i = getchar();
            v[i] = v[i] + v[i];
            print_int(v[i]);
            return 0;
        }
        """
        module = compile_program(source, link_libc=False)
        before = run_once(module).stdout
        main = module.functions["main"]
        removed = eliminate_common_subexpressions(main)
        verify_module(module)
        assert removed > 0
        assert run_once(module).stdout == before

    def test_commutative_match(self):
        source = """
        #include <sys.h>
        int main(void) {
            int a = getchar();
            int b = getchar();
            print_int(a + b);
            print_int(b + a);
            return 0;
        }
        """
        module = compile_program(source, link_libc=False)
        main = module.functions["main"]
        assert eliminate_common_subexpressions(main) >= 1

    def test_redefinition_invalidates(self):
        source = """
        #include <sys.h>
        int main(void) {
            int a = getchar();
            int x = a + 1;
            a = getchar();
            int y = a + 1;
            print_int(x); print_int(y);
            return 0;
        }
        """
        module = compile_program(source, link_libc=False)
        main = module.functions["main"]
        eliminate_common_subexpressions(main)
        verify_module(module)
        result = run_once(module)
        # With empty stdin both getchar() return EOF (-1): x == y == 0.
        assert result.stdout == "00"

    def test_noncommutative_not_merged(self):
        source = """
        #include <sys.h>
        int main(void) {
            int a = getchar();
            int b = getchar();
            print_int(a - b);
            print_int(b - a);
            return 0;
        }
        """
        module = compile_program(source, link_libc=False)
        before = run_once(module, ).stdout
        eliminate_common_subexpressions(module.functions["main"])
        assert run_once(module).stdout == before

    def test_pipeline_with_cse_preserves_benchmarks(self):
        from repro.workloads import benchmark_by_name

        benchmark = benchmark_by_name("eqn")
        module = benchmark.compile()
        spec = benchmark.make_runs("small")[0]
        before = run_once(module, spec)
        stats = optimize_module(module)
        verify_module(module)
        after = run_once(module, spec)
        assert after.stdout == before.stdout
        assert stats.by_pass.get("cse", 0) > 0
        assert after.counters.il <= before.counters.il
