"""Unit tests for AST-to-IL lowering (IL structure, not just behaviour)."""

from repro.compiler import compile_program
from repro.il.instructions import Opcode


def lowered(source, name="main"):
    return compile_program(source, link_libc=False).functions[name]


def ops(function):
    return [instr.op for instr in function.body]


def count(function, opcode):
    return sum(1 for instr in function.body if instr.op is opcode)


class TestStorageAssignment:
    def test_scalar_local_in_register(self):
        fn = lowered("int main(void) { int a = 1; return a; }")
        assert fn.slots == {}

    def test_address_taken_local_gets_slot(self):
        fn = lowered("int main(void) { int a = 1; int *p = &a; return *p; }")
        assert len(fn.slots) == 1
        assert count(fn, Opcode.FRAME) >= 1

    def test_array_gets_slot(self):
        fn = lowered("int main(void) { int a[8]; a[0] = 1; return a[0]; }")
        [slot] = fn.slots.values()
        assert slot.size == 32

    def test_struct_gets_slot(self):
        fn = lowered(
            "struct p { int x; int y; };"
            "int main(void) { struct p v; v.x = 1; return v.x; }"
        )
        [slot] = fn.slots.values()
        assert slot.size == 8

    def test_address_taken_param_spilled(self):
        fn = lowered(
            "int f(int x) { int *p = &x; return *p; }"
            "int main(void) { return f(0); }",
            name="f",
        )
        assert len(fn.slots) == 1
        # Entry spill: a FRAME then STORE before anything else.
        assert fn.body[0].op is Opcode.FRAME
        assert fn.body[1].op is Opcode.STORE

    def test_frame_laid_out(self):
        fn = lowered(
            "int main(void) { char a[3]; int b[2]; a[0] = 1; b[0] = 2;"
            " return a[0] + b[0]; }"
        )
        offsets = sorted(slot.offset for slot in fn.slots.values())
        assert offsets[0] == 0
        assert fn.frame_size % 4 == 0


class TestCallLowering:
    def test_direct_call_opcode(self):
        fn = lowered(
            "int g(int x) { return x; } int main(void) { return g(1); }"
        )
        assert count(fn, Opcode.CALL) == 1
        assert count(fn, Opcode.ICALL) == 0

    def test_indirect_call_opcode(self):
        fn = lowered(
            "int g(int x) { return x; }"
            "int main(void) { int (*p)(int v) = g; return p(1); }"
        )
        assert count(fn, Opcode.ICALL) == 1

    def test_unique_site_ids(self):
        module = compile_program(
            "int g(int x) { return x; }"
            "int main(void) { return g(1) + g(2) + g(3); }",
            link_libc=False,
        )
        sites = [instr.site for _, instr in module.call_sites()]
        assert len(sites) == len(set(sites)) == 3

    def test_void_call_has_no_dst(self):
        fn = lowered(
            "void g(void) { return; } int main(void) { g(); return 0; }"
        )
        [call] = [i for i in fn.body if i.op is Opcode.CALL]
        assert call.dst is None

    def test_value_call_has_dst(self):
        fn = lowered(
            "int g(void) { return 1; } int main(void) { return g(); }"
        )
        [call] = [i for i in fn.body if i.op is Opcode.CALL]
        assert call.dst is not None


class TestControlLowering:
    def test_if_produces_cjump(self):
        fn = lowered("int main(void) { int a = 0; if (a) a = 1; return a; }")
        assert count(fn, Opcode.CJUMP) == 1

    def test_short_circuit_produces_branches(self):
        fn = lowered(
            "int main(void) { int a = 1; int b = 2; return a && b; }"
        )
        assert count(fn, Opcode.CJUMP) == 2

    def test_switch_opcode(self):
        fn = lowered(
            "int main(void) { int a = 1;"
            " switch (a) { case 1: return 1; default: return 2; } }"
        )
        [switch] = [i for i in fn.body if i.op is Opcode.SWITCH]
        assert dict(switch.cases) and switch.label2 is not None

    def test_fallback_return_appended(self):
        fn = lowered("void main_helper(void) { }"
                     "int main(void) { main_helper(); return 0; }",
                     name="main_helper")
        assert fn.body[-1].op is Opcode.RET


class TestDataLowering:
    def test_string_literal_interned_as_global(self):
        module = compile_program(
            '#include <sys.h>\nint main(void) { print_str("hi"); return 0; }',
            link_libc=False,
        )
        assert any(name.startswith(".str") for name in module.globals)

    def test_identical_strings_shared(self):
        module = compile_program(
            "#include <sys.h>\n"
            'int main(void) { print_str("dup"); print_str("dup"); return 0; }',
            link_libc=False,
        )
        strings = [n for n in module.globals if n.startswith(".str")]
        assert len(strings) == 1

    def test_global_initializer_items(self):
        module = compile_program(
            "int t[3] = {1, 2, 3}; int main(void) { return t[0]; }",
            link_libc=False,
        )
        assert len(module.globals["t"].init) == 3

    def test_function_pointer_global_init(self):
        module = compile_program(
            "int f(int x) { return x; }"
            "int (*p)(int x) = f;"
            "int main(void) { return p(0); }",
            link_libc=False,
        )
        [item] = module.globals["p"].init
        assert item.kind == "faddr" and item.symbol == "f"

    def test_address_taken_set_populated(self):
        module = compile_program(
            "int f(int x) { return x; }"
            "int main(void) { int (*p)(int v) = f; return p(0); }",
            link_libc=False,
        )
        assert "f" in module.address_taken

    def test_char_load_uses_size_1(self):
        fn = lowered(
            'int main(void) { char *s = "a"; return s[0]; }'
        )
        loads = [i for i in fn.body if i.op is Opcode.LOAD]
        assert any(load.size == 1 for load in loads)

    def test_pointer_arith_scaled_by_element(self):
        fn = lowered(
            "int main(void) { int a[4]; int *p = a; return *(p + 3); }"
        )
        # The +3 must be scaled: a multiply by 4 or a pre-scaled
        # constant 12 must feed the address addition.
        scaled = any(
            (i.op is Opcode.BIN and i.op2 == "*")
            or (i.op is Opcode.BIN and i.op2 == "+" and 12 in (i.a, i.b))
            or (i.op is Opcode.CONST and i.a == 12)
            for i in fn.body
        )
        assert scaled
