"""Tests for the compilation service: ops, server, client, dedup."""

import os

import pytest

from repro.observability import Observability
from repro.service import (
    ServiceClient,
    ServiceError,
    execute,
    request_key,
    run_concurrent,
    serve_in_thread,
)
from repro.service.server import CompilationService

PROGRAM = """
#include <sys.h>
int triple(int x) { return x * 3; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 40; i++)
        s += triple(i);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""

ECHO = """
#include <sys.h>
int main(void) {
    int c = getchar();
    while (c != EOF) { putchar(c); c = getchar(); }
    return 0;
}
"""


@pytest.fixture
def service(tmp_path):
    """A running service (thread pool, 2 workers) plus its parent obs."""
    socket_path = str(tmp_path / "svc.sock")
    obs = Observability.create()
    handle = serve_in_thread(socket_path, jobs=2, executor="thread", obs=obs)
    yield socket_path, obs, handle
    if not handle.service._stopped.is_set():
        handle.stop()


class TestRequestKey:
    def test_same_request_same_key(self):
        assert request_key("inline", {"source": PROGRAM}) == request_key(
            "inline", {"source": PROGRAM}
        )

    def test_key_covers_op_and_params(self):
        base = request_key("inline", {"source": PROGRAM})
        assert request_key("check", {"source": PROGRAM}) != base
        assert request_key("inline", {"source": PROGRAM, "threshold": 1}) != base


class TestOps:
    def test_compile_reports_sizes(self):
        result = execute("compile", {"source": PROGRAM})
        assert result["code_size"] > 0
        assert "main" in result["functions"]
        assert "il" not in result

    def test_compile_dump_includes_il(self):
        result = execute("compile", {"source": PROGRAM, "dump": True})
        assert "func main" in result["il"] or "main" in result["il"]

    def test_profile_runs_the_program(self):
        result = execute("profile", {"source": ECHO, "stdin": "ping"})
        assert result["exit_code"] == 0
        assert result["stdout"] == "ping"
        assert result["il"] > 0

    def test_inline_eliminates_hot_calls(self):
        result = execute("inline", {"source": PROGRAM, "threshold": 1.0})
        assert result["expanded"] >= 1
        assert result["calls_after"] < result["calls_before"]

    def test_check_compares_original_and_inlined(self):
        result = execute("check", {"source": PROGRAM, "threshold": 1.0})
        assert result["ok"] is True
        assert result["divergences"] == []

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown operation"):
            execute("explode", {})

    def test_missing_source_raises(self):
        with pytest.raises(ValueError, match="source"):
            execute("compile", {})


class TestServiceRoundTrip:
    def test_ping(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            assert client.ping() == "pong"

    def test_service_matches_direct_calls(self, service):
        """The acceptance bar: service results == batch-path results."""
        socket_path, _obs, _handle = service
        requests = [
            ("compile", {"source": PROGRAM}),
            ("profile", {"source": ECHO, "stdin": "hello"}),
            ("inline", {"source": PROGRAM, "threshold": 1.0}),
            ("check", {"source": PROGRAM, "threshold": 1.0}),
        ]
        with ServiceClient(socket_path) as client:
            for op, params in requests:
                assert client.request(op, params) == execute(op, params)

    def test_error_reply_raises_service_error(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            with pytest.raises(ServiceError, match="unknown operation"):
                client.request("explode", {})
            # the connection survives an error reply
            assert client.ping() == "pong"

    def test_compile_error_is_an_error_reply_not_a_crash(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            with pytest.raises(ServiceError):
                client.compile("int main(void) { return !!!; }")
            assert client.stats()["counters"]["service.requests.failed"] == 1


class TestDeduplication:
    def test_identical_concurrent_requests_coalesce(self, service):
        socket_path, obs, _handle = service
        envelopes = run_concurrent(
            socket_path,
            [("inline", {"source": PROGRAM, "threshold": 1.0})] * 6,
        )
        assert all(env["ok"] for env in envelopes)
        results = [env["result"] for env in envelopes]
        assert all(result == results[0] for result in results)
        assert sum(1 for env in envelopes if env["coalesced"]) >= 1
        assert obs.metrics.counters["service.requests.coalesced"] >= 1
        # coalesced requests share one computation: strictly fewer
        # executions than requests.
        with ServiceClient(socket_path) as client:
            stats = client.stats()
        histogram = stats["histograms"]["service.request_seconds"]
        assert histogram["count"] < len(envelopes)

    def test_distinct_requests_do_not_coalesce(self, service):
        socket_path, obs, _handle = service
        envelopes = run_concurrent(
            socket_path,
            [
                ("compile", {"source": PROGRAM}),
                ("compile", {"source": ECHO}),
            ],
        )
        assert all(env["ok"] for env in envelopes)
        assert (
            envelopes[0]["result"]["code_size"]
            != envelopes[1]["result"]["code_size"]
        )


class TestTelemetry:
    def test_per_request_telemetry_absorbed_into_parent(self, service):
        socket_path, obs, handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
        handle.stop()
        workers = {
            record.get("worker")
            for record in obs.tracer.records
            if record.get("worker")
        }
        assert any(worker.startswith("request-") for worker in workers)
        assert obs.metrics.counters["service.requests"] >= 1
        assert obs.metrics.counters["service.batches"] >= 1

    def test_batch_size_histogram_recorded(self, service):
        socket_path, obs, _handle = service
        run_concurrent(socket_path, [("compile", {"source": PROGRAM})] * 3)
        assert obs.metrics.histogram("service.batch_size")["count"] >= 1


class TestShutdown:
    def test_graceful_shutdown_removes_socket(self, tmp_path):
        socket_path = str(tmp_path / "stop.sock")
        handle = serve_in_thread(socket_path, jobs=1)
        with ServiceClient(socket_path) as client:
            assert client.ping() == "pong"
        handle.stop()
        assert not os.path.exists(socket_path)

    def test_shutdown_op_drains(self, tmp_path):
        socket_path = str(tmp_path / "drain.sock")
        handle = serve_in_thread(socket_path, jobs=2)
        with ServiceClient(socket_path) as client:
            assert client.inline(PROGRAM, threshold=1.0)["expanded"] >= 1
            assert client.shutdown() == "draining"
        handle._thread.join(timeout=30)
        assert not handle._thread.is_alive()
        assert not os.path.exists(socket_path)


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            CompilationService("x.sock", jobs=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            CompilationService("x.sock", executor="fiber")


class TestProcessBackend:
    def test_process_pool_round_trip_with_shared_cache(self, tmp_path):
        socket_path = str(tmp_path / "proc.sock")
        cache_dir = str(tmp_path / "cache")
        obs = Observability.create()
        handle = serve_in_thread(
            socket_path, jobs=2, executor="process", cache_dir=cache_dir, obs=obs
        )
        try:
            with ServiceClient(socket_path) as client:
                direct = execute("inline", {"source": PROGRAM, "threshold": 1.0})
                assert client.inline(PROGRAM, threshold=1.0) == direct
                # the same compile again is served from the shared
                # disk store a sibling worker populated
                assert client.compile(PROGRAM)["code_size"] > 0
        finally:
            handle.stop()
        sharded = [
            name
            for _root, _dirs, files in os.walk(os.path.join(cache_dir, "v1"))
            for name in files
        ]
        assert sharded, "process workers populated the sharded store"
