"""Tests for the compilation service: ops, server, client, dedup,
health/metrics/stats introspection, trace propagation, and the slow log."""

import json
import os
import time

import pytest

from repro.observability import Observability, TraceContext
from repro.observability.context import valid_id
from repro.observability.export import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
)
from repro.service import (
    ServiceClient,
    ServiceError,
    execute,
    render_top,
    request_key,
    run_concurrent,
    serve_in_thread,
    watch,
)
from repro.service.server import CompilationService

PROGRAM = """
#include <sys.h>
int triple(int x) { return x * 3; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 40; i++)
        s += triple(i);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""

ECHO = """
#include <sys.h>
int main(void) {
    int c = getchar();
    while (c != EOF) { putchar(c); c = getchar(); }
    return 0;
}
"""


@pytest.fixture
def service(tmp_path):
    """A running service (thread pool, 2 workers) plus its parent obs."""
    socket_path = str(tmp_path / "svc.sock")
    obs = Observability.create()
    handle = serve_in_thread(socket_path, jobs=2, executor="thread", obs=obs)
    yield socket_path, obs, handle
    if not handle.service._stopped.is_set():
        handle.stop()


class TestRequestKey:
    def test_same_request_same_key(self):
        assert request_key("inline", {"source": PROGRAM}) == request_key(
            "inline", {"source": PROGRAM}
        )

    def test_key_covers_op_and_params(self):
        base = request_key("inline", {"source": PROGRAM})
        assert request_key("check", {"source": PROGRAM}) != base
        assert request_key("inline", {"source": PROGRAM, "threshold": 1}) != base


class TestOps:
    def test_compile_reports_sizes(self):
        result = execute("compile", {"source": PROGRAM})
        assert result["code_size"] > 0
        assert "main" in result["functions"]
        assert "il" not in result

    def test_compile_dump_includes_il(self):
        result = execute("compile", {"source": PROGRAM, "dump": True})
        assert "func main" in result["il"] or "main" in result["il"]

    def test_profile_runs_the_program(self):
        result = execute("profile", {"source": ECHO, "stdin": "ping"})
        assert result["exit_code"] == 0
        assert result["stdout"] == "ping"
        assert result["il"] > 0

    def test_inline_eliminates_hot_calls(self):
        result = execute("inline", {"source": PROGRAM, "threshold": 1.0})
        assert result["expanded"] >= 1
        assert result["calls_after"] < result["calls_before"]

    def test_check_compares_original_and_inlined(self):
        result = execute("check", {"source": PROGRAM, "threshold": 1.0})
        assert result["ok"] is True
        assert result["divergences"] == []

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="unknown operation"):
            execute("explode", {})

    def test_missing_source_raises(self):
        with pytest.raises(ValueError, match="source"):
            execute("compile", {})


class TestServiceRoundTrip:
    def test_ping(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            assert client.ping() == "pong"

    def test_service_matches_direct_calls(self, service):
        """The acceptance bar: service results == batch-path results."""
        socket_path, _obs, _handle = service
        requests = [
            ("compile", {"source": PROGRAM}),
            ("profile", {"source": ECHO, "stdin": "hello"}),
            ("inline", {"source": PROGRAM, "threshold": 1.0}),
            ("check", {"source": PROGRAM, "threshold": 1.0}),
        ]
        with ServiceClient(socket_path) as client:
            for op, params in requests:
                assert client.request(op, params) == execute(op, params)

    def test_error_reply_raises_service_error(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            with pytest.raises(ServiceError, match="unknown operation"):
                client.request("explode", {})
            # the connection survives an error reply
            assert client.ping() == "pong"

    def test_compile_error_is_an_error_reply_not_a_crash(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            with pytest.raises(ServiceError):
                client.compile("int main(void) { return !!!; }")
            assert client.stats()["counters"]["service.requests.failed"] == 1


class TestDeduplication:
    def test_identical_concurrent_requests_coalesce(self, service):
        socket_path, obs, _handle = service
        envelopes = run_concurrent(
            socket_path,
            [("inline", {"source": PROGRAM, "threshold": 1.0})] * 6,
        )
        assert all(env["ok"] for env in envelopes)
        results = [env["result"] for env in envelopes]
        assert all(result == results[0] for result in results)
        assert sum(1 for env in envelopes if env["coalesced"]) >= 1
        assert obs.metrics.counters["service.requests.coalesced"] >= 1
        # coalesced requests share one computation: strictly fewer
        # executions than requests.
        with ServiceClient(socket_path) as client:
            stats = client.stats()
        histogram = stats["histograms"]["service.request_seconds"]
        assert histogram["count"] < len(envelopes)

    def test_distinct_requests_do_not_coalesce(self, service):
        socket_path, obs, _handle = service
        envelopes = run_concurrent(
            socket_path,
            [
                ("compile", {"source": PROGRAM}),
                ("compile", {"source": ECHO}),
            ],
        )
        assert all(env["ok"] for env in envelopes)
        assert (
            envelopes[0]["result"]["code_size"]
            != envelopes[1]["result"]["code_size"]
        )


class TestTelemetry:
    def test_per_request_telemetry_absorbed_into_parent(self, service):
        socket_path, obs, handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
        handle.stop()
        workers = {
            record.get("worker")
            for record in obs.tracer.records
            if record.get("worker")
        }
        assert any(worker.startswith("request-") for worker in workers)
        assert obs.metrics.counters["service.requests"] >= 1
        assert obs.metrics.counters["service.batches"] >= 1

    def test_batch_size_histogram_recorded(self, service):
        socket_path, obs, _handle = service
        run_concurrent(socket_path, [("compile", {"source": PROGRAM})] * 3)
        assert obs.metrics.histogram("service.batch_size")["count"] >= 1


class TestShutdown:
    def test_graceful_shutdown_removes_socket(self, tmp_path):
        socket_path = str(tmp_path / "stop.sock")
        handle = serve_in_thread(socket_path, jobs=1)
        with ServiceClient(socket_path) as client:
            assert client.ping() == "pong"
        handle.stop()
        assert not os.path.exists(socket_path)

    def test_shutdown_op_drains(self, tmp_path):
        socket_path = str(tmp_path / "drain.sock")
        handle = serve_in_thread(socket_path, jobs=2)
        with ServiceClient(socket_path) as client:
            assert client.inline(PROGRAM, threshold=1.0)["expanded"] >= 1
            assert client.shutdown() == "draining"
        handle._thread.join(timeout=30)
        assert not handle._thread.is_alive()
        assert not os.path.exists(socket_path)


class TestValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            CompilationService("x.sock", jobs=0)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            CompilationService("x.sock", executor="fiber")


class TestProcessBackend:
    def test_process_pool_round_trip_with_shared_cache(self, tmp_path):
        socket_path = str(tmp_path / "proc.sock")
        cache_dir = str(tmp_path / "cache")
        obs = Observability.create()
        handle = serve_in_thread(
            socket_path, jobs=2, executor="process", cache_dir=cache_dir, obs=obs
        )
        try:
            with ServiceClient(socket_path) as client:
                direct = execute("inline", {"source": PROGRAM, "threshold": 1.0})
                assert client.inline(PROGRAM, threshold=1.0) == direct
                # the same compile again is served from the shared
                # disk store a sibling worker populated
                assert client.compile(PROGRAM)["code_size"] > 0
        finally:
            handle.stop()
        sharded = [
            name
            for _root, _dirs, files in os.walk(os.path.join(cache_dir, "v1"))
            for name in files
        ]
        assert sharded, "process workers populated the sharded store"


class TestHealthOp:
    def test_health_reports_live_and_ready(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["live"] is True
        assert health["ready"] is True
        assert health["checks"]["pool"] is True
        assert health["checks"]["socket"] is True
        assert health["uptime_seconds"] >= 0
        assert health["jobs"] == 2
        assert health["executor"] == "thread"

    def test_health_reports_cache_dir_writability(self, tmp_path):
        socket_path = str(tmp_path / "h.sock")
        cache_dir = str(tmp_path / "cache")
        handle = serve_in_thread(socket_path, jobs=1, cache_dir=cache_dir)
        try:
            with ServiceClient(socket_path) as client:
                health = client.health()
            assert health["checks"]["cache_dir"] is True
        finally:
            handle.stop()

    def test_draining_service_is_not_ready(self, tmp_path):
        socket_path = str(tmp_path / "d.sock")
        handle = serve_in_thread(socket_path, jobs=1)
        with ServiceClient(socket_path) as client:
            client.shutdown()
        handle._thread.join(timeout=30)
        assert not handle._thread.is_alive()


class TestMetricsOp:
    def test_metrics_op_returns_prometheus_text(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
            scrape = client.metrics()
        assert scrape["content_type"] == PROMETHEUS_CONTENT_TYPE
        families = parse_prometheus(scrape["body"])
        assert families["repro_service_requests_total"]["type"] == "counter"
        assert "repro_service_queue_depth" in families
        assert "repro_service_inflight" in families
        assert "repro_service_uptime_seconds" in families

    def test_metrics_op_exposes_per_op_latency(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
            client.inline(PROGRAM, threshold=1.0)
            scrape = client.metrics()
        families = parse_prometheus(scrape["body"])
        samples = families["repro_service_op_seconds"]["samples"]
        assert 'repro_service_op_seconds_count{op="compile"}' in samples
        assert 'repro_service_op_seconds_count{op="inline"}' in samples
        assert 'repro_service_op_seconds{op="compile",quantile="0.99"}' in samples

    def test_error_counter_labeled_by_op_and_class(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            with pytest.raises(ServiceError):
                client.compile("int main(void) { return !!!; }")
            scrape = client.metrics()
        families = parse_prometheus(scrape["body"])
        errors = families["repro_service_errors_total"]["samples"]
        assert any('op="compile"' in name for name in errors)

    def test_prom_out_file_export(self, tmp_path):
        socket_path = str(tmp_path / "p.sock")
        prom_out = str(tmp_path / "metrics.prom")
        handle = serve_in_thread(
            socket_path,
            jobs=1,
            obs=Observability.create(),
            prom_out=prom_out,
            prom_interval=0.05,
        )
        try:
            with ServiceClient(socket_path) as client:
                client.compile(PROGRAM)
                deadline = time.time() + 10
                while time.time() < deadline:
                    if os.path.exists(prom_out):
                        text = open(prom_out).read()
                        if "repro_service_requests_total" in text:
                            break
                    time.sleep(0.05)
        finally:
            handle.stop()
        families = parse_prometheus(open(prom_out).read())
        assert families["repro_service_requests_total"]["samples"]


class TestEnrichedStats:
    def test_stats_keeps_legacy_top_level_keys(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
            stats = client.stats()
        assert "counters" in stats and "histograms" in stats

    def test_stats_service_section(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
            client.compile(PROGRAM)
            stats = client.stats()
        section = stats["service"]
        assert section["uptime_seconds"] >= 0
        assert section["requests"]["total"] >= 2
        assert section["requests"]["failed"] == 0
        assert section["queue_depth"] == 0
        assert section["pool"]["jobs"] == 2
        assert section["pool"]["executor"] == "thread"
        ops = section["ops"]
        assert "compile" in ops
        for key in ("count", "mean", "p50", "p90", "p99"):
            assert key in ops["compile"]
        assert ops["compile"]["count"] >= 1

    def test_stats_cache_section_tracks_hit_rate(self, tmp_path):
        socket_path = str(tmp_path / "c.sock")
        cache_dir = str(tmp_path / "cache")
        handle = serve_in_thread(
            socket_path, jobs=1, cache_dir=cache_dir, obs=Observability.create()
        )
        try:
            with ServiceClient(socket_path) as client:
                client.compile(PROGRAM)
                client.compile(PROGRAM)
                stats = client.stats()
        finally:
            handle.stop()
        cache = stats["service"]["cache"]
        assert cache["hits"] + cache["misses"] >= 1
        assert 0.0 <= cache["hit_rate"] <= 1.0


class TestTracePropagation:
    def test_every_response_echoes_its_trace(self, service):
        socket_path, _obs, _handle = service
        context = TraceContext.mint()
        with ServiceClient(socket_path) as client:
            envelope = client.request(
                "compile", {"source": PROGRAM}, raw=True, trace=context
            )
        assert envelope["trace_id"] == context.trace_id
        assert envelope["request_id"] == context.request_id

    def test_client_mints_trace_when_absent(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            envelope = client.request("ping", raw=True)
        assert valid_id(envelope["trace_id"])
        assert valid_id(envelope["request_id"])

    def test_trace_id_spans_the_whole_request_path(self, service):
        """One grep over the trace reconstructs the request end-to-end."""
        socket_path, obs, handle = service
        context = TraceContext.mint()
        with ServiceClient(socket_path) as client:
            client.request("inline", {"source": PROGRAM, "threshold": 1.0},
                           trace=context)
        handle.stop()
        stamped = [
            record
            for record in obs.tracer.records
            if record.get("trace_id") == context.trace_id
            or record.get("attrs", {}).get("trace_id") == context.trace_id
        ]
        types = {record["type"] for record in stamped}
        names = {record.get("name") for record in stamped}
        # server-edge events and absorbed worker spans share the id
        assert "event" in types and "span" in types
        assert "service.dispatch" in names
        assert "service.request_done" in names
        workers = {r.get("worker") for r in stamped if r.get("worker")}
        assert workers, "absorbed pool-worker records carry the trace id"

    def test_trace_propagates_into_process_workers(self, tmp_path):
        socket_path = str(tmp_path / "t.sock")
        obs = Observability.create()
        handle = serve_in_thread(
            socket_path, jobs=2, executor="process", obs=obs
        )
        context = TraceContext.mint()
        try:
            with ServiceClient(socket_path) as client:
                client.request("compile", {"source": PROGRAM}, trace=context)
        finally:
            handle.stop()
        spans = [
            record
            for record in obs.tracer.records
            if record["type"] == "span"
            and record.get("trace_id") == context.trace_id
        ]
        assert spans, "process-worker spans are stamped with the trace id"

    def test_coalesced_requests_attach_all_trace_ids(self, service):
        socket_path, obs, handle = service
        contexts = [TraceContext.mint() for _ in range(6)]
        envelopes = run_concurrent(
            socket_path,
            [
                ("inline", {"source": PROGRAM, "threshold": 1.0}, context)
                for context in contexts
            ],
        )
        assert all(env["ok"] for env in envelopes)
        # every response echoes its own trace id, coalesced or not
        echoed = sorted(env["trace_id"] for env in envelopes)
        assert echoed == sorted(c.trace_id for c in contexts)
        handle.stop()
        done = [
            record
            for record in obs.tracer.records
            if record.get("name") == "service.request_done"
        ]
        attached = {
            trace_id
            for record in done
            for trace_id in record["attrs"].get("attached_trace_ids", [])
        }
        assert attached == {c.trace_id for c in contexts}


class TestSlowLog:
    def test_slow_requests_logged_with_trace_and_cache(self, tmp_path):
        socket_path = str(tmp_path / "s.sock")
        slow_log = str(tmp_path / "slow.jsonl")
        cache_dir = str(tmp_path / "cache")
        handle = serve_in_thread(
            socket_path,
            jobs=1,
            cache_dir=cache_dir,
            slow_log=slow_log,
            slow_threshold=0.0,
        )
        context = TraceContext.mint()
        try:
            with ServiceClient(socket_path) as client:
                client.request("compile", {"source": PROGRAM}, trace=context)
        finally:
            handle.stop()
        records = [
            json.loads(line) for line in open(slow_log).read().splitlines()
        ]
        assert records
        record = records[0]
        assert record["schema"] == 1
        assert record["kind"] == "slow"
        assert record["op"] == "compile"
        assert record["trace_id"] == context.trace_id
        assert record["seconds"] >= 0
        assert "cache_hits" in record and "cache_misses" in record

    def test_errors_logged_regardless_of_threshold(self, tmp_path):
        socket_path = str(tmp_path / "e.sock")
        slow_log = str(tmp_path / "slow.jsonl")
        handle = serve_in_thread(
            socket_path, jobs=1, slow_log=slow_log, slow_threshold=999.0
        )
        try:
            with ServiceClient(socket_path) as client:
                with pytest.raises(ServiceError):
                    client.compile("int main(void) { return !!!; }")
        finally:
            handle.stop()
        records = [
            json.loads(line) for line in open(slow_log).read().splitlines()
        ]
        kinds = {record["kind"] for record in records}
        assert "error" in kinds
        error = next(r for r in records if r["kind"] == "error")
        assert "error" in error and error["op"] == "compile"

    def test_fast_requests_not_logged(self, tmp_path):
        socket_path = str(tmp_path / "f.sock")
        slow_log = str(tmp_path / "slow.jsonl")
        handle = serve_in_thread(
            socket_path, jobs=1, slow_log=slow_log, slow_threshold=999.0
        )
        try:
            with ServiceClient(socket_path) as client:
                client.ping()
                client.compile(PROGRAM)
        finally:
            handle.stop()
        assert not os.path.exists(slow_log)


class TestTopDashboard:
    def test_render_top_shows_ops_and_cache(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
            stats = client.stats()
        text = render_top(stats)
        assert "uptime" in text
        assert "compile" in text
        assert "p99" in text

    def test_render_top_derives_rates_from_previous(self, service):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
            first = client.stats()
            client.inline(PROGRAM, threshold=1.0)
            second = client.stats()
        text = render_top(second, previous=first, interval=1.0)
        assert "req/s" in text

    def test_watch_single_poll(self, service, capsys):
        socket_path, _obs, _handle = service
        with ServiceClient(socket_path) as client:
            client.compile(PROGRAM)
        code = watch(socket_path, interval=0.01, count=1, clear=False)
        assert code == 0
        assert "compile" in capsys.readouterr().out

    def test_watch_unreachable_socket_fails(self, tmp_path):
        assert watch(str(tmp_path / "nope.sock"), count=1, clear=False) == 1
