"""Tests for the unified pass registry and PassManager."""

import pytest

from repro.compiler import compile_program
from repro.il.printer import format_module
from repro.inliner.manager import InlineExpander
from repro.inliner.params import InlineParameters
from repro.observability import Observability
from repro.opt import OptimizationStats, optimize_function, optimize_module
from repro.pipeline import (
    DEFAULT_OPT_SPEC,
    PassContext,
    PassManager,
    PassStats,
    available_passes,
    get_pass,
    parse_pass_spec,
)
from repro.profiler.profile import RunSpec, profile_module

SOURCE = """
#include <sys.h>
int square(int x) { return x * x; }
int add(int a, int b) { return a + b; }
int main(void) {
    int i; int total = 0;
    for (i = 0; i < 50; i = i + 1) total = add(total, square(i));
    print_int(total); putchar(10);
    return 0;
}
"""


def _fresh_module():
    return compile_program(SOURCE, "passmanager_test.c")


class TestRegistry:
    def test_all_builtin_passes_registered(self):
        names = available_passes()
        for expected in (
            "constant-fold", "copy-propagate", "cse", "jump-optimize",
            "dead-code", "callgraph", "classify", "linearize", "select",
            "expand", "cleanup",
        ):
            assert expected in names

    def test_pass_protocol_fields(self):
        for name in available_passes():
            pass_ = get_pass(name)
            assert pass_.name == name
            assert pass_.level in ("function", "module")
            assert isinstance(pass_.metrics, tuple)

    def test_aliases_resolve_to_canonical(self):
        assert get_pass("fold").name == "constant-fold"
        assert get_pass("copyprop").name == "copy-propagate"
        assert get_pass("jumpopt").name == "jump-optimize"
        assert get_pass("dce").name == "dead-code"

    def test_parse_spec_order_preserved(self):
        passes = parse_pass_spec("dce, fold ,cse")
        assert [p.name for p in passes] == ["dead-code", "constant-fold", "cse"]

    def test_unknown_pass_raises_with_menu(self):
        with pytest.raises(ValueError, match="unknown pass 'bogus'"):
            parse_pass_spec("fold,bogus")

    def test_empty_spec_raises(self):
        with pytest.raises(ValueError, match="empty pass spec"):
            parse_pass_spec(" , ")


class TestFunctionPipeline:
    def test_default_spec_matches_optimize_module(self):
        reference = _fresh_module()
        stats_ref = optimize_module(reference)

        managed = _fresh_module()
        manager = PassManager.from_spec(None)
        total = PassStats()
        for function in managed.functions.values():
            total.merge(manager.run_function(function))

        assert format_module(managed) == format_module(reference)
        assert total.by_pass == stats_ref.by_pass
        assert total.rounds == stats_ref.rounds

    def test_optimization_stats_is_pass_stats(self):
        assert OptimizationStats is PassStats

    def test_custom_spec_runs_only_named_passes(self):
        module = _fresh_module()
        stats = optimize_module(module, pass_spec="fold,dce")
        assert set(stats.by_pass) == {"constant-fold", "dead-code"}

    def test_optimize_function_spec(self):
        module = _fresh_module()
        stats = optimize_function(module.functions["main"], pass_spec="fold")
        assert set(stats.by_pass) == {"constant-fold"}
        assert stats.rounds >= 1

    def test_fixpoint_is_idempotent(self):
        module = _fresh_module()
        optimize_module(module)
        again = optimize_module(module)
        assert again.total_changes == 0

    def test_run_function_rejects_module_passes(self):
        manager = PassManager([get_pass("callgraph")])
        module = _fresh_module()
        with pytest.raises(ValueError, match="module-level"):
            manager.run_function(module.functions["main"])

    def test_per_pass_metrics_reported(self):
        obs = Observability.create()
        module = _fresh_module()
        optimize_module(module, obs=obs)
        histograms = obs.metrics.snapshot()["histograms"]
        assert any(
            name.startswith("pipeline.pass.") and name.endswith(".seconds")
            for name in histograms
        )


class TestInlinePhases:
    def test_phases_populate_context_state(self):
        module = _fresh_module()
        profile = profile_module(module, [RunSpec()])
        ctx = PassContext(
            module=module.clone(), profile=profile, params=InlineParameters()
        )
        manager = PassManager(
            [get_pass(n) for n in ("callgraph", "classify", "linearize",
                                   "select", "expand", "cleanup")],
            fixpoint=False,
        )
        manager.run_module(ctx.module, ctx)
        assert "graph" in ctx.state
        assert "main" in ctx.state["sequence"]
        assert ctx.state["selection"].selected
        assert ctx.state["records"]

    def test_expander_equivalent_to_manual_phases(self):
        module = _fresh_module()
        profile = profile_module(module, [RunSpec()])
        result = InlineExpander(module, profile).run()
        assert result.records
        assert result.module.total_code_size() == result.final_size
        # The §3 phase spans still appear under their historical names.
        obs = Observability.create()
        InlineExpander(module, profile, obs=obs).run()
        span_names = {
            r["name"] for r in obs.tracer.records if r["type"] == "span"
        }
        for expected in (
            "inline.callgraph", "inline.classify", "inline.linearize",
            "inline.select", "inline.expand", "inline.cleanup",
        ):
            assert expected in span_names


class TestSpecConstants:
    def test_default_opt_spec_parses(self):
        assert [p.name for p in parse_pass_spec(DEFAULT_OPT_SPEC)] == [
            "constant-fold", "copy-propagate", "cse", "jump-optimize",
            "dead-code",
        ]

    def test_manager_spec_roundtrip(self):
        manager = PassManager.from_spec("fold,dce")
        assert manager.spec == "constant-fold,dead-code"
