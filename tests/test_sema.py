"""Unit tests for semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.frontend.parser import parse_translation_unit as parse
from repro.frontend.sema import analyze
from repro.frontend.typesys import IntType, PointerType


def check(text):
    return analyze(parse(text))


def check_fails(text, fragment=""):
    with pytest.raises(SemanticError) as info:
        check(text)
    assert fragment in str(info.value)
    return info.value


class TestDeclarations:
    def test_undeclared_identifier(self):
        check_fails("int f(void) { return x; }", "undeclared")

    def test_undeclared_function_call(self):
        check_fails("int f(void) { return g(); }", "undeclared")

    def test_prototype_allows_call(self):
        result = check("int g(int x); int f(void) { return g(1); }")
        assert result.functions["g"].is_external

    def test_definition_after_use_via_prototype(self):
        result = check(
            "int g(int x); int f(void) { return g(1); }"
            "int g(int x) { return x; }"
        )
        assert not result.functions["g"].is_external

    def test_duplicate_local_raises(self):
        check_fails("int f(void) { int a; int a; return 0; }", "redeclaration")

    def test_shadowing_in_inner_scope_allowed(self):
        check("int f(void) { int a = 1; { int a = 2; } return a; }")

    def test_shadowing_of_global_allowed(self):
        check("int a; int f(void) { int a = 1; return a; }")

    def test_redefining_function_raises(self):
        check_fails(
            "int f(void) { return 0; } int f(void) { return 1; }",
            "redefinition",
        )

    def test_void_variable_raises(self):
        check_fails("int f(void) { void v; return 0; }", "void")

    def test_incomplete_struct_variable_raises(self):
        check_fails(
            "struct s; int f(void) { struct s v; return 0; }", "incomplete"
        )

    def test_incomplete_struct_pointer_ok(self):
        check("struct s; int f(struct s *p) { return 0; }")


class TestTypeChecking:
    def test_arithmetic_on_ints(self):
        check("int f(int a, int b) { return a * b + a % b; }")

    def test_pointer_plus_int(self):
        check("int f(int *p) { return *(p + 1); }")

    def test_pointer_minus_pointer(self):
        check("int f(int *p, int *q) { return p - q; }")

    def test_pointer_plus_pointer_raises(self):
        check_fails("int f(int *p, int *q) { return *(p + q); }", "operands")

    def test_dereference_non_pointer_raises(self):
        check_fails("int f(int a) { return *a; }", "dereference")

    def test_index_non_pointer_raises(self):
        check_fails("int f(int a) { return a[0]; }")

    def test_member_on_non_struct_raises(self):
        check_fails("int f(int a) { return a.x; }", "non-struct")

    def test_unknown_field_raises(self):
        check_fails(
            "struct s { int x; }; int f(struct s *p) { return p->y; }",
            "no field",
        )

    def test_arrow_on_non_pointer_raises(self):
        check_fails(
            "struct s { int x; }; int f(struct s v) { return v->x; }", "'->'"
        )

    def test_dot_on_struct_value(self):
        check("struct s { int x; }; int f(void) { struct s v; v.x = 1; return v.x; }")

    def test_call_arity_mismatch(self):
        check_fails(
            "int g(int a, int b) { return a; } int f(void) { return g(1); }",
            "argument",
        )

    def test_call_through_non_function_raises(self):
        check_fails("int f(int a) { return a(1); }", "not a function")

    def test_condition_must_be_scalar(self):
        check_fails(
            "struct s { int x; };"
            "int f(void) { struct s v; if (v) return 1; return 0; }",
            "scalar",
        )


class TestLvalues:
    def test_assign_to_literal_raises(self):
        check_fails("int f(void) { 1 = 2; return 0; }", "lvalue")

    def test_assign_to_call_raises(self):
        check_fails(
            "int g(void) { return 1; } int f(void) { g() = 2; return 0; }",
            "lvalue",
        )

    def test_assign_to_function_raises(self):
        check_fails(
            "int g(void) { return 1; } int f(void) { g = 0; return 0; }"
        )

    def test_increment_of_literal_raises(self):
        check_fails("int f(void) { return 1++; }", "lvalue")

    def test_assign_to_array_raises(self):
        check_fails("int f(void) { int a[3]; int b[3]; a = b; return 0; }")

    def test_address_of_literal_raises(self):
        check_fails("int f(void) { return *&5; }")


class TestReturns:
    def test_missing_value_raises(self):
        check_fails("int f(void) { return; }", "returns no value")

    def test_value_from_void_raises(self):
        check_fails("void f(void) { return 1; }", "returns a value")

    def test_struct_return_mismatch(self):
        check_fails(
            "struct s { int x; };"
            "int f(void) { struct s v; return v; }"
        )


class TestBreakContinue:
    def test_break_outside_loop(self):
        check_fails("int f(void) { break; return 0; }", "break")

    def test_continue_outside_loop(self):
        check_fails("int f(void) { continue; return 0; }", "continue")

    def test_break_in_switch_ok(self):
        check("int f(int a) { switch (a) { case 1: break; } return 0; }")

    def test_continue_in_switch_outside_loop_raises(self):
        check_fails(
            "int f(int a) { switch (a) { case 1: continue; } return 0; }",
            "continue",
        )


class TestAddressTaken:
    def test_local_address_taken_marked(self):
        result = check("int f(void) { int a = 1; int *p = &a; return *p; }")
        info = result.function_info["f"]
        assert info.locals[0].address_taken

    def test_plain_local_not_marked(self):
        result = check("int f(void) { int a = 1; return a; }")
        assert not result.function_info["f"].locals[0].address_taken

    def test_function_used_as_value_marked(self):
        result = check(
            "int g(int x) { return x; }"
            "int f(void) { int (*p)(int x) = g; return p(1); }"
        )
        assert result.functions["g"].address_taken

    def test_function_called_directly_not_marked(self):
        result = check(
            "int g(int x) { return x; } int f(void) { return g(1); }"
        )
        assert not result.functions["g"].address_taken

    def test_explicit_address_of_function(self):
        result = check(
            "int g(int x) { return x; }"
            "int f(void) { int (*p)(int x) = &g; return p(2); }"
        )
        assert result.functions["g"].address_taken

    def test_array_element_address_marks_array(self):
        result = check("int f(void) { int a[3]; int *p = &a[1]; return *p; }")
        assert result.function_info["f"].locals[0].address_taken


class TestExpressionTypes:
    def test_annotations_present(self):
        result = check("int f(int a) { return a + 1; }")
        body = result.unit.functions[0].body
        ret = body.statements[0]
        assert ret.value.ctype == IntType(4)

    def test_string_literal_type(self):
        result = check('char *f(void) { return "x"; }')
        ret = result.unit.functions[0].body.statements[0]
        assert isinstance(ret.value.ctype, PointerType)

    def test_externals_listed(self):
        result = check("int g(int x); int f(void) { return g(2); }")
        assert result.external_functions == ["g"]
