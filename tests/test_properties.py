"""Property-based tests (hypothesis).

The central property is differential: for randomly generated programs,
every transformation in the system — optimization, profile-guided
inlining, static-heuristic inlining — must preserve observable output.
A second family cross-validates the VM's 32-bit arithmetic against the
independent constant-expression evaluator, and the C-subset libc
against Python's semantics.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.baselines import leaf_inline, size_threshold_inline
from repro.compiler import compile_program
from repro.frontend.constexpr import apply_binary, apply_unary, wrap32
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.opt import optimize_module
from repro.profiler.profile import RunSpec, profile_module, run_once

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# ----------------------------------------------------------------------
# expression generator: (C text, python value with C semantics)

_SAFE_BINOPS = ("+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=", ">", ">=")


@st.composite
def c_expression(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        value = draw(st.integers(min_value=-120, max_value=120))
        return f"({value})", wrap32(value)
    kind = draw(st.sampled_from(("bin", "div", "shift", "un")))
    if kind == "un":
        op = draw(st.sampled_from(("-", "~", "!")))
        text, value = draw(c_expression(depth=depth - 1))
        return f"({op}{text})", apply_unary(op, value)
    left_text, left = draw(c_expression(depth=depth - 1))
    right_text, right = draw(c_expression(depth=depth - 1))
    if kind == "bin":
        op = draw(st.sampled_from(_SAFE_BINOPS))
        return f"({left_text} {op} {right_text})", apply_binary(op, left, right)
    if kind == "div":
        op = draw(st.sampled_from(("/", "%")))
        denominator_text = f"(({right_text}) | 1)"
        denominator = apply_binary("|", right, 1)
        return (
            f"({left_text} {op} {denominator_text})",
            apply_binary(op, left, denominator),
        )
    op = draw(st.sampled_from(("<<", ">>")))
    amount_text = f"(({right_text}) & 15)"
    amount = apply_binary("&", right, 15)
    return f"({left_text} {op} {amount_text})", apply_binary(op, left, amount)


class TestArithmeticAgreement:
    @_SETTINGS
    @given(c_expression())
    def test_vm_matches_reference(self, pair):
        text, expected = pair
        source = (
            "#include <sys.h>\n"
            f"int main(void) {{ print_int({text}); return 0; }}"
        )
        module = compile_program(source, link_libc=False)
        assert run_once(module).stdout == str(expected)

    @_SETTINGS
    @given(c_expression())
    def test_optimizer_agrees_with_vm(self, pair):
        text, expected = pair
        source = (
            "#include <sys.h>\n"
            f"int main(void) {{ print_int({text}); return 0; }}"
        )
        module = compile_program(source, link_libc=False)
        optimize_module(module)
        assert run_once(module).stdout == str(expected)

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_wrap32_idempotent_and_in_range(self, value):
        wrapped = wrap32(value)
        assert -(2**31) <= wrapped <= 2**31 - 1
        assert wrap32(wrapped) == wrapped
        assert (wrapped - value) % (2**32) == 0


# ----------------------------------------------------------------------
# random-program differential testing

@st.composite
def straightline_program(draw):
    """A program with helper functions and a loop in main."""
    n_helpers = draw(st.integers(min_value=1, max_value=4))
    helpers = []
    for index in range(n_helpers):
        body_text, _ = draw(c_expression(depth=2))
        mix = draw(st.sampled_from(("x +", "x *", "x ^", "")))
        helpers.append(
            f"int h{index}(int x) {{ return {mix} {body_text}; }}"
        )
    calls = " + ".join(
        f"h{draw(st.integers(min_value=0, max_value=n_helpers - 1))}(i)"
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    iterations = draw(st.integers(min_value=5, max_value=60))
    return (
        "#include <sys.h>\n"
        + "\n".join(helpers)
        + "\nint main(void) {\n"
        + "    int i; int s = 0;\n"
        + f"    for (i = 0; i < {iterations}; i++) s += {calls};\n"
        + "    print_int(s); putchar(10);\n"
        + "    return 0;\n}\n"
    )


class TestTransformationsPreserveBehaviour:
    @_SETTINGS
    @given(straightline_program())
    def test_optimize_preserves_output(self, source):
        module = compile_program(source)
        expected = run_once(module).stdout
        optimize_module(module)
        assert run_once(module).stdout == expected

    @_SETTINGS
    @given(
        straightline_program(),
        st.integers(min_value=1, max_value=50),
        st.sampled_from((1.1, 1.5, 3.0)),
        st.sampled_from(("weight", "hybrid")),
    )
    def test_inline_preserves_output(self, source, threshold, growth, method):
        module = compile_program(source)
        expected = run_once(module).stdout
        profile = profile_module(module, [RunSpec()])
        params = InlineParameters(
            weight_threshold=threshold, size_limit_factor=growth
        )
        result = inline_module(module, profile, params, linearize_method=method)
        assert run_once(result.module).stdout == expected

    @_SETTINGS
    @given(straightline_program())
    def test_inline_then_optimize_preserves_output(self, source):
        module = compile_program(source)
        expected = run_once(module).stdout
        profile = profile_module(module, [RunSpec()])
        result = inline_module(module, profile)
        optimize_module(result.module)
        assert run_once(result.module).stdout == expected

    @_SETTINGS
    @given(straightline_program(), st.integers(min_value=0, max_value=60))
    def test_static_heuristics_preserve_output(self, source, size_cap):
        module = compile_program(source)
        expected = run_once(module).stdout
        for result in (leaf_inline(module), size_threshold_inline(module, size_cap)):
            assert run_once(result.module).stdout == expected

    @_SETTINGS
    @given(straightline_program())
    def test_inline_never_increases_dynamic_calls(self, source):
        module = compile_program(source)
        before = run_once(module).counters.calls
        profile = profile_module(module, [RunSpec()])
        result = inline_module(module, profile)
        after = run_once(result.module).counters.calls
        assert after <= before

    @_SETTINGS
    @given(straightline_program())
    def test_size_accounting_matches_reality(self, source):
        module = compile_program(source)
        profile = profile_module(module, [RunSpec()])
        result = inline_module(module, profile)
        assert result.final_size == result.module.total_code_size()


# ----------------------------------------------------------------------
# libc vs Python

_TEXT = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=12,
).filter(lambda s: '"' not in s and "\\" not in s)


def _run_libc(call_text: str) -> str:
    source = (
        "#include <sys.h>\n#include <string.h>\n#include <stdlib.h>\n"
        f"int main(void) {{ print_int({call_text}); return 0; }}"
    )
    return run_once(compile_program(source)).stdout


class TestLibcAgainstPython:
    @_SETTINGS
    @given(_TEXT)
    def test_strlen(self, text):
        assert _run_libc(f'strlen("{text}")') == str(len(text))

    @_SETTINGS
    @given(_TEXT, _TEXT)
    def test_strcmp_sign(self, a, b):
        got = int(_run_libc(f'strcmp("{a}", "{b}")'))
        if a == b:
            assert got == 0
        elif a < b:
            assert got < 0
        else:
            assert got > 0

    @_SETTINGS
    @given(_TEXT, _TEXT)
    def test_strstr(self, haystack, needle):
        found = _run_libc(f'strstr("{haystack}", "{needle}") != NULL')
        assert found == ("1" if needle in haystack else "0")

    @_SETTINGS
    @given(st.integers(min_value=-99999, max_value=99999))
    def test_atoi_roundtrip(self, value):
        assert _run_libc(f'atoi("{value}")') == str(value)

    @_SETTINGS
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_itoa_roundtrip(self, value):
        source = (
            "#include <sys.h>\n#include <stdlib.h>\n"
            "int main(void) { char buf[16];"
            f" itoa({value}, buf); print_str(buf); return 0; }}"
        )
        assert run_once(compile_program(source)).stdout == str(value)

    @_SETTINGS
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=8))
    def test_sort_through_function_pointer(self, values):
        decls = ", ".join(str(v) for v in values)
        source = (
            "#include <sys.h>\n#include <stdlib.h>\n"
            "int cmp_int(char *a, char *b) { return *(int *)a - *(int *)b; }\n"
            f"int data[{len(values)}] = {{{decls}}};\n"
            "int main(void) { int i;"
            f" sort((char *)data, {len(values)}, 4, cmp_int);"
            f" for (i = 0; i < {len(values)}; i++)"
            " { print_int(data[i]); putchar(' '); } return 0; }"
        )
        out = run_once(compile_program(source)).stdout.split()
        assert [int(x) for x in out] == sorted(values)
