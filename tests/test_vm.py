"""Unit tests for the VM: counters, memory, traps, OS, builtins."""

import pytest

from repro.errors import ILError, VMTrap
from repro.compiler import compile_program
from repro.profiler.profile import RunSpec, run_once
from repro.vm.counters import Counters
from repro.vm.machine import Machine
from repro.vm.os import VirtualOS

from helpers import c_main, c_output, run_c


class TestCounters:
    def test_il_counts_real_instructions(self):
        result = run_c(c_main("print_int(1);"))
        assert result.counters.il > 0

    def test_ct_excludes_calls(self):
        # A straight-line program: the only CTs come from libc bodies
        # that never run, so zero control transfers in main itself.
        source = (
            "#include <sys.h>\n"
            "int main(void) { putchar('a'); return 0; }"
        )
        result = run_c(source, link_libc=False)
        assert result.counters.ct == 0
        assert result.counters.calls == 1

    def test_loop_counts_cts(self):
        source = (
            "#include <sys.h>\n"
            "int main(void) { int i; for (i = 0; i < 10; i++) ; return 0; }"
        )
        result = run_c(source, link_libc=False)
        # One cjump per iteration check (11 checks) + one jump per
        # iteration (10).
        assert result.counters.ct == 21

    def test_calls_and_returns_balance(self):
        result = run_c(c_main("print_int(strlen(\"abcd\"));"))
        assert result.counters.calls == result.counters.returns

    def test_site_counts_sum_to_calls(self):
        result = run_c(c_main("print_int(strlen(\"abcd\") + strlen(\"x\"));"))
        assert sum(result.counters.site_counts.values()) == result.counters.calls

    def test_func_counts_track_entries(self):
        source = c_main(
            "int i; for (i = 0; i < 7; i++) helper();",
            prelude="int calls = 0; void helper(void) { calls++; }",
        )
        result = run_c(source)
        assert result.counters.func_counts["helper"] == 7
        assert result.counters.func_counts["main"] == 1

    def test_branch_profiling_optional(self):
        module = compile_program(c_main("int i; for (i = 0; i < 3; i++) ;"))
        plain = Machine(module, VirtualOS()).run()
        assert plain.counters.branch_counts == {}
        profiled = Machine(module, VirtualOS(), collect_branches=True).run()
        assert profiled.counters.branch_counts
        taken = sum(pair[0] + pair[1] for pair in profiled.counters.branch_counts.values())
        assert taken > 0

    def test_merge_accumulates(self):
        a = Counters(il=10, ct=2, calls=1, site_counts={0: 1}, func_counts={"f": 1})
        b = Counters(il=5, ct=1, calls=2, site_counts={0: 2, 1: 1})
        a.merge(b)
        assert a.il == 15 and a.site_counts == {0: 3, 1: 1}
        assert a.func_counts == {"f": 1}

    def test_merge_all_fields(self):
        a = Counters(
            il=10,
            ct=2,
            calls=1,
            returns=1,
            func_counts={"f": 1},
            branch_counts={("f", 3): [2, 1]},
        )
        b = Counters(
            il=5,
            ct=1,
            calls=2,
            returns=2,
            func_counts={"f": 2, "g": 1},
            branch_counts={("f", 3): [1, 1], ("g", 0): [4, 0]},
        )
        a.merge(b)
        assert a.returns == 3
        assert a.func_counts == {"f": 3, "g": 1}
        assert a.branch_counts == {("f", 3): [3, 2], ("g", 0): [4, 0]}

    def test_merge_empty_is_identity(self):
        a = Counters(il=7, ct=3, calls=2, returns=2, site_counts={4: 9})
        before = (a.il, a.ct, a.calls, a.returns, dict(a.site_counts))
        a.merge(Counters())
        assert (a.il, a.ct, a.calls, a.returns, dict(a.site_counts)) == before

    def test_scaled_averages_every_field(self):
        total = Counters(
            il=100,
            ct=40,
            calls=20,
            returns=20,
            site_counts={0: 10, 1: 5},
            func_counts={"main": 4},
            branch_counts={("main", 2): [8, 4]},
        )
        avg = total.scaled(4)
        assert (avg.il, avg.ct, avg.calls, avg.returns) == (25, 10, 5, 5)
        assert avg.site_counts == {0: 2.5, 1: 1.25}
        assert avg.func_counts == {"main": 1.0}
        assert avg.branch_counts == {("main", 2): [2.0, 1.0]}
        # scaling never mutates the source counters
        assert total.il == 100 and total.site_counts == {0: 10, 1: 5}

    def test_to_summary_round_trips_scalars(self):
        counters = Counters(il=9, ct=4, calls=3, returns=2)
        summary = counters.to_summary()
        assert summary == {"il": 9, "ct": 4, "calls": 3, "returns": 2}
        import json

        assert json.loads(json.dumps(summary)) == summary


class TestMemory:
    def test_malloc_returns_distinct_regions(self):
        source = c_main(
            "char *a = malloc(10); char *b = malloc(10);"
            " a[0] = 'x'; b[0] = 'y'; print_int(a[0] != b[0]);"
            " print_int(a != b);"
        )
        assert c_output(source) == "11"

    def test_malloc_zeroed(self):
        assert c_output(c_main(
            "int *p = (int *)malloc(8); print_int(p[0] + p[1]);"
        )) == "0"

    def test_word_round_trip_negative(self):
        assert c_output(c_main(
            "int *p = (int *)malloc(4); *p = -123456; print_int(*p);"
        )) == "-123456"

    def test_byte_store_truncates(self):
        assert c_output(c_main(
            "char *p = malloc(1); *p = 0x141; print_int(*p);"
        )) == "65"

    def test_function_pointer_survives_memory(self):
        source = c_main(
            "int (**slot)(int v) = (int (**)(int v))malloc(4);"
            " *slot = bump; print_int((*slot)(4));",
            prelude="int bump(int v) { return v + 1; }",
        )
        assert c_output(source) == "5"

    def test_out_of_range_load_traps(self):
        with pytest.raises(VMTrap):
            run_c(c_main("int *p = (int *)99999999; print_int(*p);"))

    def test_fuel_limit_stops_infinite_loop(self):
        module = compile_program(c_main("while (1) ;"))
        with pytest.raises(VMTrap, match="fuel"):
            Machine(module, VirtualOS(), fuel=10_000).run()


class TestArgv:
    def test_argc_argv(self):
        source = """
        #include <sys.h>
        #include <string.h>
        int main(int argc, char **argv) {
            print_int(argc);
            putchar(' ');
            print_str(argv[1]);
            return 0;
        }
        """
        assert c_output(source, argv=["hello", "world"]) == "3 hello"

    def test_argv0_is_program_name(self):
        source = """
        #include <sys.h>
        int main(int argc, char **argv) { print_str(argv[0]); return 0; }
        """
        assert c_output(source) == "main"

    def test_wrong_main_arity_rejected(self):
        module = compile_program("int main(int only) { return only; }")
        with pytest.raises(ILError, match="parameters"):
            Machine(module).run()


class TestVirtualOS:
    def test_stdin_eof(self):
        source = c_main("print_int(getchar()); print_int(getchar());")
        assert c_output(source, stdin=b"A") == "65-1"

    def test_stdout_capture(self):
        result = run_c(c_main("putchar('h'); putchar('i');"))
        assert bytes(result.os.stdout) == b"hi"

    def test_stderr_separate(self):
        result = run_c(c_main("eputc('e'); putchar('o');"))
        assert result.os.stderr_text() == "e"
        assert result.stdout == "o"

    def test_file_read(self):
        source = c_main(
            'int fd = open("in.txt", O_READ);'
            " print_int(fgetc(fd)); print_int(fsize(fd)); close(fd);"
        )
        assert c_output(source, files={"in.txt": b"XY"}) == "882"

    def test_file_write_visible_after_close(self):
        source = c_main(
            'int fd = open("out.txt", O_WRITE);'
            " fputc('o', fd); fputc('k', fd); close(fd);"
        )
        result = run_c(source)
        assert result.os.written_files["out.txt"] == b"ok"

    def test_open_missing_file_returns_eof(self):
        assert c_output(c_main(
            'print_int(open("ghost", O_READ));'
        )) == "-1"

    def test_rewind(self):
        source = c_main(
            'int fd = open("f", O_READ);'
            " fgetc(fd); fgetc(fd); rewindf(fd); print_int(fgetc(fd));"
        )
        assert c_output(source, files={"f": b"AB"}) == "65"

    def test_fputc_to_stdout_fd(self):
        assert c_output(c_main("fputc('z', 1);")) == "z"

    def test_bad_fd_traps(self):
        with pytest.raises(VMTrap):
            run_c(c_main("fgetc(42);"))

    def test_exit_builtin(self):
        result = run_c(c_main("putchar('a'); exit(3); putchar('b');"))
        assert result.exit_code == 3
        assert result.stdout == "a"

    def test_abort_traps(self):
        with pytest.raises(VMTrap, match="abort"):
            run_c(c_main("abort();"))


class TestBlockIO:
    def test_read_stdin_block(self):
        source = c_main(
            "char buf[8]; int n = read_stdin(buf, 8);"
            " print_int(n); putchar(' ');"
            " { int i; for (i = 0; i < n; i++) putchar(buf[i]); }"
        )
        assert c_output(source, stdin=b"abc") == "3 abc"

    def test_write_stdout_block(self):
        source = c_main(
            'char buf[4]; buf[0] = \'h\'; buf[1] = \'i\'; write_stdout(buf, 2);'
        )
        assert c_output(source) == "hi"

    def test_buffered_reader_matches_getchar(self):
        data = bytes(range(1, 200)) * 3
        direct = run_c(c_main(
            "int c = getchar(); int s = 0;"
            " while (c != EOF) { s += c; c = getchar(); } print_int(s);"
        ), stdin=data)
        buffered = run_c(
            "#include <sys.h>\n#include <bio.h>\n"
            "int main(void) { int c = bgetchar(); int s = 0;"
            " while (c != EOF) { s += c; c = bgetchar(); }"
            " print_int(s); return 0; }",
            stdin=data,
        )
        assert direct.stdout == buffered.stdout
        # Buffered I/O issues far fewer external read calls.
        direct_ext = direct.counters.func_counts.get("getchar", 0)
        buffered_ext = buffered.counters.func_counts.get("read_stdin", 0)
        assert buffered_ext * 10 < direct_ext

    def test_buffered_file_reader(self):
        source = (
            "#include <sys.h>\n#include <bio.h>\n"
            "int main(void) {"
            ' int fd = open("f", O_READ); int c = bfgetc(fd); int n = 0;'
            " while (c != EOF) { n++; c = bfgetc(fd); }"
            " print_int(n); return 0; }"
        )
        assert c_output(source, files={"f": b"x" * 500}) == "500"

    def test_buffered_output_flushes(self):
        source = (
            "#include <sys.h>\n#include <bio.h>\n"
            "int main(void) { int i;"
            " for (i = 0; i < 300; i++) bputchar('a' + i % 26);"
            " bflush(); return 0; }"
        )
        out = c_output(source)
        assert len(out) == 300 and out.startswith("abc")


class TestExternalsWithoutLibc:
    def test_unlinked_libc_calls_are_external(self):
        module = compile_program(
            "#include <string.h>\n#include <sys.h>\n"
            "int main(void) { return 0; }",
            link_libc=False,
        )
        assert "strlen" in module.externals

    def test_calling_unimplemented_external_traps(self):
        module = compile_program(
            "int mystery(int x);\n"
            "int main(void) { return mystery(1); }",
            link_libc=False,
        )
        with pytest.raises(VMTrap, match="unavailable external"):
            Machine(module).run()


class TestSoundnessFixes:
    """Regression tests for the VM soundness bugfix batch."""

    def test_direct_call_arity_mismatch_rejected_at_link(self):
        # A direct CALL with the wrong argument count is a malformed
        # module; it must be rejected when the Machine links it, not
        # silently overwrite callee temporaries at run time.
        from repro.il.instructions import Opcode

        module = compile_program(c_main(
            "print_int(one(1));",
            prelude="int one(int a) { return a; }",
        ))
        for instr in module.functions["main"].body:
            if instr.op is Opcode.CALL and instr.name == "one":
                instr.args.append(7)
        with pytest.raises(ILError, match="expected 1"):
            Machine(module)

    def test_write_stdout_negative_length_reports_zero(self):
        source = c_main("char b[4]; print_int(write_stdout(b, -5));")
        result = run_c(source)
        assert result.stdout == "0"

    def test_write_block_negative_length_reports_zero(self):
        source = c_main("char b[4]; print_int(write_block(1, b, -3));")
        result = run_c(source)
        assert result.stdout == "0"

    def test_read_stdin_negative_maximum_reads_nothing(self):
        source = c_main(
            "char b[4]; print_int(read_stdin(b, -2));"
            " print_int(getchar());"
        )
        # The clamp must not consume input: the next getchar still
        # sees the first stdin byte.
        assert c_output(source, stdin=b"A") == "065"

    def test_read_block_negative_maximum_reads_nothing(self):
        source = c_main(
            'int fd = open("f", O_READ);'
            " print_int(read_block(fd, (char *)0, -1));"
            " print_int(fgetc(fd));"
        )
        assert c_output(source, files={"f": b"B"}) == "066"

    def test_machine_is_single_shot(self):
        module = compile_program(c_main("putchar('x');"))
        machine = Machine(module, VirtualOS())
        machine.run()
        with pytest.raises(ILError, match="single-shot"):
            machine.run()

    def test_heap_limit_traps(self):
        module = compile_program(c_main("while (1) malloc(4096);"))
        with pytest.raises(VMTrap, match="out of heap memory"):
            Machine(module, VirtualOS(), heap_limit=1 << 16).run()

    def test_default_heap_limit_allows_normal_allocation(self):
        assert c_output(c_main(
            "char *p = malloc(1 << 20); p[0] = 'y'; putchar(p[0]);"
        )) == "y"


class TestIndirectCallCorners:
    def test_function_pointer_to_external(self):
        # Taking the address of an external (body-less) function and
        # calling through it must dispatch to the builtin.
        source = c_main(
            "int (*emit)(int c) = putchar; emit('o'); emit('k');"
        )
        assert c_output(source) == "ok"

    def test_icall_arity_mismatch_traps(self):
        source = """
        #include <sys.h>
        int two(int a, int b) { return a + b; }
        int main(void) {
            int (*p)(int v) = (int (*)(int v))two;  /* wrong arity */
            return p(1);
        }
        """
        with pytest.raises(VMTrap, match="args"):
            run_c(source)

    def test_icall_through_garbage_traps(self):
        source = c_main("int (*p)(int v) = (int (*)(int v))12345; p(1);")
        with pytest.raises(VMTrap, match="bad pointer"):
            run_c(source)

    def test_function_pointer_equality(self):
        source = c_main(
            "int (*p)(int c) = putchar; int (*q)(int c) = putchar;"
            " print_int(p == q);"
        )
        assert c_output(source) == "1"

    def test_function_pointer_in_struct(self):
        source = c_main(
            "struct op row; row.apply = dbl; print_int(row.apply(21));",
            prelude=(
                "int dbl(int x) { return 2 * x; }"
                "struct op { int (*apply)(int x); };"
            ),
        )
        assert c_output(source) == "42"
