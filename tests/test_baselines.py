"""Unit tests for the no-profile baseline heuristics."""

from repro.baselines import (
    hint_inline,
    leaf_inline,
    loop_inline,
    size_threshold_inline,
)
from repro.compiler import compile_program
from repro.inliner.params import InlineParameters
from repro.profiler.profile import RunSpec, run_once

SOURCE = """
#include <sys.h>
inline int hinted(int x) { return x + 1; }
int leaf(int x) { return x * 2; }
int nonleaf(int x) { return leaf(x) + 1; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 10; i++)
        s += nonleaf(i) + hinted(i);
    s += leaf(s);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""


def compiled():
    return compile_program(SOURCE)


class TestLeafInline:
    def test_expands_leaf_calls(self):
        result = leaf_inline(compiled())
        callees = {record.callee for record in result.records}
        assert "leaf" in callees

    def test_preserves_output(self):
        module = compiled()
        result = leaf_inline(module)
        assert run_once(result.module).stdout == run_once(module).stdout

    def test_original_untouched(self):
        module = compiled()
        before = module.total_code_size()
        leaf_inline(module)
        assert module.total_code_size() == before

    def test_transitive_leaves(self):
        # After leaf is inlined into nonleaf, nonleaf itself is a leaf,
        # but single-pass PL.8-style expansion works on the original
        # leaf set only; nonleaf's call sites remain candidates because
        # the callee-first order expands leaf into nonleaf first.
        result = leaf_inline(compiled())
        assert result.final_size >= result.original_size


class TestLoopInline:
    def test_expands_loop_sites(self):
        result = loop_inline(compiled())
        callees = {record.callee for record in result.records}
        assert "nonleaf" in callees or "hinted" in callees

    def test_preserves_output(self):
        module = compiled()
        result = loop_inline(module)
        assert run_once(result.module).stdout == run_once(module).stdout


class TestSizeThreshold:
    def test_small_functions_inlined(self):
        result = size_threshold_inline(compiled(), max_callee_size=50)
        assert result.records

    def test_zero_threshold_inlines_nothing(self):
        result = size_threshold_inline(compiled(), max_callee_size=0)
        assert result.records == []

    def test_preserves_output(self):
        module = compiled()
        result = size_threshold_inline(module, 50)
        assert run_once(result.module).stdout == run_once(module).stdout


class TestHintInline:
    def test_only_hinted_functions(self):
        result = hint_inline(compiled())
        callees = {record.callee for record in result.records}
        assert callees == {"hinted"}

    def test_preserves_output(self):
        module = compiled()
        result = hint_inline(module)
        assert run_once(result.module).stdout == run_once(module).stdout


class TestSizeCap:
    def test_cap_respected(self):
        params = InlineParameters(size_limit_factor=1.01)
        module = compiled()
        result = leaf_inline(module, params)
        # Selection stays within the projected cap; physical growth can
        # exceed it slightly because transitive bodies grow, so allow a
        # small tolerance above the selection-time bound.
        assert result.final_size <= int(result.original_size * 1.2)


class TestRecursionSafety:
    def test_recursive_calls_never_expanded(self):
        source = """
        int f(int n) { return n <= 0 ? 0 : f(n - 1) + 1; }
        int main(void) { return f(5) == 5 ? 0 : 1; }
        """
        module = compile_program(source)
        for heuristic in (leaf_inline, loop_inline):
            result = heuristic(module)
            assert all(record.callee != "f" or record.caller != "f"
                       for record in result.records)
            assert run_once(result.module, RunSpec()).exit_code == 0
