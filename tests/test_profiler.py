"""Unit tests for the profiler."""

import pytest

from repro.compiler import compile_program
from repro.profiler.profile import (
    ProfileData,
    RunSpec,
    profile_module,
    run_once,
)
from repro.vm.counters import Counters

ECHO_COUNT = """
#include <sys.h>
int seen(int c) { return c != EOF; }
int main(void) {
    int n = 0;
    int c = getchar();
    while (seen(c)) {
        n++;
        c = getchar();
    }
    print_int(n);
    return 0;
}
"""


class TestRunSpec:
    def test_make_os_copies_state(self):
        spec = RunSpec(stdin=b"x", files={"f": b"y"}, argv=["a"])
        os1 = spec.make_os()
        os2 = spec.make_os()
        os1.files["g"] = b"z"
        assert "g" not in os2.files

    def test_label_free_form(self):
        assert RunSpec(label="hello").label == "hello"


class TestProfileModule:
    def test_requires_inputs(self):
        module = compile_program("int main(void) { return 0; }")
        with pytest.raises(ValueError):
            profile_module(module, [])

    def test_single_run_weights(self):
        module = compile_program(ECHO_COUNT)
        profile = profile_module(module, [RunSpec(stdin=b"abc")])
        assert profile.node_weight("seen") == 4  # 3 chars + EOF
        assert profile.node_weight("main") == 1

    def test_weights_averaged_over_runs(self):
        module = compile_program(ECHO_COUNT)
        specs = [RunSpec(stdin=b"ab"), RunSpec(stdin=b"abcd")]
        profile = profile_module(module, specs)
        assert profile.runs == 2
        assert profile.node_weight("seen") == 4  # (3 + 5) / 2

    def test_arc_weights_keyed_by_site(self):
        module = compile_program(ECHO_COUNT)
        profile = profile_module(module, [RunSpec(stdin=b"xyz")])
        assert sum(profile.arc_weights.values()) == profile.avg_calls

    def test_missing_names_weight_zero(self):
        module = compile_program(ECHO_COUNT)
        profile = profile_module(module, [RunSpec()])
        assert profile.node_weight("not_a_function") == 0.0
        assert profile.arc_weight(123456) == 0.0

    def test_nonzero_exit_raises_by_default(self):
        module = compile_program("int main(void) { return 3; }")
        with pytest.raises(RuntimeError, match="exited with 3"):
            profile_module(module, [RunSpec()])

    def test_nonzero_exit_tolerated_when_asked(self):
        module = compile_program("int main(void) { return 3; }")
        profile = profile_module(module, [RunSpec()], check_exit=False)
        assert profile.runs == 1

    def test_avg_properties(self):
        module = compile_program(ECHO_COUNT)
        profile = profile_module(
            module, [RunSpec(stdin=b"a"), RunSpec(stdin=b"abc")]
        )
        assert profile.avg_il == profile.total.il / 2
        assert profile.avg_calls == profile.total.calls / 2
        assert profile.avg_ct > 0


class TestRunOnce:
    def test_stdout_exposed(self):
        module = compile_program(ECHO_COUNT)
        result = run_once(module, RunSpec(stdin=b"hello"))
        assert result.stdout == "5"

    def test_default_spec(self):
        module = compile_program(ECHO_COUNT)
        assert run_once(module).stdout == "0"

    def test_determinism(self):
        module = compile_program(ECHO_COUNT)
        spec = RunSpec(stdin=b"deterministic!")
        first = run_once(module, spec)
        second = run_once(module, spec)
        assert first.stdout == second.stdout
        assert first.counters.il == second.counters.il
        assert first.counters.site_counts == second.counters.site_counts


class TestProfileData:
    def test_from_counters_divides(self):
        counters = Counters(il=100, ct=20, calls=10)
        counters.func_counts = {"f": 10}
        counters.site_counts = {0: 10}
        profile = ProfileData.from_counters(counters, runs=2)
        assert profile.avg_il == 50
        assert profile.node_weight("f") == 5
        assert profile.arc_weight(0) == 5

    def test_zero_runs_guarded(self):
        profile = ProfileData.from_counters(Counters(), runs=0)
        assert profile.avg_il == 0.0


class TestCountersScaled:
    def test_scaled_divides_everything(self):
        counters = Counters(il=100, ct=20, calls=10, returns=10)
        counters.site_counts = {1: 10}
        counters.func_counts = {"f": 10}
        counters.branch_counts = {("f", 3): [6, 4]}
        scaled = counters.scaled(2)
        assert scaled.il == 50 and scaled.ct == 10
        assert scaled.site_counts == {1: 5.0}
        assert scaled.func_counts == {"f": 5.0}
        assert scaled.branch_counts == {("f", 3): [3.0, 2.0]}


class TestErrorFormatting:
    def test_location_prefix(self):
        from repro.errors import ReproError, SourceLocation

        error = ReproError("boom", SourceLocation("a.c", 3, 7))
        assert str(error) == "a.c:3:7: boom"

    def test_no_location(self):
        from repro.errors import ReproError

        assert str(ReproError("boom")) == "boom"
