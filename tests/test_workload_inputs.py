"""Tests for the deterministic workload input generators."""

from repro.workloads.inputs import (
    binary_blob,
    c_source_text,
    number_list,
    skewed_text,
    word_text,
)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        assert word_text(3, 100) == word_text(3, 100)
        assert binary_blob(3, 64) == binary_blob(3, 64)
        assert skewed_text(3, 64) == skewed_text(3, 64)
        assert c_source_text(3, 5) == c_source_text(3, 5)
        assert number_list(3, 10) == number_list(3, 10)

    def test_different_seed_different_bytes(self):
        assert word_text(1, 100) != word_text(2, 100)
        assert binary_blob(1, 64) != binary_blob(2, 64)


class TestWordText:
    def test_word_count(self):
        text = word_text(0, 50).decode()
        assert len(text.split()) == 50

    def test_ends_with_newline(self):
        assert word_text(0, 10).endswith(b"\n")

    def test_line_wrapping(self):
        lines = word_text(0, 64, line_words=8).decode().strip().split("\n")
        assert all(len(line.split()) <= 8 for line in lines)


class TestCSourceText:
    def test_contains_defines_and_functions(self):
        text = c_source_text(0, 4).decode()
        assert "#define LIMIT" in text
        assert text.count("fn_") >= 4
        assert "return" in text

    def test_function_count_scales(self):
        small = c_source_text(0, 2)
        large = c_source_text(0, 20)
        assert len(large) > len(small)


class TestBinaryAndSkewed:
    def test_blob_length(self):
        assert len(binary_blob(0, 123)) == 123

    def test_blob_uses_full_byte_range(self):
        blob = binary_blob(0, 2000)
        assert max(blob) > 200 and min(blob) < 30

    def test_skewed_is_compressible(self):
        import zlib

        data = skewed_text(0, 2000)
        assert len(zlib.compress(data)) < len(data) // 2

    def test_skewed_alphabet_respected(self):
        data = skewed_text(0, 500)
        assert set(data) <= set(b"abcdefgh ")


class TestNumberList:
    def test_parses_as_integers(self):
        values = [int(line) for line in number_list(0, 20).split()]
        assert len(values) == 20
        assert all(0 <= v < 10000 for v in values)
