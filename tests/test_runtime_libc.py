"""Tests for the C-subset libc itself (runtime package)."""

from repro.runtime import standard_headers

from helpers import c_main, c_output


class TestHeaders:
    def test_all_headers_present(self):
        headers = standard_headers()
        assert set(headers) >= {"sys.h", "string.h", "ctype.h", "stdlib.h", "bio.h"}

    def test_double_include_safe(self):
        source = (
            "#include <string.h>\n#include <string.h>\n#include <sys.h>\n"
            "int main(void) { return strlen(\"ab\") == 2 ? 0 : 1; }"
        )
        assert c_output(source) == ""


class TestStringFunctions:
    def test_strncmp_prefix(self):
        assert c_output(c_main(
            'print_int(strncmp("abcdef", "abcxyz", 3));'
            ' print_int(strncmp("abcdef", "abcxyz", 4) < 0);'
        )) == "01"

    def test_strncpy_pads(self):
        assert c_output(c_main(
            'char buf[6]; buf[5] = 0;'
            ' strncpy(buf, "ab", 5);'
            " print_int(buf[1]); print_int(buf[2]); print_int(buf[4]);"
        )) == f"{ord('b')}00"

    def test_strcat(self):
        assert c_output(c_main(
            'char buf[16] = "foo"; strcat(buf, "bar"); print_str(buf);'
        )) == "foobar"

    def test_strchr_found_and_missing(self):
        assert c_output(c_main(
            'char *s = "hello";'
            " print_int(strchr(s, 'l') - s);"
            " print_int(strchr(s, 'z') == NULL);"
        )) == "21"

    def test_strchr_finds_terminator(self):
        assert c_output(c_main(
            'char *s = "hi"; print_int(strchr(s, 0) - s);'
        )) == "2"

    def test_strstr_positions(self):
        assert c_output(c_main(
            'char *h = "ababc";'
            ' print_int(strstr(h, "abc") - h);'
            ' print_int(strstr(h, "") == h);'
        )) == "21"

    def test_memcpy_memcmp_memset(self):
        assert c_output(c_main(
            "char a[4]; char b[4];"
            " memset(a, 7, 4); memcpy(b, a, 4);"
            " print_int(memcmp(a, b, 4));"
            " b[2] = 9; print_int(memcmp(a, b, 4) < 0);"
        )) == "01"


class TestCtype:
    def test_classifications(self):
        assert c_output(c_main(
            "print_int(isdigit('5')); print_int(isdigit('x'));"
            " print_int(isalpha('Q')); print_int(isalpha('9'));"
            " print_int(isalnum('_')); print_int(isspace(' '));"
            " print_int(isspace('\\t')); print_int(isspace('a'));"
        )) == "10100110"

    def test_case_conversion(self):
        assert c_output(c_main(
            "print_int(toupper('a') == 'A');"
            " print_int(tolower('Z') == 'z');"
            " print_int(toupper('3') == '3');"
        )) == "111"


class TestStdlib:
    def test_atoi_whitespace_and_sign(self):
        assert c_output(c_main(
            'print_int(atoi("  -42")); putchar(32); print_int(atoi("+7x"));'
        )) == "-42 7"

    def test_abs(self):
        assert c_output(c_main("print_int(abs(-9) + abs(4));")) == "13"

    def test_rand_deterministic_after_srand(self):
        assert c_output(c_main(
            "int a; int b; srand(5); a = rand(); srand(5); b = rand();"
            " print_int(a == b); print_int(a >= 0);"
        )) == "11"

    def test_sort_stability_of_size(self):
        assert c_output(c_main(
            "int v[5] = {5, 3, 4, 1, 2}; int i;"
            " sort((char *)v, 5, 4, cmp);"
            " for (i = 0; i < 5; i++) print_int(v[i]);",
            prelude="int cmp(char *a, char *b) { return *(int *)a - *(int *)b; }",
        )) == "12345"


class TestBufferedIO:
    def test_bput_int_negative(self):
        source = (
            "#include <sys.h>\n#include <bio.h>\n"
            "int main(void) { bput_int(-307); bflush(); return 0; }"
        )
        assert c_output(source) == "-307"

    def test_interleaved_two_files(self):
        source = (
            "#include <sys.h>\n#include <bio.h>\n"
            "int main(void) {"
            ' int fa = open("a", O_READ); int fb = open("b", O_READ);'
            " int i; for (i = 0; i < 3; i++) {"
            " putchar(bfgetc(fa)); putchar(bfgetc(fb)); }"
            " return 0; }"
        )
        assert c_output(source, files={"a": b"AAA", "b": b"BBB"}) == "ABABAB"

    def test_bgetchar_eof_persistent(self):
        source = (
            "#include <sys.h>\n#include <bio.h>\n"
            "int main(void) { bgetchar();"
            " print_int(bgetchar()); print_int(bgetchar()); return 0; }"
        )
        assert c_output(source, stdin=b"x") == "-1-1"
