"""Unit tests for the optimizer passes."""

from repro.compiler import compile_program
from repro.il.instructions import Opcode
from repro.il.verifier import verify_module
from repro.opt import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
    optimize_module,
    optimize_jumps,
    propagate_copies,
)
from repro.profiler.profile import run_once

from helpers import c_main, c_output


def compiled(source):
    return compile_program(source, link_libc=False)


def op_count(function, opcode):
    return sum(1 for instr in function.body if instr.op is opcode)


SIMPLE = """
#include <sys.h>
int main(void) {
    int a = 2 + 3;
    int b = a * 4;
    print_int(b);
    return 0;
}
"""


class TestConstantFolding:
    def test_folds_arithmetic_chain(self):
        module = compiled(SIMPLE)
        main = module.functions["main"]
        fold_constants(main)
        # b's value is known at compile time; the print argument
        # becomes a constant after folding + the later DCE round.
        bins = [i for i in main.body if i.op is Opcode.BIN]
        assert bins == []

    def test_execution_unchanged(self):
        module = compiled(SIMPLE)
        before = run_once(module).stdout
        fold_constants(module.functions["main"])
        verify_module(module)
        assert run_once(module).stdout == before == "20"

    def test_constant_branch_becomes_jump(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { if (1) print_int(1); else print_int(2); return 0; }"
        )
        main = module.functions["main"]
        fold_constants(main)
        assert op_count(main, Opcode.CJUMP) == 0
        assert run_once(module).stdout == "1"

    def test_constant_switch_becomes_jump(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { switch (2) { case 1: print_int(1); break;"
            " case 2: print_int(2); break; } return 0; }"
        )
        main = module.functions["main"]
        fold_constants(main)
        assert op_count(main, Opcode.SWITCH) == 0
        assert run_once(module).stdout == "2"

    def test_division_by_zero_left_for_runtime(self):
        module = compiled(
            "int main(void) { int z = 1 / 0 * 0; return z; }"
        )
        main = module.functions["main"]
        fold_constants(main)
        assert op_count(main, Opcode.BIN) >= 1  # the division survives

    def test_facts_killed_at_labels(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { int a = 1; int i;"
            " for (i = 0; i < 3; i++) a = a * 2;"
            " print_int(a); return 0; }"
        )
        main = module.functions["main"]
        fold_constants(main)
        assert run_once(module).stdout == "8"


class TestCopyPropagation:
    def test_copies_propagated(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { int a = getchar(); int b = a; int c = b;"
            " print_int(c); return 0; }"
        )
        main = module.functions["main"]
        changed = propagate_copies(main)
        assert changed > 0
        assert run_once(module).exit_code == 0

    def test_copy_killed_by_redefinition(self):
        source = (
            "#include <sys.h>\n"
            "int main(void) { int a = getchar(); int b = a;"
            " a = 99; print_int(b); return 0; }"
        )
        module = compiled(source)
        before = run_once(module, ).stdout
        propagate_copies(module.functions["main"])
        verify_module(module)
        assert run_once(module).stdout == before


class TestDeadCodeElimination:
    def test_unused_definition_removed(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { int unused = getchar() + 5; return 0; }"
        )
        main = module.functions["main"]
        size_before = main.code_size()
        removed = eliminate_dead_code(main)
        assert removed > 0
        assert main.code_size() < size_before

    def test_calls_never_removed(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { int unused = getchar(); return 0; }"
        )
        main = module.functions["main"]
        eliminate_dead_code(main)
        assert op_count(main, Opcode.CALL) == 1

    def test_cascading_removal(self):
        module = compiled(
            "int main(void) { int a = 1; int b = a + 2; int c = b * 3;"
            " return 0; }"
        )
        main = module.functions["main"]
        eliminate_dead_code(main)
        # Only returns remain: the explicit one plus the unreachable
        # fallback return the lowering appends.
        assert all(i.op is Opcode.RET for i in main.body)
        assert main.code_size() <= 2

    def test_stores_kept(self):
        module = compiled(
            "int g; int main(void) { g = 5; return 0; }"
        )
        main = module.functions["main"]
        eliminate_dead_code(main)
        assert op_count(main, Opcode.STORE) == 1


class TestJumpOptimization:
    def test_jump_to_next_removed(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { if (getchar()) print_int(1); return 0; }"
        )
        main = module.functions["main"]
        optimize_jumps(main)
        verify_module(module)

    def test_jump_threading(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { int x = getchar() - 60;"
            " while (x) { if (x == 1) break; x--; }"
            " print_int(x); return 0; }"
        )
        from repro.profiler.profile import RunSpec

        spec = RunSpec(stdin=b"A")  # x starts at 5
        before = run_once(module, spec).stdout
        main = module.functions["main"]
        optimize_jumps(main)
        optimize_jumps(main)
        verify_module(module)
        assert run_once(module, spec).stdout == before == "1"

    def test_unreachable_code_swept(self):
        module = compiled(
            "#include <sys.h>\n"
            "int main(void) { return 0; print_int(9); return 1; }"
        )
        main = module.functions["main"]
        optimize_jumps(main)
        assert op_count(main, Opcode.CALL) == 0
        assert main.code_size() == 1


class TestPipeline:
    def test_reaches_fixpoint(self):
        module = compiled(SIMPLE)
        stats = optimize_function(module.functions["main"])
        assert stats.rounds >= 1
        again = optimize_function(module.functions["main"])
        assert again.total_changes == 0

    def test_module_wide_preserves_output(self):
        source = c_main(
            "int i; int total = 0;"
            " for (i = 0; i < 10; i++) total += work(i);"
            " print_int(total);",
            prelude=(
                "int work(int x) { int twice = x * 2; int bias = 3;"
                " if (x > 100) return 0; return twice + bias; }"
            ),
        )
        module = compile_program(source)
        before = run_once(module).stdout
        stats = optimize_module(module)
        verify_module(module)
        assert stats.total_changes > 0
        assert run_once(module).stdout == before

    def test_optimizer_reduces_dynamic_instructions(self):
        module = compile_program(SIMPLE)
        before = run_once(module).counters.il
        optimize_module(module)
        after = run_once(module).counters.il
        assert after <= before

    def test_all_benchmarks_survive_optimization(self):
        # A cheap cross-check: libc + a program with every construct.
        source = c_main(
            "int i; char buf[16];"
            " for (i = 0; i < 3; i++) { itoa(i * 7, buf); print_str(buf); }"
            " print_int(strcmp(\"a\", \"b\") < 0);"
        )
        module = compile_program(source)
        before = run_once(module).stdout
        optimize_module(module)
        verify_module(module)
        assert run_once(module).stdout == before
