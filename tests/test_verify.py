"""Tests for the differential-correctness harness.

Covers the three reconciliation bug fixes (cost-model vs. physical
expansion accounting, the void-return-into-value-call hazard, the
callee-unavailable audit distinction), the hardened IL verifier, the
differential oracle, and a seeded fuzz corpus replay.
"""

from __future__ import annotations

import pytest

from repro.callgraph.build import build_call_graph
from repro.callgraph.graph import CallGraph
from repro.compiler import compile_program
from repro.errors import ILError, InlineError
from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode
from repro.il.module import ILModule
from repro.il.verifier import verify_function, verify_module
from repro.inliner.cost import INFINITY, make_cost_model
from repro.inliner.expand import expand_call_site
from repro.inliner.linearize import linearize
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.inliner.select import select_sites
from repro.observability.audit import DecisionReason
from repro.profiler.profile import RunSpec, profile_module
from repro.verify import (
    generate_program,
    run_fuzz,
    verify_benchmark,
    verify_inlining,
    verify_suite,
)
from repro.workloads.suite import benchmark_by_name

LOW_THRESHOLD = InlineParameters(weight_threshold=4.0, size_limit_factor=3.0)

#: main -> outer is the heavier arc (committed first by the selector)
#: but outer -> inner expands first in linear order — the shape where
#: incremental weight-order accounting drifts from physical expansion.
NESTED = """
#include <sys.h>
int inner(int x) { return x * 2 + 1; }
int outer(int x) {
    int r = x;
    if (x % 2 == 0)
        r = r + inner(x);
    return r + 1;
}
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 30; i++)
        s += outer(i);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""

VOID_HOT = """
#include <sys.h>
int total = 0;
void bump(int x) { total = total + x; }
int main(void) {
    int i;
    for (i = 0; i < 40; i++)
        bump(i);
    print_int(total);
    putchar('\\n');
    return 0;
}
"""


def inlined(source, params=LOW_THRESHOLD):
    module = compile_program(source)
    profile = profile_module(module, [RunSpec()], check_exit=False)
    return inline_module(module, profile, params)


def void_ret_into_value_call_module():
    """Hand-built IL: a valueless return inlined into t0 = v()."""
    module = ILModule("main")
    callee = ILFunction("v", [], False)
    callee.body.append(Instr(Opcode.RET))
    module.add_function(callee)
    main = ILFunction("main", [], True)
    main.body.append(Instr(Opcode.CALL, dst="t0", name="v", args=[], site=1))
    main.body.append(Instr(Opcode.RET, a="t0"))
    module.add_function(main)
    return module


class TestSizeReconciliation:
    """Satellite 1: committed deltas match physical expansion exactly."""

    def test_nested_weight_skewed_program_reconciles(self):
        result = inlined(NESTED)
        # Both arcs clear the threshold, so this really is the nested
        # case: inner is inside outer's body when outer splices into main.
        assert len(result.records) == 2
        assert result.selection.projected_size == result.pre_cleanup_size

    def test_void_callee_reconciles(self):
        result = inlined(VOID_HOT)
        assert result.records, "hot void call should be expanded"
        assert result.selection.projected_size == result.pre_cleanup_size

    def test_whole_suite_benchmark_reconciles(self):
        benchmark = benchmark_by_name("cmp")
        module = benchmark.compile()
        profile = profile_module(module, benchmark.make_runs("small"))
        result = inline_module(module, profile)
        assert result.selection.projected_size == result.pre_cleanup_size

    def test_record_delta_matches_measured_size(self):
        module = compile_program(NESTED)
        before = module.total_code_size()
        graph = build_call_graph(
            module, profile_module(module, [RunSpec()], check_exit=False)
        )
        [arc] = graph.arcs_between("outer", "inner")
        record = expand_call_site(module, "outer", arc.site)
        assert module.total_code_size() - before == record.added_instructions

    def test_void_record_delta_matches_measured_size(self):
        # The old formula charged one result move per callee RET even
        # when the call discards the result; the record must not.
        module = compile_program(VOID_HOT)
        graph = build_call_graph(
            module, profile_module(module, [RunSpec()], check_exit=False)
        )
        [arc] = graph.arcs_between("main", "bump")
        before = module.total_code_size()
        record = expand_call_site(module, "main", arc.site)
        assert module.total_code_size() - before == record.added_instructions


class TestVoidReturnGuard:
    """Satellite 2: valueless RET into a value-consuming call."""

    def test_expand_refuses_void_ret_into_value_call(self):
        module = void_ret_into_value_call_module()
        with pytest.raises(InlineError, match="unwritten"):
            expand_call_site(module, "main", 1)

    def test_guard_fires_before_any_mutation(self):
        module = void_ret_into_value_call_module()
        main = module.functions["main"]
        body_len = len(main.body)
        with pytest.raises(InlineError):
            expand_call_site(module, "main", 1)
        assert len(main.body) == body_len
        assert not main.slots

    def test_cost_model_rejects_return_mismatch(self):
        module = void_ret_into_value_call_module()
        graph = CallGraph()
        graph.add_node("main", 1.0)
        graph.add_node("v", 100.0)
        arc = graph.add_arc(1, "main", "v", weight=100.0)
        model = make_cost_model(module, graph, InlineParameters())
        decision = model.evaluate(arc)
        assert decision.cost == INFINITY
        assert decision.reason is DecisionReason.RETURN_MISMATCH

    def test_selector_never_selects_mismatched_site(self):
        module = void_ret_into_value_call_module()
        graph = CallGraph()
        graph.add_node("main", 1.0)
        graph.add_node("v", 100.0)
        graph.add_arc(1, "main", "v", weight=100.0)
        selection = select_sites(module, graph, None, ["v", "main"])
        assert not selection.selected
        [decision] = [
            d for d in selection.decisions
            if d.reason is DecisionReason.RETURN_MISMATCH
        ]
        assert decision.site == 1

    def test_verifier_catches_unwritten_destination(self):
        # The pattern a buggy expansion would have produced: the call's
        # destination register is read but no spliced return wrote it.
        module = ILModule("main")
        main = ILFunction("main", [], True)
        main.body.append(Instr(Opcode.JUMP, label="v@1/return"))
        main.body.append(Instr(Opcode.LABEL, label="v@1/return"))
        main.body.append(Instr(Opcode.RET, a="t0"))
        module.add_function(main)
        with pytest.raises(ILError, match="read before written"):
            verify_module(module)


class TestCalleeUnavailable:
    """Satellite 3: no-body / no-position arcs are not order violations."""

    def _graph(self):
        module = compile_program(NESTED)
        profile = profile_module(module, [RunSpec()], check_exit=False)
        return module, profile, build_call_graph(module, profile)

    def test_missing_sequence_position_is_unavailable(self):
        module, profile, graph = self._graph()
        sequence = [name for name in linearize(module, profile) if name != "inner"]
        selection = select_sites(module, graph, profile, sequence)
        [arc] = graph.arcs_between("outer", "inner")
        [decision] = [d for d in selection.decisions if d.site == arc.site]
        assert decision.reason is DecisionReason.CALLEE_UNAVAILABLE
        assert decision.inputs["callee_defined"] is True

    def test_undefined_callee_is_unavailable(self):
        module = void_ret_into_value_call_module()
        del module.functions["v"]
        module.externals.add("v")
        graph = CallGraph()
        graph.add_node("main", 1.0)
        graph.add_node("v", 100.0)
        graph.add_arc(1, "main", "v", weight=100.0)
        selection = select_sites(module, graph, None, ["v", "main"])
        [decision] = selection.decisions
        assert decision.reason is DecisionReason.CALLEE_UNAVAILABLE
        assert decision.inputs["callee_defined"] is False

    def test_true_order_violation_still_reported(self):
        module, profile, graph = self._graph()
        selection = select_sites(
            module, graph, profile, ["main", "outer", "inner"]
        )
        [arc] = graph.arcs_between("main", "outer")
        [decision] = [d for d in selection.decisions if d.site == arc.site]
        assert decision.reason is DecisionReason.ORDER_VIOLATION


class TestHardenedVerifier:
    def _function(self, body, params=(), returns=True, name="f"):
        fn = ILFunction(name, list(params), returns)
        fn.body.extend(body)
        module = ILModule("main")
        module.add_function(fn)
        main = ILFunction("main", [], True)
        main.body.append(Instr(Opcode.RET, a=0))
        if name != "main":
            module.add_function(main)
        return module, fn

    def test_never_written_register_rejected(self):
        module, fn = self._function([Instr(Opcode.RET, a="ghost")])
        with pytest.raises(ILError, match="read before written"):
            verify_function(module, fn)

    def test_straight_line_read_before_later_write_rejected(self):
        module, fn = self._function(
            [
                Instr(Opcode.MOV, dst="a", a="b"),
                Instr(Opcode.CONST, dst="b", a=1),
                Instr(Opcode.RET, a="a"),
            ]
        )
        with pytest.raises(ILError, match="read before written"):
            verify_function(module, fn)

    def test_conditionally_initialized_register_accepted(self):
        # Written on one branch only: defined behavior (the VM
        # zero-initializes), so the verifier must not flag it.
        module, fn = self._function(
            [
                Instr(Opcode.CONST, dst="c", a=1),
                Instr(Opcode.CJUMP, a="c", label="then", label2="join"),
                Instr(Opcode.LABEL, label="then"),
                Instr(Opcode.CONST, dst="x", a=5),
                Instr(Opcode.JUMP, label="join"),
                Instr(Opcode.LABEL, label="join"),
                Instr(Opcode.RET, a="x"),
            ]
        )
        verify_function(module, fn)

    def test_unwritten_on_every_path_rejected(self):
        module, fn = self._function(
            [
                Instr(Opcode.CONST, dst="c", a=1),
                Instr(Opcode.CJUMP, a="c", label="then", label2="join"),
                Instr(Opcode.LABEL, label="then"),
                Instr(Opcode.JUMP, label="join"),
                Instr(Opcode.LABEL, label="join"),
                Instr(Opcode.RET, a="x"),
            ]
        )
        with pytest.raises(ILError, match="read before written"):
            verify_function(module, fn)

    def test_loop_carried_register_accepted(self):
        # x is written inside the loop and read at the top of the next
        # iteration: the back-edge makes it only *maybe* unassigned.
        module, fn = self._function(
            [
                Instr(Opcode.CONST, dst="i", a=0),
                Instr(Opcode.LABEL, label="head"),
                Instr(Opcode.CJUMP, a="i", label="body", label2="exit"),
                Instr(Opcode.LABEL, label="body"),
                Instr(Opcode.BIN, dst="x", op2="+", a="i", b=1),
                Instr(Opcode.MOV, dst="i", a="x"),
                Instr(Opcode.JUMP, label="head"),
                Instr(Opcode.LABEL, label="exit"),
                Instr(Opcode.RET, a="i"),
            ]
        )
        verify_function(module, fn)

    def test_valueless_return_in_value_function_rejected(self):
        module, fn = self._function([Instr(Opcode.RET)], returns=True)
        with pytest.raises(ILError, match="valueless return"):
            verify_function(module, fn)

    def test_valued_return_in_void_function_rejected(self):
        module, fn = self._function([Instr(Opcode.RET, a=3)], returns=False)
        with pytest.raises(ILError, match="void function"):
            verify_function(module, fn)

    def test_duplicate_label_rejected(self):
        module, fn = self._function(
            [
                Instr(Opcode.LABEL, label="L"),
                Instr(Opcode.LABEL, label="L"),
                Instr(Opcode.RET, a=0),
            ]
        )
        with pytest.raises(ILError, match="duplicate label"):
            verify_function(module, fn)

    def test_unlaid_out_frame_slot_rejected(self):
        module, fn = self._function([Instr(Opcode.RET, a=0)])
        fn.add_slot("buf", 8)  # offset stays -1: layout_frame never ran
        with pytest.raises(ILError, match="no offset"):
            verify_function(module, fn)

    def test_overlapping_frame_slots_rejected(self):
        module, fn = self._function([Instr(Opcode.RET, a=0)])
        first = fn.add_slot("a", 8)
        second = fn.add_slot("b", 4)
        fn.frame_size = 12
        first.offset = 0
        second.offset = 4  # inside [0, 8)
        with pytest.raises(ILError, match="overlaps"):
            verify_function(module, fn)

    def test_slots_past_frame_size_rejected(self):
        module, fn = self._function([Instr(Opcode.RET, a=0)])
        slot = fn.add_slot("a", 8)
        slot.offset = 0
        fn.frame_size = 4
        with pytest.raises(ILError, match="frame_size"):
            verify_function(module, fn)

    def test_frontend_output_passes(self):
        verify_module(compile_program(NESTED))

    def test_post_inline_output_passes(self):
        verify_module(inlined(NESTED).module)


class TestDifferentialOracle:
    def test_benchmark_oracle_passes(self):
        report = verify_benchmark(benchmark_by_name("cmp"))
        assert report.ok, report.summary()
        assert report.expansions > 0
        assert report.eliminated_floor > 0
        assert report.calls_eliminated >= report.eliminated_floor
        assert report.projected_size == report.measured_size

    def test_oracle_reports_broken_calls_floor(self):
        # Select under a profile measured on a long input, then verify
        # on a short one: the floor (from the selecting profile) exceeds
        # what the short input can eliminate, so the invariant must
        # report — without any behavioral divergence.
        source = """
        #include <sys.h>
        int total = 0;
        void bump(int x) { total = total + x; }
        int main(void) {
            int c = getchar();
            while (c != EOF) { bump(c); c = getchar(); }
            print_int(total);
            putchar('\\n');
            return 0;
        }
        """
        module = compile_program(source)
        selecting = profile_module(module, [RunSpec(stdin=b"x" * 200)])
        report = verify_inlining(
            module,
            [RunSpec(stdin=b"hi")],
            LOW_THRESHOLD,
            profile=selecting,
        )
        assert not report.divergences
        assert report.invariant_failures
        assert report.eliminated_floor > report.calls_eliminated

    def test_unknown_benchmark_name_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            verify_suite(names=["nope"])

    def test_summary_names_program(self):
        report = verify_inlining(
            compile_program(NESTED), [RunSpec()], LOW_THRESHOLD, name="nested"
        )
        assert report.summary().startswith("nested: ok")


class TestFuzz:
    def test_generator_is_deterministic(self):
        assert generate_program(7) == generate_program(7)
        assert generate_program(7) != generate_program(8)

    def test_generated_programs_compile_and_run(self):
        source = generate_program(0)
        module = compile_program(source)
        verify_module(module)

    def test_fuzz_corpus_replays_clean(self):
        # The regression corpus: 50 seeded programs through compile →
        # optimize → inline → optimize with differential execution at
        # every stage. Any divergence or broken invariant fails here.
        report = run_fuzz(50, seed=20260806)
        details = "\n".join(
            f"{f.stage}: {f.detail}\n{f.source}" for f in report.failures
        )
        assert report.ok, details
        assert report.expansions > 0
