"""Tests for the twelve-benchmark suite: compilation, execution, and
benchmark-specific output correctness."""

import pytest

from repro.profiler.profile import run_once
from repro.workloads import benchmark_by_name, benchmark_names, benchmark_suite


@pytest.fixture(scope="module")
def modules():
    """Compile every benchmark once per test module."""
    return {b.name: b.compile() for b in benchmark_suite()}


class TestSuiteShape:
    def test_twelve_benchmarks(self):
        assert len(benchmark_suite()) == 12

    def test_names_match_paper(self):
        assert set(benchmark_names()) == {
            "cccp", "cmp", "compress", "eqn", "espresso", "grep",
            "lex", "make", "tar", "tee", "wc", "yacc",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark_by_name("vi")

    def test_c_lines_positive(self):
        for benchmark in benchmark_suite():
            assert benchmark.c_lines > 20, benchmark.name

    def test_paper_run_counts(self):
        # Table 1: lex has 4 inputs, yacc 8, the rest up to 20 at full scale.
        assert len(benchmark_by_name("lex").make_runs("full")) == 4
        assert len(benchmark_by_name("yacc").make_runs("full")) == 8
        assert len(benchmark_by_name("cccp").make_runs("full")) == 20
        assert len(benchmark_by_name("cmp").make_runs("full")) == 16
        assert len(benchmark_by_name("tar").make_runs("full")) == 14

    def test_runs_are_deterministic(self):
        for name in ("grep", "espresso", "make"):
            first = benchmark_by_name(name).make_runs("small")
            second = benchmark_by_name(name).make_runs("small")
            assert [s.stdin for s in first] == [s.stdin for s in second]
            assert [s.files for s in first] == [s.files for s in second]


@pytest.mark.parametrize("name", [
    "cccp", "cmp", "compress", "eqn", "espresso", "grep",
    "lex", "make", "tar", "tee", "wc", "yacc",
])
class TestEveryBenchmark:
    def test_all_small_inputs_run_clean(self, name, modules):
        benchmark = benchmark_by_name(name)
        module = modules[name]
        for spec in benchmark.make_runs("small"):
            result = run_once(module, spec)
            assert result.exit_code == 0, (spec.label, result.os.stderr_text())

    def test_deterministic_execution(self, name, modules):
        benchmark = benchmark_by_name(name)
        module = modules[name]
        spec = benchmark.make_runs("small")[0]
        assert run_once(module, spec).stdout == run_once(module, spec).stdout


class TestBenchmarkCorrectness:
    def test_wc_counts(self, modules):
        spec_stdin = b"one two three\nfour five\n"
        from repro.profiler.profile import RunSpec

        result = run_once(modules["wc"], RunSpec(stdin=spec_stdin))
        lines, words, chars = map(int, result.stdout.split())
        assert (lines, words, chars) == (2, 5, len(spec_stdin))

    def test_tee_copies_stdin(self, modules):
        from repro.profiler.profile import RunSpec

        result = run_once(
            modules["tee"], RunSpec(stdin=b"payload", argv=["copy.txt"])
        )
        assert result.stdout == "payload"
        assert result.os.written_files["copy.txt"] == b"payload"

    def test_cmp_identical_files(self, modules):
        from repro.profiler.profile import RunSpec

        result = run_once(
            modules["cmp"],
            RunSpec(files={"a": b"same", "b": b"same"}, argv=["a", "b"]),
        )
        assert "identical" in result.stdout

    def test_cmp_finds_difference(self, modules):
        from repro.profiler.profile import RunSpec

        result = run_once(
            modules["cmp"],
            RunSpec(files={"a": b"same", "b": b"sane"}, argv=["a", "b"]),
        )
        assert "differ: byte 3" in result.stdout

    def test_grep_finds_lines(self, modules):
        from repro.profiler.profile import RunSpec

        result = run_once(
            modules["grep"],
            RunSpec(stdin=b"alpha\nbet\ngamma\n", argv=["-n", "a"]),
        )
        assert "1:alpha" in result.stdout
        assert "3:gamma" in result.stdout
        assert "bet" not in result.stdout

    def test_grep_anchors_and_classes(self, modules):
        from repro.profiler.profile import RunSpec

        result = run_once(
            modules["grep"],
            RunSpec(stdin=b"xa\nax\naxx\n", argv=["-c", "^a[wxy]*$"]),
        )
        assert result.stdout.strip() == "2"

    def test_compress_output_smaller_on_repetitive_input(self, modules):
        from repro.profiler.profile import RunSpec

        data = b"abcabcabc" * 100
        result = run_once(modules["compress"], RunSpec(stdin=data))
        summary = result.stdout.rsplit("in ", 1)[1]
        bytes_in = int(summary.split()[0])
        bytes_out = int(summary.split()[2])
        assert bytes_in == len(data)
        assert bytes_out < bytes_in

    def test_eqn_counts_equations(self, modules):
        from repro.profiler.profile import RunSpec

        doc = b"text\n.EQ\nx sup 2\n.EN\nmore\n.EQ\na over b\n.EN\n"
        result = run_once(modules["eqn"], RunSpec(stdin=doc))
        assert "equations 2" in result.stdout

    def test_espresso_minimizes(self, modules):
        from repro.profiler.profile import RunSpec

        # f = x (2 vars): on-minterms 10,11; off 00,01. One cube "1-".
        pla = b".i2\n10 1\n11 1\n00 0\n01 0\n.e\n"
        result = run_once(
            modules["espresso"], RunSpec(files={"f.pla": pla}, argv=["f.pla"])
        )
        assert "1-" in result.stdout
        assert "cubes 1 literals 1" in result.stdout

    def test_lex_classifies_tokens(self, modules):
        from repro.profiler.profile import RunSpec

        spec = RunSpec(
            files={
                "spec": b"if while",
                "src": b'if (x) while (y) z = 42; /* c */ "s"',
            },
            argv=["spec", "src"],
        )
        result = run_once(modules["lex"], spec)
        assert "keywords 2" in result.stdout
        assert "numbers 1" in result.stdout
        assert "comments 1" in result.stdout
        assert "strings 1" in result.stdout

    def test_make_builds_stale_target(self, modules):
        from repro.profiler.profile import RunSpec

        makefile = b"app: a.o\n>link app\na.o: a.c\n>cc a.c\n"
        fstab = b"a.c 200\na.o 100\n"
        result = run_once(
            modules["make"],
            RunSpec(files={"Makefile": makefile, "fs.txt": fstab},
                    argv=["Makefile", "fs.txt"]),
        )
        assert "building a.o" in result.stdout
        assert "building app" in result.stdout
        assert "commands run: 2" in result.stdout

    def test_make_skips_fresh_target(self, modules):
        from repro.profiler.profile import RunSpec

        makefile = b"app: a.o\n>link app\n"
        fstab = b"a.o 100\napp 200\n"
        result = run_once(
            modules["make"],
            RunSpec(files={"Makefile": makefile, "fs.txt": fstab},
                    argv=["Makefile", "fs.txt"]),
        )
        assert "commands run: 0" in result.stdout

    def test_tar_roundtrip(self, modules):
        from repro.profiler.profile import RunSpec

        payload = {"x.txt": b"hello tar", "y.bin": bytes(range(64)) * 2}
        create = run_once(
            modules["tar"],
            RunSpec(files=dict(payload), argv=["c", "out.tar", "x.txt", "y.bin"]),
        )
        archive = create.os.written_files["out.tar"]
        extract = run_once(
            modules["tar"], RunSpec(files={"in.tar": archive}, argv=["x", "in.tar"])
        )
        assert extract.os.written_files["x.txt"] == payload["x.txt"]
        assert extract.os.written_files["y.bin"] == payload["y.bin"]
        assert "MISMATCH" not in extract.stdout

    def test_yacc_accepts_and_rejects(self, modules):
        from repro.profiler.profile import RunSpec

        grammar = b"S = a S b\nS =\n?ab\n?aabb\n?ba\n?aab\n"
        result = run_once(
            modules["yacc"], RunSpec(files={"g.y": grammar}, argv=["g.y"])
        )
        assert "accept 2" in result.stdout
        assert "reject 2" in result.stdout
        assert "conflicts 0" in result.stdout

    def test_cccp_expands_macros(self, modules):
        from repro.profiler.profile import RunSpec

        src = b"#define N 5\nint x = N;\n// gone\nint y; /* also gone */\n"
        result = run_once(modules["cccp"], RunSpec(stdin=src))
        assert "int x = 5;" in result.stdout
        assert "gone" not in result.stdout

    def test_cccp_conditionals(self, modules):
        from repro.profiler.profile import RunSpec

        src = (
            b"#define ON 1\n#ifdef ON\nint kept;\n#else\nint dropped;\n#endif\n"
            b"#ifdef OFF\nint hidden;\n#endif\n"
        )
        result = run_once(modules["cccp"], RunSpec(stdin=src))
        assert "kept" in result.stdout
        assert "dropped" not in result.stdout
        assert "hidden" not in result.stdout


class TestUnlinkedLibcVariant:
    def test_benchmarks_compile_without_libc(self):
        """Without the libc source, string helpers become externals —
        the paper's 'library archive unavailable' situation."""
        for name in ("grep", "cmp", "make"):
            benchmark = benchmark_by_name(name)
            module = benchmark.compile(link_libc=False)
            assert "strcmp" in module.externals or "strlen" in module.externals

    def test_unlinked_grep_has_more_external_sites(self):
        from repro.callgraph.build import build_call_graph
        from repro.callgraph.graph import ArcKind

        benchmark = benchmark_by_name("grep")

        def external_sites(module):
            graph = build_call_graph(module)
            return sum(
                1
                for arc in graph.call_site_arcs()
                if arc.kind is ArcKind.EXTERNAL
            )

        linked = external_sites(benchmark.compile(link_libc=True))
        unlinked = external_sites(benchmark.compile(link_libc=False))
        assert unlinked > linked
