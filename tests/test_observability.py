"""Tests for the observability subsystem: tracer, metrics, audit log,
no-op transparency, output-divergence diagnostics, and the CLI flags."""

import json
import logging

import pytest

from repro.compiler import compile_program
from repro.experiments.pipeline import (
    compare_outputs,
    run_benchmark,
    run_suite,
)
from repro.experiments.tables import all_tables
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.observability import (
    NULL_OBS,
    DEFAULT_MAX_SAMPLES,
    DecisionReason,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Observability,
    TraceContext,
    Tracer,
    labeled,
    resolve,
    split_labels,
    summarize_decisions,
)
from repro.observability.context import new_trace_id, valid_id
from repro.observability.export import (
    PROMETHEUS_CONTENT_TYPE,
    SLOW_LOG_SCHEMA_VERSION,
    append_jsonl,
    parse_prometheus,
    prometheus_name,
    render_metrics_summary,
    render_prometheus,
    slow_request_record,
)
from repro.observability.metrics import percentile
from repro.profiler.profile import RunSpec, profile_module
from repro.workloads import benchmark_by_name


class TestTracer:
    def test_span_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {r["name"]: r for r in tracer.records if r["type"] == "span"}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        # Inner closes first, so duration nests too.
        assert spans["inner"]["seconds"] <= spans["outer"]["seconds"]

    def test_span_attrs_added_inside_body(self):
        tracer = Tracer()
        with tracer.span("phase", fixed=1) as attrs:
            attrs["late"] = 2
        record = next(r for r in tracer.records if r["type"] == "span")
        assert record["attrs"] == {"fixed": 1, "late": 2}

    def test_event_attaches_to_open_span(self):
        tracer = Tracer()
        with tracer.span("work"):
            tracer.event("milestone", n=3)
        span = next(r for r in tracer.records if r["type"] == "span")
        event = next(r for r in tracer.records if r["type"] == "event")
        assert event["span"] == span["id"]
        assert event["attrs"] == {"n": 3}

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            tracer.event("e")
        tracer.record({"type": "custom", "payload": [1, 2]})
        lines = tracer.to_jsonl().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "trace_start"
        types = {r["type"] for r in parsed}
        assert {"span", "event", "custom"} <= types

    def test_write_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write(str(path))
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["type"] == "span" for r in parsed)

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("x", a=1) as attrs:
            attrs["b"] = 2
            tracer.event("e")
        tracer.record({"type": "custom"})
        assert tracer.records == []
        assert not tracer.enabled


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("calls")
        metrics.inc("calls", 4)
        assert metrics.counters["calls"] == 5

    def test_gauge_keeps_last(self):
        metrics = MetricsRegistry()
        metrics.gauge("size", 10)
        metrics.gauge("size", 7)
        assert metrics.gauges["size"] == 7

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.observe("seconds", value)
        stats = metrics.histogram("seconds")
        assert stats["count"] == 3
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)

    def test_histogram_percentiles(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):
            metrics.observe("seconds", float(value))
        stats = metrics.histogram("seconds")
        assert stats["p50"] == pytest.approx(50.0)
        assert stats["p90"] == pytest.approx(90.0)
        assert stats["p99"] == pytest.approx(99.0)

    def test_histogram_percentiles_single_sample(self):
        metrics = MetricsRegistry()
        metrics.observe("seconds", 2.5)
        stats = metrics.histogram("seconds")
        assert stats["p50"] == stats["p90"] == stats["p99"] == 2.5

    def test_merge_combines_percentile_samples(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0):
            a.observe("seconds", value)
        for value in (9.0, 10.0):
            b.observe("seconds", value)
        a.merge(b)
        stats = a.histogram("seconds")
        assert stats["count"] == 4
        assert stats["p90"] == pytest.approx(10.0)
        assert stats["p50"] == pytest.approx(2.0)

    def test_summary_surfaces_percentiles(self):
        metrics = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            metrics.observe("seconds", value)
        text = render_metrics_summary(metrics)
        assert "p50=" in text and "p90=" in text and "p99=" in text

    def test_snapshot_json_round_trip(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.gauge("b", 2)
        metrics.observe("c", 1.5)
        parsed = json.loads(metrics.to_json())
        assert parsed["counters"]["a"] == 1
        assert parsed["gauges"]["b"] == 2
        assert parsed["histograms"]["c"]["count"] == 1

    def test_null_metrics_discard(self):
        metrics = NullMetrics()
        metrics.inc("a")
        metrics.gauge("b", 1)
        metrics.observe("c", 1)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_summary_table_renders_all_kinds(self):
        metrics = MetricsRegistry()
        metrics.inc("vm.calls", 12)
        metrics.gauge("size", 3.5)
        metrics.observe("seconds", 0.25)
        text = render_metrics_summary(metrics)
        assert "vm.calls" in text and "counter" in text
        assert "gauge" in text and "histogram" in text

    def test_resolve_defaults_to_null(self):
        assert resolve(None) is NULL_OBS
        assert not NULL_OBS.enabled
        live = Observability.create()
        assert resolve(live) is live
        assert live.enabled


AUDIT_PROGRAM = """
int leaf(int x) { return x + 1; }
int once(int x) { return x * 2; }
int deep(int n) {
    if (n <= 0) return 0;
    return deep(n - 1) + leaf(n + 100);
}
int apply(int (*f)(int v), int x) { return f(x); }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 100; i++)
        s += leaf(i);
    s += once(s);
    s += deep(5);
    s += apply(leaf, 3);
    return 0;
}
"""


@pytest.fixture(scope="module")
def audit_module_and_profile():
    module = compile_program(AUDIT_PROGRAM, link_libc=False)
    profile = profile_module(module, [RunSpec()], check_exit=False)
    return module, profile


class TestInlineAuditLog:
    def _decisions(self, audit_module_and_profile, **param_overrides):
        module, profile = audit_module_and_profile
        params = InlineParameters(**param_overrides)
        result = inline_module(module, profile, params)
        return module, result

    def test_every_arc_audited_exactly_once(self, audit_module_and_profile):
        module, result = self._decisions(audit_module_and_profile)
        arcs = result.graph.call_site_arcs()
        decided_sites = [d.site for d in result.decisions]
        assert sorted(decided_sites) == sorted(arc.site for arc in arcs)
        assert len(set(decided_sites)) == len(decided_sites)

    def test_accepted_and_below_threshold(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile)
        by_pair = {
            (d.caller, d.callee): d for d in result.decisions
        }
        hot = by_pair[("main", "leaf")]
        assert hot.reason is DecisionReason.ACCEPTED
        assert hot.accepted
        assert hot.cost is not None
        assert hot.inputs["weight"] >= hot.inputs["weight_threshold"]
        cold = by_pair[("main", "once")]
        assert cold.reason is DecisionReason.BELOW_THRESHOLD
        assert cold.inputs["weight"] < cold.inputs["weight_threshold"]

    def test_pointer_call_not_direct(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile)
        pointer = [
            d for d in result.decisions if d.reason is DecisionReason.NOT_DIRECT
        ]
        assert pointer
        assert any(d.caller == "apply" for d in pointer)

    def test_self_recursion_is_order_violation_in_selection(
        self, audit_module_and_profile
    ):
        # The linear order puts deep at one position, so the deep->deep
        # arc violates callee-before-caller and never reaches the cost
        # function.
        _, result = self._decisions(audit_module_and_profile)
        self_arc = next(
            d for d in result.decisions if d.caller == "deep" and d.callee == "deep"
        )
        assert self_arc.reason is DecisionReason.ORDER_VIOLATION

    def test_recursive_limit(self, audit_module_and_profile):
        # stack_bound=0 makes any expansion touching the recursion
        # (deep -> leaf) a control-stack hazard.
        _, result = self._decisions(audit_module_and_profile, stack_bound=0)
        hazard = next(
            d for d in result.decisions if d.caller == "deep" and d.callee == "leaf"
        )
        assert hazard.reason is DecisionReason.RECURSIVE_LIMIT
        assert hazard.inputs["stack_usage"] > 0
        assert hazard.inputs["stack_bound"] == 0
        assert hazard.inputs["caller_recursive"]

    def test_size_limit(self, audit_module_and_profile):
        # A 1.0 growth factor forbids any growth at all.
        _, result = self._decisions(audit_module_and_profile, size_limit_factor=1.0)
        hot = next(
            d for d in result.decisions if d.caller == "main" and d.callee == "leaf"
        )
        assert hot.reason is DecisionReason.SIZE_LIMIT
        assert (
            hot.inputs["program_size"] + hot.inputs["size_delta"]
            > hot.inputs["size_limit"]
        )

    def test_max_expansions(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile, max_expansions=0)
        summary = summarize_decisions(result.decisions)
        assert summary.get("ACCEPTED", 0) == 0
        assert summary["MAX_EXPANSIONS"] >= 1

    def test_self_recursive_reason_in_cost_model(self, audit_module_and_profile):
        from repro.callgraph.build import build_call_graph
        from repro.inliner.cost import make_cost_model

        module, profile = audit_module_and_profile
        graph = build_call_graph(module, profile)
        model = make_cost_model(module, graph, InlineParameters())
        self_arc = next(
            arc
            for arc in graph.call_site_arcs()
            if arc.caller == "deep" and arc.callee == "deep"
        )
        decision = model.evaluate(self_arc)
        assert decision.reason is DecisionReason.SELF_RECURSIVE
        assert decision.cost == float("inf")

    def test_decision_record_shape(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile)
        record = result.decisions[0].to_record()
        assert record["type"] == "inline_decision"
        assert {"site", "caller", "callee", "weight", "reason", "inputs"} <= set(
            record
        )
        json.dumps(record)  # must be JSON-serializable as-is


class TestNoOpTransparency:
    def test_observed_run_matches_unobserved_byte_for_byte(self):
        benchmark = benchmark_by_name("cmp")
        plain = run_benchmark(benchmark, "small")
        obs = Observability.create()
        observed = run_benchmark(benchmark, "small", obs=obs)
        assert all_tables([plain]) == all_tables([observed])
        # The observed run actually recorded something.
        assert obs.metrics.counters["pipeline.benchmarks"] == 1
        assert any(
            r.get("type") == "inline_decision" for r in obs.tracer.records
        )

    def test_trace_covers_all_arcs_of_benchmark(self):
        obs = Observability.create()
        result = run_benchmark(benchmark_by_name("cmp"), "small", obs=obs)
        decision_sites = [
            r["site"]
            for r in obs.tracer.records
            if r.get("type") == "inline_decision"
        ]
        arc_sites = [a.site for a in result.inline.graph.call_site_arcs()]
        assert sorted(decision_sites) == sorted(arc_sites)


class TestOutputDivergenceDiagnostics:
    def _module(self, body: str):
        return compile_program(
            "#include <sys.h>\n" + body, link_libc=True
        )

    def test_matching_modules(self):
        module = self._module("int main(void) { putchar('a'); return 0; }")
        comparison = compare_outputs(module, module, [RunSpec()])
        assert comparison.matches
        assert comparison.divergences == []

    def test_stdout_divergence_is_described(self):
        module_a = self._module("int main(void) { putchar('a'); return 0; }")
        module_b = self._module("int main(void) { putchar('b'); return 0; }")
        comparison = compare_outputs(
            module_a, module_b, [RunSpec(label="probe")]
        )
        assert not comparison.matches
        (detail,) = comparison.divergences
        assert detail.startswith("probe:")
        assert "stdout differs at byte 0" in detail

    def test_exit_code_divergence_is_described(self):
        module_a = self._module("int main(void) { return 0; }")
        module_b = self._module("int main(void) { return 3; }")
        comparison = compare_outputs(module_a, module_b, [RunSpec()])
        (detail,) = comparison.divergences
        assert "exit code 0 != 3" in detail
        assert detail.startswith("input 0:")

    def test_benchmark_result_carries_divergences(self):
        result = run_benchmark(benchmark_by_name("cmp"), "small")
        assert result.outputs_match
        assert result.output_divergences == []


class TestSuiteLogging:
    def test_progress_uses_repro_logger(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.experiments"):
            run_suite("small", names=["cmp"], check_outputs=False)
        messages = [r.getMessage() for r in caplog.records]
        assert any("[cmp] running ..." in m for m in messages)


class TestCliObservabilityFlags:
    PROGRAM = """
#include <sys.h>
int triple(int x) { return x * 3; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 40; i++)
        s += triple(i);
    print_int(s);
    return 0;
}
"""

    @pytest.fixture
    def c_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(self.PROGRAM)
        return str(path)

    def test_inline_trace_and_metrics(self, c_file, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = cli_main(
            [
                "inline",
                c_file,
                "--trace",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        assert any(r["type"] == "inline_decision" for r in records)
        assert any(
            r["type"] == "span" and r["name"] == "frontend.compile"
            for r in records
        )
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["frontend.tokens_lexed"] > 0
        assert snapshot["counters"]["vm.instructions_retired"] > 0
        assert "wrote trace" in capsys.readouterr().err

    def test_run_trace_flag(self, c_file, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace = tmp_path / "trace.jsonl"
        code = cli_main(["run", c_file, "--trace", str(trace)])
        assert code == 0
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        assert any(r["type"] == "span" for r in records)

    def test_tables_trace_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = experiments_main(
            [
                "table4",
                "--benchmarks",
                "tee",
                "--trace",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        decisions = [r for r in records if r["type"] == "inline_decision"]
        assert decisions
        assert all(d["benchmark"] == "tee" for d in decisions)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["pipeline.benchmarks"] == 1


class TestCompileWithAnalysisObservability:
    def test_obs_threads_through_same_spans(self):
        from repro.compiler import compile_with_analysis

        obs = Observability.create()
        result = compile_with_analysis(
            "#include <sys.h>\nint main(void){ putchar('x'); return 0; }\n",
            obs=obs,
        )
        assert result.module.functions
        span_names = {
            r["name"] for r in obs.tracer.records if r["type"] == "span"
        }
        assert {
            "frontend.compile",
            "frontend.preprocess",
            "frontend.parse",
            "frontend.analyze",
            "frontend.lower",
            "frontend.verify",
        } <= span_names
        assert obs.metrics.counters["frontend.modules_compiled"] == 1

    def test_default_stays_silent(self):
        from repro.compiler import compile_with_analysis

        result = compile_with_analysis(
            "#include <sys.h>\nint main(void){ return 0; }\n"
        )
        assert result.analysis is not None


class TestObservabilityAbsorb:
    def test_absorb_renumbers_and_tags(self):
        parent = Observability.create()
        child = Observability.create()
        with child.tracer.span("child.work"):
            child.tracer.event("tick")
        child.metrics.inc("widgets", 3)
        with parent.tracer.span("parent.outer"):
            parent.absorb(child, worker="w-0")
        records = parent.tracer.records
        child_span = next(
            r for r in records if r["type"] == "span" and r["name"] == "child.work"
        )
        outer = next(
            r for r in records if r["type"] == "span" and r["name"] == "parent.outer"
        )
        assert child_span["worker"] == "w-0"
        assert child_span["parent"] == outer["id"]
        assert parent.metrics.counters["widgets"] == 3
        ids = [r["id"] for r in records if "id" in r]
        assert len(ids) == len(set(ids))

    def test_null_obs_absorb_is_noop(self):
        from repro.observability import NULL_OBS

        child = Observability.create()
        child.metrics.inc("x")
        NULL_OBS.absorb(child)  # must not raise or record anything
        assert NULL_OBS.tracer.records == []


class TestTraceContext:
    def test_mint_is_unique_hex(self):
        a, b = TraceContext.mint(), TraceContext.mint()
        assert a.trace_id != b.trace_id
        assert valid_id(a.trace_id) and valid_id(a.request_id)

    def test_wire_round_trip(self):
        context = TraceContext.mint()
        assert TraceContext.from_wire(context.to_wire()) == context

    def test_from_wire_rejects_garbage(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire("deadbeef") is None
        assert TraceContext.from_wire({}) is None
        assert TraceContext.from_wire({"trace_id": "not hex!"}) is None
        assert TraceContext.from_wire({"trace_id": "ab"}) is None  # too short

    def test_from_wire_remints_bad_request_id(self):
        context = TraceContext.from_wire({"trace_id": "deadbeef01", "request_id": "!"})
        assert context.trace_id == "deadbeef01"
        assert valid_id(context.request_id)


class TestTracerBoundContext:
    def test_bind_stamps_every_record(self):
        tracer = Tracer()
        tracer.bind(trace_id="abc123")
        with tracer.span("work"):
            tracer.event("tick")
        tracer.record({"type": "custom"})
        stamped = [r for r in tracer.records if r["type"] != "trace_start"]
        assert stamped and all(r["trace_id"] == "abc123" for r in stamped)

    def test_context_manager_is_scoped(self):
        tracer = Tracer()
        with tracer.context(trace_id="inner"):
            tracer.event("a")
        tracer.event("b")
        events = {r["name"]: r for r in tracer.records if r["type"] == "event"}
        assert events["a"]["trace_id"] == "inner"
        assert "trace_id" not in events["b"]

    def test_bind_ignores_none_values(self):
        tracer = Tracer()
        tracer.bind(trace_id=None)
        assert tracer.bound_context() == {}

    def test_explicit_attr_wins_over_bound_context(self):
        tracer = Tracer()
        tracer.bind(trace_id="bound")
        tracer.event("e", trace_id="explicit")
        event = next(r for r in tracer.records if r["type"] == "event")
        # The event's own attrs dict keeps the explicit value; the
        # top-level stamp comes from the bound context only when absent.
        assert event["attrs"]["trace_id"] == "explicit"

    def test_absorb_forwards_parent_context_without_overwriting(self):
        parent, child = Tracer(), Tracer()
        parent.bind(trace_id="parent-trace", run="r1")
        child.bind(trace_id="child-trace")
        with child.span("w"):
            pass
        parent.absorb(child, worker="w-0")
        span = next(r for r in parent.records if r["type"] == "span")
        assert span["trace_id"] == "child-trace"  # child's own stamp kept
        assert span["run"] == "r1"  # parent context forwarded
        assert span["worker"] == "w-0"

    def test_null_tracer_context_is_noop(self):
        tracer = NullTracer()
        tracer.bind(trace_id="x")
        with tracer.context(trace_id="y"):
            tracer.event("e")
        assert tracer.bound_context() == {}
        assert tracer.records == []


class TestAbsorbTimestampRebase:
    def test_child_timestamps_rebased_to_parent_timeline(self):
        parent, child = Tracer(), Tracer()
        # Simulate a worker whose trace started 5s after the parent's.
        child._unix_start = parent.unix_start + 5.0
        with child.span("work"):
            child.event("tick")
        child_span = next(r for r in child.records if r["type"] == "span")
        child_event = next(r for r in child.records if r["type"] == "event")
        parent.absorb(child, worker="w-0")
        span = next(r for r in parent.records if r["type"] == "span")
        event = next(r for r in parent.records if r["type"] == "event")
        assert span["start"] == pytest.approx(child_span["start"] + 5.0)
        assert event["t"] == pytest.approx(child_event["t"] + 5.0)

    def test_same_origin_child_is_not_shifted(self):
        parent, child = Tracer(), Tracer()
        child._unix_start = parent.unix_start
        with child.span("work"):
            pass
        original = next(r for r in child.records if r["type"] == "span")["start"]
        parent.absorb(child)
        absorbed = next(r for r in parent.records if r["type"] == "span")["start"]
        assert absorbed == original

    def test_child_without_recorded_start_is_absorbed_unrebased(self):
        parent, child = Tracer(), Tracer()
        del child._unix_start  # an old pickled tracer
        with child.span("work"):
            pass
        parent.absorb(child)  # must not raise
        assert any(r["type"] == "span" for r in parent.records)


class TestPercentileEdgeCases:
    def test_empty_samples_do_not_raise(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 99) == 0.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 1) == 7.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_default_reservoir_bound_documented_value(self):
        assert DEFAULT_MAX_SAMPLES == 4096
        assert MetricsRegistry().max_samples == 4096

    def test_reservoir_bound_is_a_constructor_knob(self):
        metrics = MetricsRegistry(max_samples=4)
        for value in range(100):
            metrics.observe("s", float(value))
        stats = metrics.histogram("s")
        assert stats["count"] == 100  # the summary stays exact
        assert metrics._samples["s"] == [0.0, 1.0, 2.0, 3.0]

    def test_merge_respects_receiver_bound(self):
        small, big = MetricsRegistry(max_samples=2), MetricsRegistry()
        for value in range(10):
            big.observe("s", float(value))
        small.merge(big)
        assert len(small._samples["s"]) == 2
        assert small.histogram("s")["count"] == 10


class TestLabeledMetricNames:
    def test_labeled_sorts_keys(self):
        assert labeled("m", b="2", a="1") == "m{a=1,b=2}"

    def test_labeled_without_labels_is_identity(self):
        assert labeled("m") == "m"

    def test_split_round_trip(self):
        name = labeled("service.op_seconds", op="inline")
        assert split_labels(name) == ("service.op_seconds", {"op": "inline"})

    def test_split_plain_name(self):
        assert split_labels("service.requests") == ("service.requests", {})

    def test_labeled_escapes_reserved_characters(self):
        name = labeled("m", k='a{b}"c,d=e')
        base, labels = split_labels(name)
        assert base == "m"
        assert "=" not in labels["k"][1:]

    def test_labeled_series_are_independent(self):
        metrics = MetricsRegistry()
        metrics.inc(labeled("errors", op="a"))
        metrics.inc(labeled("errors", op="b"), 2)
        assert metrics.counters["errors{op=a}"] == 1
        assert metrics.counters["errors{op=b}"] == 2


class TestPrometheusExposition:
    def _registry(self):
        metrics = MetricsRegistry()
        metrics.inc("service.requests", 5)
        metrics.inc(labeled("service.errors", op="inline"), 2)
        metrics.gauge("service.queue_depth", 3)
        for value in range(1, 11):
            metrics.observe(labeled("service.op_seconds", op="wc"), value / 10)
        return metrics

    def test_render_has_help_and_type_lines(self):
        text = render_prometheus(self._registry())
        assert "# HELP repro_service_requests_total" in text
        assert "# TYPE repro_service_requests_total counter" in text
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "# TYPE repro_service_op_seconds summary" in text

    def test_counter_gets_total_suffix_and_labels(self):
        text = render_prometheus(self._registry())
        assert 'repro_service_errors_total{op="inline"} 2' in text
        assert "repro_service_requests_total 5" in text

    def test_summary_exposes_quantiles_sum_count(self):
        text = render_prometheus(self._registry())
        assert 'repro_service_op_seconds{op="wc",quantile="0.5"}' in text
        assert 'repro_service_op_seconds{op="wc",quantile="0.99"}' in text
        assert 'repro_service_op_seconds_sum{op="wc"}' in text
        assert 'repro_service_op_seconds_count{op="wc"} 10' in text

    def test_round_trip_parse(self):
        families = parse_prometheus(render_prometheus(self._registry()))
        assert families["repro_service_requests_total"]["type"] == "counter"
        assert families["repro_service_queue_depth"]["type"] == "gauge"
        summary = families["repro_service_op_seconds"]
        assert summary["type"] == "summary"
        assert summary["samples"]['repro_service_op_seconds_count{op="wc"}'] == 10.0
        assert 'repro_service_op_seconds{op="wc",quantile="0.9"}' in summary["samples"]

    def test_output_is_deterministic(self):
        assert render_prometheus(self._registry()) == render_prometheus(
            self._registry()
        )

    def test_metric_name_sanitization(self):
        assert prometheus_name("service.op-seconds") == (
            "repro_service_op_seconds"
        )
        assert prometheus_name("9lives") == "repro_9lives"

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_content_type_is_text_v004(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestSlowRequestLog:
    def test_record_schema(self):
        record = slow_request_record(
            kind="slow",
            op="inline",
            seconds=1.5,
            trace_id="abc",
            request_id="def",
            threshold=1.0,
            cache_hits=2,
            cache_misses=1,
            unix_time=123.0,
        )
        assert record["schema"] == SLOW_LOG_SCHEMA_VERSION
        assert record["kind"] == "slow"
        assert record["op"] == "inline"
        assert record["seconds"] == 1.5
        assert record["trace_id"] == "abc"
        assert record["request_id"] == "def"
        assert record["threshold"] == 1.0
        assert record["cache_hits"] == 2
        assert record["cache_misses"] == 1
        assert record["unix_time"] == 123.0
        assert "error" not in record

    def test_error_record_carries_error(self):
        record = slow_request_record(
            kind="error",
            op="bench",
            seconds=0.1,
            trace_id="t",
            request_id="r",
            threshold=1.0,
            error="ValueError: boom",
            unix_time=1.0,
        )
        assert record["kind"] == "error"
        assert record["error"] == "ValueError: boom"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            slow_request_record(
                kind="fast",
                op="x",
                seconds=0.0,
                trace_id="t",
                request_id="r",
                threshold=0.0,
                unix_time=0.0,
            )

    def test_append_jsonl_appends_one_line_each(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        append_jsonl(str(path), {"a": 1})
        append_jsonl(str(path), {"b": 2})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == [{"a": 1}, {"b": 2}]
