"""Tests for the observability subsystem: tracer, metrics, audit log,
no-op transparency, output-divergence diagnostics, and the CLI flags."""

import json
import logging

import pytest

from repro.compiler import compile_program
from repro.experiments.pipeline import (
    compare_outputs,
    run_benchmark,
    run_suite,
)
from repro.experiments.tables import all_tables
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.observability import (
    NULL_OBS,
    DecisionReason,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    Observability,
    Tracer,
    resolve,
    summarize_decisions,
)
from repro.observability.export import render_metrics_summary
from repro.profiler.profile import RunSpec, profile_module
from repro.workloads import benchmark_by_name


class TestTracer:
    def test_span_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        spans = {r["name"]: r for r in tracer.records if r["type"] == "span"}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        # Inner closes first, so duration nests too.
        assert spans["inner"]["seconds"] <= spans["outer"]["seconds"]

    def test_span_attrs_added_inside_body(self):
        tracer = Tracer()
        with tracer.span("phase", fixed=1) as attrs:
            attrs["late"] = 2
        record = next(r for r in tracer.records if r["type"] == "span")
        assert record["attrs"] == {"fixed": 1, "late": 2}

    def test_event_attaches_to_open_span(self):
        tracer = Tracer()
        with tracer.span("work"):
            tracer.event("milestone", n=3)
        span = next(r for r in tracer.records if r["type"] == "span")
        event = next(r for r in tracer.records if r["type"] == "event")
        assert event["span"] == span["id"]
        assert event["attrs"] == {"n": 3}

    def test_jsonl_round_trip(self):
        tracer = Tracer()
        with tracer.span("a", k="v"):
            tracer.event("e")
        tracer.record({"type": "custom", "payload": [1, 2]})
        lines = tracer.to_jsonl().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["type"] == "trace_start"
        types = {r["type"] for r in parsed}
        assert {"span", "event", "custom"} <= types

    def test_write_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write(str(path))
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(r["type"] == "span" for r in parsed)

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("x", a=1) as attrs:
            attrs["b"] = 2
            tracer.event("e")
        tracer.record({"type": "custom"})
        assert tracer.records == []
        assert not tracer.enabled


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.inc("calls")
        metrics.inc("calls", 4)
        assert metrics.counters["calls"] == 5

    def test_gauge_keeps_last(self):
        metrics = MetricsRegistry()
        metrics.gauge("size", 10)
        metrics.gauge("size", 7)
        assert metrics.gauges["size"] == 7

    def test_histogram_summary(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.observe("seconds", value)
        stats = metrics.histogram("seconds")
        assert stats["count"] == 3
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["mean"] == pytest.approx(2.0)

    def test_histogram_percentiles(self):
        metrics = MetricsRegistry()
        for value in range(1, 101):
            metrics.observe("seconds", float(value))
        stats = metrics.histogram("seconds")
        assert stats["p50"] == pytest.approx(50.0)
        assert stats["p90"] == pytest.approx(90.0)
        assert stats["p99"] == pytest.approx(99.0)

    def test_histogram_percentiles_single_sample(self):
        metrics = MetricsRegistry()
        metrics.observe("seconds", 2.5)
        stats = metrics.histogram("seconds")
        assert stats["p50"] == stats["p90"] == stats["p99"] == 2.5

    def test_merge_combines_percentile_samples(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0):
            a.observe("seconds", value)
        for value in (9.0, 10.0):
            b.observe("seconds", value)
        a.merge(b)
        stats = a.histogram("seconds")
        assert stats["count"] == 4
        assert stats["p90"] == pytest.approx(10.0)
        assert stats["p50"] == pytest.approx(2.0)

    def test_summary_surfaces_percentiles(self):
        metrics = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            metrics.observe("seconds", value)
        text = render_metrics_summary(metrics)
        assert "p50=" in text and "p90=" in text and "p99=" in text

    def test_snapshot_json_round_trip(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.gauge("b", 2)
        metrics.observe("c", 1.5)
        parsed = json.loads(metrics.to_json())
        assert parsed["counters"]["a"] == 1
        assert parsed["gauges"]["b"] == 2
        assert parsed["histograms"]["c"]["count"] == 1

    def test_null_metrics_discard(self):
        metrics = NullMetrics()
        metrics.inc("a")
        metrics.gauge("b", 1)
        metrics.observe("c", 1)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_summary_table_renders_all_kinds(self):
        metrics = MetricsRegistry()
        metrics.inc("vm.calls", 12)
        metrics.gauge("size", 3.5)
        metrics.observe("seconds", 0.25)
        text = render_metrics_summary(metrics)
        assert "vm.calls" in text and "counter" in text
        assert "gauge" in text and "histogram" in text

    def test_resolve_defaults_to_null(self):
        assert resolve(None) is NULL_OBS
        assert not NULL_OBS.enabled
        live = Observability.create()
        assert resolve(live) is live
        assert live.enabled


AUDIT_PROGRAM = """
int leaf(int x) { return x + 1; }
int once(int x) { return x * 2; }
int deep(int n) {
    if (n <= 0) return 0;
    return deep(n - 1) + leaf(n + 100);
}
int apply(int (*f)(int v), int x) { return f(x); }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 100; i++)
        s += leaf(i);
    s += once(s);
    s += deep(5);
    s += apply(leaf, 3);
    return 0;
}
"""


@pytest.fixture(scope="module")
def audit_module_and_profile():
    module = compile_program(AUDIT_PROGRAM, link_libc=False)
    profile = profile_module(module, [RunSpec()], check_exit=False)
    return module, profile


class TestInlineAuditLog:
    def _decisions(self, audit_module_and_profile, **param_overrides):
        module, profile = audit_module_and_profile
        params = InlineParameters(**param_overrides)
        result = inline_module(module, profile, params)
        return module, result

    def test_every_arc_audited_exactly_once(self, audit_module_and_profile):
        module, result = self._decisions(audit_module_and_profile)
        arcs = result.graph.call_site_arcs()
        decided_sites = [d.site for d in result.decisions]
        assert sorted(decided_sites) == sorted(arc.site for arc in arcs)
        assert len(set(decided_sites)) == len(decided_sites)

    def test_accepted_and_below_threshold(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile)
        by_pair = {
            (d.caller, d.callee): d for d in result.decisions
        }
        hot = by_pair[("main", "leaf")]
        assert hot.reason is DecisionReason.ACCEPTED
        assert hot.accepted
        assert hot.cost is not None
        assert hot.inputs["weight"] >= hot.inputs["weight_threshold"]
        cold = by_pair[("main", "once")]
        assert cold.reason is DecisionReason.BELOW_THRESHOLD
        assert cold.inputs["weight"] < cold.inputs["weight_threshold"]

    def test_pointer_call_not_direct(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile)
        pointer = [
            d for d in result.decisions if d.reason is DecisionReason.NOT_DIRECT
        ]
        assert pointer
        assert any(d.caller == "apply" for d in pointer)

    def test_self_recursion_is_order_violation_in_selection(
        self, audit_module_and_profile
    ):
        # The linear order puts deep at one position, so the deep->deep
        # arc violates callee-before-caller and never reaches the cost
        # function.
        _, result = self._decisions(audit_module_and_profile)
        self_arc = next(
            d for d in result.decisions if d.caller == "deep" and d.callee == "deep"
        )
        assert self_arc.reason is DecisionReason.ORDER_VIOLATION

    def test_recursive_limit(self, audit_module_and_profile):
        # stack_bound=0 makes any expansion touching the recursion
        # (deep -> leaf) a control-stack hazard.
        _, result = self._decisions(audit_module_and_profile, stack_bound=0)
        hazard = next(
            d for d in result.decisions if d.caller == "deep" and d.callee == "leaf"
        )
        assert hazard.reason is DecisionReason.RECURSIVE_LIMIT
        assert hazard.inputs["stack_usage"] > 0
        assert hazard.inputs["stack_bound"] == 0
        assert hazard.inputs["caller_recursive"]

    def test_size_limit(self, audit_module_and_profile):
        # A 1.0 growth factor forbids any growth at all.
        _, result = self._decisions(audit_module_and_profile, size_limit_factor=1.0)
        hot = next(
            d for d in result.decisions if d.caller == "main" and d.callee == "leaf"
        )
        assert hot.reason is DecisionReason.SIZE_LIMIT
        assert (
            hot.inputs["program_size"] + hot.inputs["size_delta"]
            > hot.inputs["size_limit"]
        )

    def test_max_expansions(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile, max_expansions=0)
        summary = summarize_decisions(result.decisions)
        assert summary.get("ACCEPTED", 0) == 0
        assert summary["MAX_EXPANSIONS"] >= 1

    def test_self_recursive_reason_in_cost_model(self, audit_module_and_profile):
        from repro.callgraph.build import build_call_graph
        from repro.inliner.cost import make_cost_model

        module, profile = audit_module_and_profile
        graph = build_call_graph(module, profile)
        model = make_cost_model(module, graph, InlineParameters())
        self_arc = next(
            arc
            for arc in graph.call_site_arcs()
            if arc.caller == "deep" and arc.callee == "deep"
        )
        decision = model.evaluate(self_arc)
        assert decision.reason is DecisionReason.SELF_RECURSIVE
        assert decision.cost == float("inf")

    def test_decision_record_shape(self, audit_module_and_profile):
        _, result = self._decisions(audit_module_and_profile)
        record = result.decisions[0].to_record()
        assert record["type"] == "inline_decision"
        assert {"site", "caller", "callee", "weight", "reason", "inputs"} <= set(
            record
        )
        json.dumps(record)  # must be JSON-serializable as-is


class TestNoOpTransparency:
    def test_observed_run_matches_unobserved_byte_for_byte(self):
        benchmark = benchmark_by_name("cmp")
        plain = run_benchmark(benchmark, "small")
        obs = Observability.create()
        observed = run_benchmark(benchmark, "small", obs=obs)
        assert all_tables([plain]) == all_tables([observed])
        # The observed run actually recorded something.
        assert obs.metrics.counters["pipeline.benchmarks"] == 1
        assert any(
            r.get("type") == "inline_decision" for r in obs.tracer.records
        )

    def test_trace_covers_all_arcs_of_benchmark(self):
        obs = Observability.create()
        result = run_benchmark(benchmark_by_name("cmp"), "small", obs=obs)
        decision_sites = [
            r["site"]
            for r in obs.tracer.records
            if r.get("type") == "inline_decision"
        ]
        arc_sites = [a.site for a in result.inline.graph.call_site_arcs()]
        assert sorted(decision_sites) == sorted(arc_sites)


class TestOutputDivergenceDiagnostics:
    def _module(self, body: str):
        return compile_program(
            "#include <sys.h>\n" + body, link_libc=True
        )

    def test_matching_modules(self):
        module = self._module("int main(void) { putchar('a'); return 0; }")
        comparison = compare_outputs(module, module, [RunSpec()])
        assert comparison.matches
        assert comparison.divergences == []

    def test_stdout_divergence_is_described(self):
        module_a = self._module("int main(void) { putchar('a'); return 0; }")
        module_b = self._module("int main(void) { putchar('b'); return 0; }")
        comparison = compare_outputs(
            module_a, module_b, [RunSpec(label="probe")]
        )
        assert not comparison.matches
        (detail,) = comparison.divergences
        assert detail.startswith("probe:")
        assert "stdout differs at byte 0" in detail

    def test_exit_code_divergence_is_described(self):
        module_a = self._module("int main(void) { return 0; }")
        module_b = self._module("int main(void) { return 3; }")
        comparison = compare_outputs(module_a, module_b, [RunSpec()])
        (detail,) = comparison.divergences
        assert "exit code 0 != 3" in detail
        assert detail.startswith("input 0:")

    def test_benchmark_result_carries_divergences(self):
        result = run_benchmark(benchmark_by_name("cmp"), "small")
        assert result.outputs_match
        assert result.output_divergences == []


class TestSuiteLogging:
    def test_progress_uses_repro_logger(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.experiments"):
            run_suite("small", names=["cmp"], check_outputs=False)
        messages = [r.getMessage() for r in caplog.records]
        assert any("[cmp] running ..." in m for m in messages)


class TestCliObservabilityFlags:
    PROGRAM = """
#include <sys.h>
int triple(int x) { return x * 3; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 40; i++)
        s += triple(i);
    print_int(s);
    return 0;
}
"""

    @pytest.fixture
    def c_file(self, tmp_path):
        path = tmp_path / "prog.c"
        path.write_text(self.PROGRAM)
        return str(path)

    def test_inline_trace_and_metrics(self, c_file, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = cli_main(
            [
                "inline",
                c_file,
                "--trace",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        assert any(r["type"] == "inline_decision" for r in records)
        assert any(
            r["type"] == "span" and r["name"] == "frontend.compile"
            for r in records
        )
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["frontend.tokens_lexed"] > 0
        assert snapshot["counters"]["vm.instructions_retired"] > 0
        assert "wrote trace" in capsys.readouterr().err

    def test_run_trace_flag(self, c_file, tmp_path, capsys):
        from repro.cli import main as cli_main

        trace = tmp_path / "trace.jsonl"
        code = cli_main(["run", c_file, "--trace", str(trace)])
        assert code == 0
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        assert any(r["type"] == "span" for r in records)

    def test_tables_trace_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = experiments_main(
            [
                "table4",
                "--benchmarks",
                "tee",
                "--trace",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        records = [json.loads(l) for l in trace.read_text().splitlines()]
        decisions = [r for r in records if r["type"] == "inline_decision"]
        assert decisions
        assert all(d["benchmark"] == "tee" for d in decisions)
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["pipeline.benchmarks"] == 1


class TestCompileWithAnalysisObservability:
    def test_obs_threads_through_same_spans(self):
        from repro.compiler import compile_with_analysis

        obs = Observability.create()
        result = compile_with_analysis(
            "#include <sys.h>\nint main(void){ putchar('x'); return 0; }\n",
            obs=obs,
        )
        assert result.module.functions
        span_names = {
            r["name"] for r in obs.tracer.records if r["type"] == "span"
        }
        assert {
            "frontend.compile",
            "frontend.preprocess",
            "frontend.parse",
            "frontend.analyze",
            "frontend.lower",
            "frontend.verify",
        } <= span_names
        assert obs.metrics.counters["frontend.modules_compiled"] == 1

    def test_default_stays_silent(self):
        from repro.compiler import compile_with_analysis

        result = compile_with_analysis(
            "#include <sys.h>\nint main(void){ return 0; }\n"
        )
        assert result.analysis is not None


class TestObservabilityAbsorb:
    def test_absorb_renumbers_and_tags(self):
        parent = Observability.create()
        child = Observability.create()
        with child.tracer.span("child.work"):
            child.tracer.event("tick")
        child.metrics.inc("widgets", 3)
        with parent.tracer.span("parent.outer"):
            parent.absorb(child, worker="w-0")
        records = parent.tracer.records
        child_span = next(
            r for r in records if r["type"] == "span" and r["name"] == "child.work"
        )
        outer = next(
            r for r in records if r["type"] == "span" and r["name"] == "parent.outer"
        )
        assert child_span["worker"] == "w-0"
        assert child_span["parent"] == outer["id"]
        assert parent.metrics.counters["widgets"] == 3
        ids = [r["id"] for r in records if "id" in r]
        assert len(ids) == len(set(ids))

    def test_null_obs_absorb_is_noop(self):
        from repro.observability import NULL_OBS

        child = Observability.create()
        child.metrics.inc("x")
        NULL_OBS.absorb(child)  # must not raise or record anything
        assert NULL_OBS.tracer.records == []
