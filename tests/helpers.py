"""Shared helpers for the test suite."""

from __future__ import annotations

from repro.compiler import compile_program
from repro.profiler.profile import RunSpec, profile_module, run_once
from repro.vm.machine import Machine, RunResult
from repro.vm.os import VirtualOS


def run_c(
    source: str,
    stdin: bytes = b"",
    argv: list[str] | None = None,
    files: dict[str, bytes] | None = None,
    link_libc: bool = True,
    fuel: int = 50_000_000,
) -> RunResult:
    """Compile C-subset source and execute it once."""
    module = compile_program(source, link_libc=link_libc)
    os = VirtualOS(stdin=stdin, files=files or {}, argv=argv or [])
    return Machine(module, os, fuel=fuel).run()


def c_output(source: str, **kwargs) -> str:
    """Run and return stdout, asserting a zero exit code."""
    result = run_c(source, **kwargs)
    assert result.exit_code == 0, (
        f"exit {result.exit_code}, stderr: {result.os.stderr_text()!r}"
    )
    return result.stdout


def c_main(body: str, prelude: str = "") -> str:
    """Wrap statements in a main() with the standard headers."""
    return (
        "#include <sys.h>\n#include <string.h>\n#include <stdlib.h>\n"
        "#include <ctype.h>\n"
        f"{prelude}\n"
        "int main(void) {\n"
        f"{body}\n"
        "return 0;\n}}\n".replace("}}", "}")
    )


def expr_value(expression: str, prelude: str = "") -> int:
    """Evaluate a C expression via the pipeline; return it as an int."""
    source = c_main(f"print_int({expression}); putchar(10);", prelude)
    out = c_output(source)
    return int(out.strip())


__all__ = ["c_main", "c_output", "expr_value", "run_c", "run_once"]
