"""Tests for loop-invariant code motion."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.compiler import compile_program
from repro.il.instructions import Opcode
from repro.il.verifier import verify_module
from repro.opt import licm_function, licm_module
from repro.profiler.profile import RunSpec, run_once

from helpers import c_main


def compiled(source):
    return compile_program(source)


class TestBasicHoisting:
    def test_invariant_expression_hoisted(self):
        source = c_main(
            "int base = getchar() + 1; int s = 0; int i;"
            " for (i = 0; i < 40; i++) s += base * 3 + 7;"
            " print_int(s);"
        )
        module = compiled(source)
        before = run_once(module)
        moved = licm_module(module)
        verify_module(module)
        after = run_once(module)
        assert moved > 0
        assert after.stdout == before.stdout
        assert after.counters.il < before.counters.il

    def test_variant_expression_stays(self):
        source = c_main(
            "int s = 0; int i;"
            " for (i = 0; i < 10; i++) s += i * i;"
            " print_int(s);"
        )
        module = compiled(source)
        before = run_once(module)
        licm_module(module)
        verify_module(module)
        assert run_once(module).stdout == before.stdout == "285"

    def test_division_never_hoisted(self):
        # Hoisting the division would trap on the zero-trip path.
        source = c_main(
            "int d = getchar() + 1; int s = 0; int i;"  # d == 0 on EOF
            " for (i = 0; i < 0; i++) s += 100 / d;"
            " print_int(s);"
        )
        module = compiled(source)
        licm_module(module)
        result = run_once(module)  # empty stdin: d == 0, loop never runs
        assert result.exit_code == 0
        assert result.stdout == "0"

    def test_loads_never_hoisted(self):
        source = c_main(
            "int cell[1]; int s = 0; int i; cell[0] = 1;"
            " for (i = 0; i < 5; i++) { s += cell[0]; cell[0] = s; }"
            " print_int(s);"
        )
        module = compiled(source)
        before = run_once(module).stdout
        licm_module(module)
        assert run_once(module).stdout == before

    def test_zero_trip_loop_semantics_preserved(self):
        source = c_main(
            "int n = getchar(); int s = 9; int i;"  # n == -1: loop skipped
            " for (i = 0; i < n; i++) s = 5 * 4;"
            " print_int(s);"
        )
        module = compiled(source)
        licm_module(module)
        # Hoisted computations may execute, but s is only written inside
        # the loop body, which never runs.
        assert run_once(module).stdout == "9"

    def test_nested_loop_invariant(self):
        source = c_main(
            "int a = getchar() + 2; int s = 0; int i; int j;"
            " for (i = 0; i < 6; i++)"
            "   for (j = 0; j < 6; j++) s += a * 5;"
            " print_int(s);"
        )
        module = compiled(source)
        before = run_once(module)
        licm_module(module)
        after = run_once(module)
        assert after.stdout == before.stdout
        assert after.counters.il < before.counters.il

    def test_idempotent_fixpoint(self):
        source = c_main(
            "int a = getchar() + 1; int s = 0; int i;"
            " for (i = 0; i < 8; i++) s += a * 2;"
            " print_int(s);"
        )
        module = compiled(source)
        licm_module(module)
        again = sum(
            licm_function(fn) for fn in module.functions.values()
        )
        assert again == 0


class TestOnBenchmarks:
    def test_all_benchmarks_preserved(self):
        from repro.workloads import benchmark_suite

        for benchmark in benchmark_suite():
            module = benchmark.compile()
            spec = benchmark.make_runs("small")[0]
            before = run_once(module, spec)
            licm_module(module)
            verify_module(module)
            after = run_once(module, spec)
            assert after.stdout == before.stdout, benchmark.name
            assert after.counters.il <= before.counters.il, benchmark.name


@st.composite
def loop_program(draw):
    """Random loop bodies mixing invariant and variant computations."""
    constant = draw(st.integers(min_value=-50, max_value=50))
    iterations = draw(st.integers(min_value=0, max_value=20))
    op1 = draw(st.sampled_from(("+", "*", "^", "&", "|")))
    op2 = draw(st.sampled_from(("+", "-", "*")))
    use_variant = draw(st.booleans())
    variant_term = f" + (i {op2} 3)" if use_variant else ""
    return c_main(
        f"int base = getchar() + {constant}; int s = 0; int i;"
        f" for (i = 0; i < {iterations}; i++)"
        f" s += (base {op1} {abs(constant) + 1}){variant_term};"
        " print_int(s);"
    )


class TestLICMProperty:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(loop_program(), st.binary(max_size=3))
    def test_licm_preserves_output(self, source, stdin):
        module = compiled(source)
        spec = RunSpec(stdin=stdin)
        before = run_once(module, spec)
        moved = licm_module(module)
        verify_module(module)
        after = run_once(module, spec)
        assert after.stdout == before.stdout
        # Zero-trip loops may *pay* for the hoisted instructions once;
        # any loop that runs at least twice must come out ahead.
        assert after.counters.il <= before.counters.il + moved
