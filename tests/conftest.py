"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler import compile_program
from repro.profiler.profile import RunSpec, profile_module


@pytest.fixture
def make_profiled():
    """Factory fixture: compile + profile a program over given inputs."""

    def factory(source: str, specs: list[RunSpec] | None = None):
        module = compile_program(source)
        specs = specs or [RunSpec()]
        profile = profile_module(module, specs, check_exit=False)
        return module, profile, specs

    return factory
