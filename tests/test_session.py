"""Tests for the CompilationSession content-addressed artifact cache."""

import os

import pytest

from repro.il.printer import format_module
from repro.observability import Observability
from repro.pipeline import (
    CompilationSession,
    module_cache_key,
    module_content_key,
    profile_cache_key,
)
from repro.profiler.profile import RunSpec
from repro.vm.machine import Machine

SOURCE = """
#include <sys.h>
int triple(int x) { return 3 * x; }
int main(void) { print_int(triple(14)); putchar(10); return 0; }
"""

OTHER_SOURCE = """
#include <sys.h>
int main(void) { putchar('z'); return 0; }
"""


def _cache_counters(obs):
    return {
        k.removeprefix("pipeline.cache."): v
        for k, v in obs.metrics.counters.items()
        if k.startswith("pipeline.cache.")
    }


class TestKeys:
    def test_module_key_stable_and_sensitive(self):
        key = module_cache_key(SOURCE, None, True, "fold", "main")
        assert key == module_cache_key(SOURCE, None, True, "fold", "main")
        assert key != module_cache_key(SOURCE + " ", None, True, "fold", "main")
        assert key != module_cache_key(SOURCE, {"N": "2"}, True, "fold", "main")
        assert key != module_cache_key(SOURCE, None, False, "fold", "main")
        assert key != module_cache_key(SOURCE, None, True, "dce", "main")

    def test_content_key_tracks_code_changes(self):
        session = CompilationSession()
        module = session.compiled_module(SOURCE)
        key = module_content_key(module)
        assert key == module_content_key(module.clone())
        mutated = module.clone()
        mutated.functions["main"].body.pop()
        assert module_content_key(mutated) != key

    def test_profile_key_depends_on_inputs(self):
        session = CompilationSession()
        module = session.compiled_module(SOURCE)
        spec_a = [RunSpec(stdin=b"a")]
        spec_b = [RunSpec(stdin=b"b")]
        assert profile_cache_key(module, spec_a) != profile_cache_key(
            module, spec_b
        )
        assert profile_cache_key(module, spec_a) == profile_cache_key(
            module.clone(), [RunSpec(stdin=b"a")]
        )


class TestMemoryCache:
    def test_second_compile_is_a_hit(self):
        obs = Observability.create()
        session = CompilationSession(obs=obs)
        session.compiled_module(SOURCE)
        assert _cache_counters(obs) == {"misses": 1}
        session.compiled_module(SOURCE)
        assert _cache_counters(obs) == {"misses": 1, "hits": 1}

    def test_returned_module_is_isolated_clone(self):
        session = CompilationSession()
        first = session.compiled_module(SOURCE)
        text = format_module(first)
        first.functions["main"].body.pop()  # vandalize the caller's copy
        second = session.compiled_module(SOURCE)
        assert format_module(second) == text
        assert Machine(second).run().exit_code == 0

    def test_profile_cached_and_copied(self):
        obs = Observability.create()
        session = CompilationSession(obs=obs)
        module = session.compiled_module(SOURCE)
        specs = [RunSpec()]
        profile = session.profile(module, specs)
        profile.node_weights["main"] = -1.0  # vandalize the caller's copy
        again = session.profile(module, specs)
        assert again.node_weights["main"] != -1.0
        assert _cache_counters(obs)["hits"] == 1

    def test_eviction_counted(self):
        obs = Observability.create()
        session = CompilationSession(max_entries=1, obs=obs)
        session.compiled_module(SOURCE)
        session.compiled_module(OTHER_SOURCE)
        assert _cache_counters(obs)["evictions"] == 1
        # The first entry is gone: compiling it again is a miss.
        session.compiled_module(SOURCE)
        assert _cache_counters(obs)["misses"] == 3


class TestDiskStore:
    def test_roundtrip_across_sessions(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        warm_obs = Observability.create()
        producer = CompilationSession(cache_dir=cache_dir)
        baseline = format_module(producer.compiled_module(SOURCE))

        consumer = CompilationSession(cache_dir=cache_dir, obs=warm_obs)
        module = consumer.compiled_module(SOURCE)
        counters = _cache_counters(warm_obs)
        assert counters.get("disk_hits") == 1
        assert counters.get("misses") is None
        assert format_module(module) == baseline

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        CompilationSession(cache_dir=cache_dir).compiled_module(SOURCE)
        store = tmp_path / "cache" / "v1"
        entries = list(store.rglob("*.pkl"))
        assert entries
        for entry in entries:
            entry.write_bytes(b"\x00garbage not pickle")

        obs = Observability.create()
        session = CompilationSession(cache_dir=cache_dir, obs=obs)
        module = session.compiled_module(SOURCE)  # must not raise
        assert Machine(module).run().exit_code == 0
        assert _cache_counters(obs)["misses"] == 1

    def test_unwritable_dir_never_breaks_compiles(self, tmp_path, monkeypatch):
        session = CompilationSession(cache_dir=str(tmp_path / "cache"))
        monkeypatch.setattr(os, "makedirs", _raise_oserror)
        module = session.compiled_module(SOURCE)  # store fails silently
        assert Machine(module).run().exit_code == 0

    def test_clear_disk(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        session = CompilationSession(cache_dir=cache_dir)
        session.compiled_module(SOURCE)
        assert list((tmp_path / "cache" / "v1").iterdir())
        session.clear(disk=True)
        assert not list((tmp_path / "cache" / "v1").iterdir())
        obs = Observability.create()
        again = CompilationSession(cache_dir=cache_dir, obs=obs)
        again.compiled_module(SOURCE)
        assert _cache_counters(obs)["misses"] == 1


def _raise_oserror(*args, **kwargs):
    raise OSError("read-only file system")


class TestShardedLayout:
    def test_entries_live_in_two_hex_shards(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        CompilationSession(cache_dir=cache_dir).compiled_module(SOURCE)
        entries = list((tmp_path / "cache" / "v1").rglob("*.pkl"))
        assert len(entries) == 1
        entry = entries[0]
        assert entry.parent.name == entry.stem[:2]
        assert entry.parent.parent.name == "module"

    def test_legacy_flat_entries_still_readable(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        CompilationSession(cache_dir=cache_dir).compiled_module(SOURCE)
        store = tmp_path / "cache" / "v1"
        (entry,) = store.rglob("*.pkl")
        # Demote the entry to the pre-sharding flat layout.
        kind = entry.parent.parent.name
        entry.rename(store / f"{kind}-{entry.name}")
        entry.parent.rmdir()

        obs = Observability.create()
        session = CompilationSession(cache_dir=cache_dir, obs=obs)
        module = session.compiled_module(SOURCE)
        assert _cache_counters(obs).get("disk_hits") == 1
        assert Machine(module).run().exit_code == 0

    def test_spec_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        session = CompilationSession(
            cache_dir=cache_dir, max_entries=7, disk_max_entries=40
        )
        clone = CompilationSession.from_spec(session.spec())
        assert clone.cache_dir == cache_dir
        assert clone.max_entries == 7
        assert clone.disk_max_entries == 40
        assert CompilationSession.from_spec(None) is None


class TestDiskEviction:
    def test_oldest_entry_evicted_beyond_limit(self, tmp_path):
        obs = Observability.create()
        session = CompilationSession(
            cache_dir=str(tmp_path / "cache"), disk_max_entries=1, obs=obs
        )
        session.compiled_module(SOURCE)
        os.utime(
            next((tmp_path / "cache" / "v1").rglob("*.pkl")), times=(1, 1)
        )
        session.compiled_module(OTHER_SOURCE)
        entries = list((tmp_path / "cache" / "v1").rglob("*.pkl"))
        assert len(entries) == 1
        assert _cache_counters(obs)["disk_evictions"] == 1
        # The survivor is the newer entry: OTHER_SOURCE is a disk hit
        # for a fresh session, SOURCE a miss.
        fresh_obs = Observability.create()
        fresh = CompilationSession(
            cache_dir=str(tmp_path / "cache"), obs=fresh_obs
        )
        fresh.compiled_module(OTHER_SOURCE)
        assert _cache_counters(fresh_obs).get("disk_hits") == 1


def _hammer_cache(args):
    """Worker for the concurrency test: compile both sources repeatedly."""
    cache_dir, rounds = args
    digests = set()
    for _ in range(rounds):
        session = CompilationSession(cache_dir=cache_dir)
        for source in (SOURCE, OTHER_SOURCE):
            digests.add(format_module(session.compiled_module(source)))
    return sorted(digests)


class TestCrossProcessSafety:
    def test_concurrent_processes_never_corrupt_the_store(self, tmp_path):
        import multiprocessing

        cache_dir = str(tmp_path / "cache")
        context = multiprocessing.get_context("fork")
        with context.Pool(4) as pool:
            digest_sets = pool.map(_hammer_cache, [(cache_dir, 5)] * 4)
        # Every process saw the same two modules...
        assert all(digests == digest_sets[0] for digests in digest_sets)
        assert len(digest_sets[0]) == 2
        # ...and the store they all wrote is intact and readable.
        obs = Observability.create()
        session = CompilationSession(cache_dir=cache_dir, obs=obs)
        for source in (SOURCE, OTHER_SOURCE):
            assert Machine(session.compiled_module(source)).run().exit_code == 0
        counters = _cache_counters(obs)
        assert counters.get("disk_hits") == 2
        assert counters.get("misses") is None


class TestPreOptimizedCaching:
    def test_pass_spec_distinguishes_entries(self):
        obs = Observability.create()
        session = CompilationSession(obs=obs)
        plain = session.compiled_module(SOURCE, pass_spec="")
        optimized = session.compiled_module(
            SOURCE, pass_spec="constant-fold,copy-propagate,cse,jump-optimize,dead-code"
        )
        assert _cache_counters(obs)["misses"] == 2
        assert optimized.total_code_size() <= plain.total_code_size()
