"""Unit tests for the lexer."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def spellings(text):
    return [t.spelling for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("hello") == [TokenKind.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert spellings("_foo42 bar_baz") == ["_foo42", "bar_baz"]

    def test_keywords_are_distinguished(self):
        tokens = tokenize("int intx")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT

    def test_all_keywords(self):
        for word in ("if", "else", "while", "for", "return", "struct",
                     "switch", "case", "default", "break", "continue",
                     "sizeof", "do", "void", "char", "inline"):
            assert tokenize(word)[0].kind is TokenKind.KEYWORD, word

    def test_whitespace_between_tokens(self):
        assert spellings("a\t \n b") == ["a", "b"]


class TestNumbers:
    def test_decimal(self):
        assert values("42") == [42]

    def test_zero(self):
        assert values("0") == [0]

    def test_hex(self):
        assert values("0x1F 0XAB") == [31, 171]

    def test_octal(self):
        assert values("017") == [15]

    def test_suffixes_ignored(self):
        assert values("10L 10u 10UL") == [10, 10, 10]

    def test_malformed_hex_raises(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_trailing_letters_raise(self):
        with pytest.raises(LexError):
            tokenize("123abc")


class TestCharConstants:
    def test_simple(self):
        assert values("'a'") == [ord("a")]

    def test_escapes(self):
        assert values(r"'\n' '\t' '\0' '\\' '\''") == [10, 9, 0, 92, 39]

    def test_hex_escape(self):
        assert values(r"'\x41'") == [65]

    def test_octal_escape(self):
        assert values(r"'\101'") == [65]

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_multichar_raises(self):
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestStrings:
    def test_simple(self):
        assert values('"hello"') == ["hello"]

    def test_escapes_decoded(self):
        assert values(r'"a\nb\tc"') == ["a\nb\tc"]

    def test_empty(self):
        assert values('""') == [""]

    def test_unterminated_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')


class TestPunctuators:
    def test_maximal_munch(self):
        assert spellings("a<<=b") == ["a", "<<=", "b"]
        assert spellings("a<<b") == ["a", "<<", "b"]
        assert spellings("a<b") == ["a", "<", "b"]

    def test_arrow_vs_minus(self):
        assert spellings("p->x - y") == ["p", "->", "x", "-", "y"]

    def test_increment(self):
        assert spellings("a+++b") == ["a", "++", "+", "b"]

    def test_stray_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestComments:
    def test_line_comment(self):
        assert spellings("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert spellings("a /* x */ b") == ["a", "b"]

    def test_block_comment_multiline(self):
        assert spellings("a /* x\ny\nz */ b") == ["a", "b"]

    def test_unterminated_block_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_hash_line_skipped_at_column_one(self):
        assert spellings("# 1 anything\nfoo") == ["foo"]


class TestLocations:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        token = tokenize("x", filename="foo.c")[0]
        assert token.location.filename == "foo.c"

    def test_error_carries_location(self):
        with pytest.raises(LexError) as info:
            tokenize("\n\n  @")
        assert info.value.location.line == 3
