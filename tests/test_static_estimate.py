"""Tests for structure-analysis weight estimation (§2.2 / §4.2)."""

from repro.compiler import compile_program
from repro.inliner.manager import inline_module
from repro.profiler import RunSpec, estimate_profile, profile_module, run_once

PROGRAM = """
#include <sys.h>
int in_loop(int x) { return x + 1; }
int in_nested(int x) { return x * 2; }
int outside(int x) { return x - 1; }
int main(void) {
    int i;
    int j;
    int s = outside(5);
    for (i = 0; i < 10; i++) {
        s += in_loop(i);
        for (j = 0; j < 10; j++)
            s += in_nested(j);
    }
    print_int(s);
    return 0;
}
"""


class TestEstimation:
    def test_loop_depth_orders_weights(self):
        module = compile_program(PROGRAM)
        estimated = estimate_profile(module)
        assert (
            estimated.node_weight("in_nested")
            > estimated.node_weight("in_loop")
            > estimated.node_weight("outside")
        )

    def test_entry_weight_is_one(self):
        module = compile_program(PROGRAM)
        estimated = estimate_profile(module)
        assert estimated.node_weight("main") == 1.0

    def test_arc_weights_cover_all_sites(self):
        module = compile_program(PROGRAM)
        estimated = estimate_profile(module)
        sites = {instr.site for _, instr in module.call_sites()}
        assert sites <= set(estimated.arc_weights)

    def test_uncalled_functions_weightless(self):
        module = compile_program(PROGRAM)
        estimated = estimate_profile(module)
        assert estimated.node_weight("strstr") == 0.0  # unused libc

    def test_recursion_does_not_blow_up(self):
        module = compile_program(
            "int f(int n) { return n <= 0 ? 0 : f(n - 1); }\n"
            "int main(void) { int i; int s = 0;"
            " for (i = 0; i < 3; i++) s += f(i); return s ? 1 : 0; }"
        )
        estimated = estimate_profile(module)
        assert estimated.node_weight("f") < 1e6

    def test_ranking_correlates_with_real_profile(self):
        module = compile_program(PROGRAM)
        estimated = estimate_profile(module)
        real = profile_module(module, [RunSpec()])
        called = ["in_nested", "in_loop", "outside"]
        estimated_rank = sorted(called, key=estimated.node_weight)
        real_rank = sorted(called, key=real.node_weight)
        assert estimated_rank == real_rank


class TestEstimatedInlining:
    def test_pipeline_runs_on_estimates(self):
        module = compile_program(PROGRAM)
        estimated = estimate_profile(module)
        result = inline_module(module, estimated)
        assert result.records
        assert run_once(result.module).stdout == run_once(module).stdout

    def test_hot_loop_callee_selected(self):
        module = compile_program(PROGRAM)
        estimated = estimate_profile(module)
        result = inline_module(module, estimated)
        callees = {record.callee for record in result.records}
        assert "in_nested" in callees
