"""Tests for the impact-inline CLI and the experiments __main__."""

import os

import pytest

from repro.cli import main as cli_main
from repro.experiments.__main__ import main as experiments_main

PROGRAM = """
#include <sys.h>
int triple(int x) { return x * 3; }
int main(void) {
    int i;
    int s = 0;
    for (i = 0; i < 40; i++)
        s += triple(i);
    print_int(s);
    putchar('\\n');
    return 0;
}
"""


@pytest.fixture
def c_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text(PROGRAM)
    return str(path)


class TestRunCommand:
    def test_runs_and_prints(self, c_file, capsys):
        code = cli_main(["run", c_file])
        captured = capsys.readouterr()
        assert code == 0
        assert "2340" in captured.out
        assert "ILs" in captured.err

    def test_stdin_flag(self, tmp_path, capsys):
        path = tmp_path / "echo.c"
        path.write_text(
            "#include <sys.h>\n"
            "int main(void) { int c = getchar();"
            " while (c != EOF) { putchar(c); c = getchar(); } return 0; }"
        )
        cli_main(["run", str(path), "--stdin", "ping"])
        assert "ping" in capsys.readouterr().out

    def test_argv_flags(self, tmp_path, capsys):
        path = tmp_path / "args.c"
        path.write_text(
            "#include <sys.h>\n"
            "int main(int argc, char **argv) {"
            " print_str(argv[1]); return 0; }"
        )
        cli_main(["run", str(path), "--arg", "zap"])
        assert "zap" in capsys.readouterr().out


class TestInlineCommand:
    def test_reports_improvement(self, c_file, capsys):
        code = cli_main(["inline", c_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "expanded call sites" in out
        assert "call decrease" in out

    def test_dump_flag_prints_il(self, c_file, capsys):
        cli_main(["inline", c_file, "--dump"])
        out = capsys.readouterr().out
        assert "func main" in out

    def test_threshold_flag(self, c_file, capsys):
        cli_main(["inline", c_file, "--threshold", "1000000"])
        out = capsys.readouterr().out
        assert "expanded call sites : 0" in out


class TestTablesCommand:
    def test_single_benchmark_table(self, capsys):
        code = experiments_main(["table1", "--benchmarks", "tee"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert "tee" in out

    def test_table4_subset(self, capsys):
        code = experiments_main(["table4", "--benchmarks", "wc", "tee"])
        out = capsys.readouterr().out
        assert code == 0
        assert "code inc" in out


class TestGraphCommand:
    def test_dot_output(self, c_file, capsys):
        code = cli_main(["graph", c_file])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("digraph callgraph")
        assert '"triple"' in out

    def test_profile_weights(self, c_file, capsys):
        cli_main(["graph", c_file, "--profile"])
        out = capsys.readouterr().out
        assert "triple\\n40" in out

    def test_synthetic_flag(self, c_file, capsys):
        cli_main(["graph", c_file, "--synthetic"])
        out = capsys.readouterr().out
        assert "style=dotted" in out

    def test_dot_flag_colors_arcs_by_reason(self, c_file, capsys):
        code = cli_main(["graph", c_file, "--dot"])
        out = capsys.readouterr().out
        assert code == 0
        # the hot main->triple arc is accepted, cold libc arcs are gray
        assert "ACCEPTED" in out and "color=forestgreen" in out
        assert "BELOW_THRESHOLD" in out and "color=gray" in out

    def test_dot_flag_respects_threshold(self, c_file, capsys):
        cli_main(["graph", c_file, "--dot", "--threshold", "1000000"])
        out = capsys.readouterr().out
        assert "ACCEPTED" not in out


class TestSummaryFlag:
    def test_run_summary_on_stderr(self, c_file, capsys):
        code = cli_main(["run", c_file, "--summary"])
        captured = capsys.readouterr()
        assert code == 0
        assert "metrics:" in captured.err
        assert "vm.instructions_retired" in captured.err
        assert "metrics:" not in captured.out

    def test_tables_summary_on_stderr(self, capsys):
        code = experiments_main(["table4", "--benchmarks", "wc", "--summary"])
        captured = capsys.readouterr()
        assert code == 0
        assert "Table 4" in captured.out
        assert "pipeline.benchmarks" in captured.err


class TestJobsValidation:
    @pytest.mark.parametrize("value", ["0", "-3", "nope"])
    def test_tables_rejects_bad_jobs(self, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["tables", "--jobs", value])
        assert excinfo.value.code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_serve_rejects_zero_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["serve", "--jobs", "0"])
        assert excinfo.value.code == 2

    def test_tables_rejects_unknown_executor(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["tables", "--executor", "fiber"])
        assert "invalid choice" in capsys.readouterr().err

    def test_jobs_help_documents_the_tradeoff(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["tables", "--help"])
        text = capsys.readouterr().out
        assert "GIL" in text
        assert "process" in text


class TestServeAndCall:
    def test_cli_round_trip(self, c_file, tmp_path, capsys):
        import json
        import threading
        import time

        socket_path = str(tmp_path / "cli.sock")
        server = threading.Thread(
            target=cli_main, args=(["serve", "--socket", socket_path],),
            daemon=True,
        )
        server.start()
        deadline = time.time() + 30
        while not os.path.exists(socket_path):
            assert time.time() < deadline, "server socket never appeared"
            time.sleep(0.05)
        try:
            code = cli_main(["call", "ping", "--socket", socket_path])
            assert code == 0
            assert json.loads(capsys.readouterr().out)["result"] == "pong"

            code = cli_main(
                ["call", "inline", c_file, "--socket", socket_path,
                 "--threshold", "1.0"]
            )
            assert code == 0
            envelope = json.loads(capsys.readouterr().out)
            assert envelope["ok"] is True
            assert envelope["result"]["expanded"] >= 1
        finally:
            cli_main(["call", "shutdown", "--socket", socket_path])
            capsys.readouterr()
            server.join(timeout=30)
        assert not server.is_alive()

    def test_call_without_file_errors(self, tmp_path, capsys):
        code = cli_main(
            ["call", "compile", "--socket", str(tmp_path / "none.sock")]
        )
        assert code == 2
        assert "requires a FILE.c" in capsys.readouterr().err
