"""The ``impact-inline`` command-line tool.

Subcommands::

    impact-inline run FILE.c [--stdin TEXT] [--arg A ...]
        Compile a C-subset file and execute it in the VM.
    impact-inline inline FILE.c [--stdin TEXT] [--arg A ...] [--dump]
        Profile the program on the given input, inline, re-run, and
        report the call decrease / code increase.
    impact-inline tables [--scale small|full] [--jobs N] [--cache-dir [DIR]]
        Regenerate the paper's tables (same as python -m repro.experiments).
    impact-inline bench [--benchmarks ...] [--config NAME] [-o FILE]
        Run the suite under full telemetry and write a schema-versioned
        BENCH_<config>.json record (counts, phase times, cache rates).
    impact-inline report BASELINE [CURRENT] [--format table|markdown|html]
        Compare two bench records; non-zero exit on exact-metric
        regressions (wall time gated only with --fail-on-time).
    impact-inline check [--benchmarks ...] [--fuzz N] [--seed S] [--engines]
        Differential-correctness harness: run original and inlined
        modules of each benchmark in lockstep and (optionally) fuzz
        random programs through the full pipeline. Exit 1 on any
        divergence or broken invariant. With ``--engines``, instead
        diff the counting interpreter against the fast tier on every
        benchmark (exit code, stdout, written files, and the full
        counter dictionaries must be identical).
    impact-inline serve [--socket PATH] [--jobs N] [--executor ...]
        Long-running compilation service on a local Unix socket:
        batches and deduplicates concurrent compile/profile/inline/
        check requests onto a worker pool; SIGINT/SIGTERM drain
        gracefully. ``--prom-out FILE`` keeps a Prometheus text
        exposition file fresh, ``--slow-log FILE`` appends a JSONL
        record for every slow/failed request. See README "Service
        mode".
    impact-inline call OP [FILE.c] [--socket PATH] ...
        Client for a running server: compile|profile|inline|check a
        source file, or ping|health|stats|metrics|shutdown the server.
    impact-inline top [--socket PATH] [--interval S] [--count N]
        Live dashboard over a running server: throughput, per-op
        latency percentiles, queue depth, pool utilization, and cache
        hit rates, refreshed every --interval seconds.

``run``, ``inline``, and ``tables`` accept ``--check`` (re-verify IL
well-formedness — for ``inline`` and ``tables`` after every pipeline
pass) and ``--trace FILE`` (structured
JSONL trace: phase spans, events, inline-decision audit records),
``--metrics-out FILE`` (JSON snapshot of pipeline counters/gauges/
histograms), and ``--summary`` (metrics summary table on stderr); see
README "Observability". ``tables`` additionally takes ``--jobs N``
(parallel suite execution), ``--cache-dir [DIR]`` (content-addressed
compile/profile cache), and ``--passes SPEC`` (custom pre-optimization
pipeline); see README "Pipeline architecture". ``bench``/``report``
are the performance-tracking loop; see README "Performance tracking".
``run``, ``inline``, ``tables``, ``bench``, ``check``, ``serve``, and
``call`` accept ``--engine counting|fast`` to pick the VM execution
engine; both engines produce identical outputs and counters (README
"Execution engines").
"""

from __future__ import annotations

import argparse
import sys

from repro.compiler import compile_program
from repro.il.printer import format_module
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.observability import Observability
from repro.pipeline.parallel import jobs_argument
from repro.profiler.profile import RunSpec, profile_module, run_once


def _run_spec(args: argparse.Namespace) -> RunSpec:
    return RunSpec(
        stdin=(args.stdin or "").encode(),
        argv=list(args.arg or []),
    )


def _make_obs(args: argparse.Namespace) -> Observability | None:
    """A live observability context when an obs flag asks for one."""
    if (
        getattr(args, "trace", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "summary", False)
    ):
        return Observability.create()
    return None


def _export_obs(args: argparse.Namespace, obs: Observability | None) -> None:
    if obs is None:
        return
    from repro.observability.export import (
        render_metrics_summary,
        write_metrics,
        write_trace,
    )

    if args.trace:
        write_trace(obs.tracer, args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    if args.metrics_out:
        write_metrics(obs.metrics, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
    if getattr(args, "summary", False):
        print(render_metrics_summary(obs.metrics), file=sys.stderr)


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default="counting",
        choices=["counting", "fast"],
        help="VM execution engine: 'counting' is the reference"
        " interpreter; 'fast' compiles each function to Python closures"
        " and produces the exact same counters several times faster"
        " (see README 'Execution engines')",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL trace (spans, events, inline decisions)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a JSON metrics snapshot",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the metrics text summary to stderr",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    obs = _make_obs(args)
    module = compile_program(source, args.file, obs=obs)
    if args.check:
        from repro.il.verifier import verify_module

        verify_module(module)
    result = run_once(module, _run_spec(args), obs=obs, engine=args.engine)
    sys.stdout.write(result.stdout)
    counters = result.counters
    print(
        f"\n[exit {result.exit_code}; {counters.il} ILs,"
        f" {counters.ct} CTs, {counters.calls} calls]",
        file=sys.stderr,
    )
    _export_obs(args, obs)
    return result.exit_code


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.profiler.serialize import dump_profile

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    module = compile_program(source, args.file)
    profile = profile_module(module, [_run_spec(args)], check_exit=False)
    text = dump_profile(profile, module)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote profile to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_inline(args: argparse.Namespace) -> int:
    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    obs = _make_obs(args)
    module = compile_program(source, args.file, obs=obs)
    if args.passes:
        from repro.opt import optimize_module

        optimize_module(module, obs=obs, pass_spec=args.passes)
    spec = _run_spec(args)
    if args.profile_file:
        from repro.profiler.serialize import load_profile

        with open(args.profile_file, encoding="utf-8") as handle:
            profile = load_profile(handle.read(), module)
    else:
        profile = profile_module(
            module, [spec], check_exit=False, obs=obs, engine=args.engine
        )
    params = InlineParameters(
        weight_threshold=args.threshold,
        size_limit_factor=args.growth,
    )
    result = inline_module(module, profile, params, check=args.check, obs=obs)
    if obs is not None and obs.tracer.enabled:
        for decision in result.decisions:
            obs.tracer.record(decision.to_record())
    after = profile_module(
        result.module, [spec], check_exit=False, obs=obs, engine=args.engine
    )
    before_calls = profile.avg_calls
    decrease = 1.0 - after.avg_calls / before_calls if before_calls else 0.0
    print(f"expanded call sites : {len(result.records)}")
    print(f"code increase       : {100 * result.code_increase:.1f}%")
    print(f"call decrease       : {100 * decrease:.1f}%")
    print(f"ILs per call after  : {after.avg_il / after.avg_calls if after.avg_calls else float('inf'):.0f}")
    if args.dump:
        print(format_module(result.module))
    _export_obs(args, obs)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.callgraph.build import build_call_graph
    from repro.callgraph.dot import to_dot

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    module = compile_program(source, args.file)
    if args.dot:
        # Run a full profile + selection so every arc carries the
        # selector's reason code, then color the DOT output by it.
        profile = profile_module(module, [_run_spec(args)], check_exit=False)
        result = inline_module(
            module,
            profile,
            InlineParameters(
                weight_threshold=args.threshold,
                size_limit_factor=args.growth,
            ),
        )
        reasons = {
            decision.site: decision.reason.value
            for decision in result.decisions
        }
        print(
            to_dot(
                result.graph,
                include_synthetic=args.synthetic,
                min_weight=args.min_weight,
                decisions=reasons,
            )
        )
        return 0
    profile = None
    if args.profile:
        profile = profile_module(module, [_run_spec(args)], check_exit=False)
    graph = build_call_graph(module, profile, refine_pointers=args.refine)
    print(to_dot(graph, include_synthetic=args.synthetic, min_weight=args.min_weight))
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.experiments.__main__ import main as experiments_main

    argv = [args.what, "--scale", args.scale]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.executor != "thread":
        argv += ["--executor", args.executor]
    if args.cache_dir:
        argv += ["--cache-dir", args.cache_dir]
    if args.passes:
        argv += ["--passes", args.passes]
    if args.engine != "counting":
        argv += ["--engine", args.engine]
    if args.check:
        argv += ["--check"]
    if args.trace:
        argv += ["--trace", args.trace]
    if args.metrics_out:
        argv += ["--metrics-out", args.metrics_out]
    if args.summary:
        argv += ["--summary"]
    return experiments_main(argv)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.observability import BenchRecorder, Observability

    recorder = BenchRecorder(
        config_name=args.config,
        scale=args.scale,
        names=args.benchmarks,
        jobs=args.jobs,
        executor=args.executor,
        pass_spec=args.passes,
        params=InlineParameters(
            weight_threshold=args.threshold,
            size_limit_factor=args.growth,
        ),
        cache_dir=args.cache_dir,
        engine=args.engine,
    )
    obs = Observability.create()
    record = recorder.run(obs=obs)
    path = record.write(args.output)
    if args.trace:
        from repro.observability.export import write_trace

        write_trace(obs.tracer, args.trace)
        print(f"wrote trace to {args.trace}", file=sys.stderr)
    total_il = sum(
        data["counters"]["il"] for data in record.benchmarks.values()
    )
    print(
        f"wrote {path}: {len(record.benchmarks)} benchmarks,"
        f" {total_il} dynamic ILs, {record.wall_seconds:.2f}s wall,"
        f" git {record.git_sha[:12]}",
        file=sys.stderr,
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.verify import run_fuzz, verify_suite

    obs = _make_obs(args)
    params = InlineParameters(
        weight_threshold=args.threshold,
        size_limit_factor=args.growth,
    )
    failed = False
    if args.engines:
        # Engine-equivalence mode: run every benchmark under both the
        # counting interpreter and the fast tier, diffing exit code,
        # stdout, written files, and the full counter dictionaries.
        from repro.verify import diff_engines_suite, replay_fuzz_corpus

        reports = diff_engines_suite(
            names=args.benchmarks, scale=args.scale, obs=obs
        )
        for report in reports:
            print(report.summary())
            failed = failed or not report.ok
        if args.fuzz:
            replays = replay_fuzz_corpus(args.fuzz, seed=args.seed, obs=obs)
            bad = [report for report in replays if not report.ok]
            status = "ok" if not bad else "FAIL"
            print(
                f"fuzz replay: {status} ({len(replays)} programs from"
                f" seed {args.seed}, {len(bad)} divergent)"
            )
            for report in bad:
                print("  " + report.summary().replace("\n", "\n  "))
            failed = failed or bool(bad)
        _export_obs(args, obs)
        return 1 if failed else 0
    reports = verify_suite(
        names=args.benchmarks,
        scale=args.scale,
        params=params,
        obs=obs,
        engine=args.engine,
    )
    for report in reports:
        print(report.summary())
        failed = failed or not report.ok
    if args.fuzz:
        fuzz = run_fuzz(args.fuzz, seed=args.seed, obs=obs, engine=args.engine)
        status = "ok" if fuzz.ok else "FAIL"
        print(
            f"fuzz: {status} ({fuzz.count} programs from seed {fuzz.seed},"
            f" {fuzz.expansions} expansions,"
            f" {len(fuzz.failures)} failures)"
        )
        for failure in fuzz.failures:
            print(
                f"  - program {failure.index} (seed {failure.seed})"
                f" at stage {failure.stage}: {failure.detail}"
            )
            print("    " + failure.source.replace("\n", "\n    "))
        failed = failed or not fuzz.ok
    _export_obs(args, obs)
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service.server import CompilationService

    obs = _make_obs(args) or Observability.create()
    service = CompilationService(
        args.socket,
        jobs=args.jobs,
        executor=args.executor,
        cache_dir=args.cache_dir,
        obs=obs,
        max_batch=args.max_batch,
        slow_log=args.slow_log,
        slow_threshold=args.slow_threshold,
        prom_out=args.prom_out,
        prom_interval=args.prom_interval,
        engine=args.engine,
    )

    async def main() -> None:
        await service.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(service.shutdown())
                )
            except (ValueError, NotImplementedError, RuntimeError):
                # Not the main thread (tests) or no signal support on
                # this platform; the admin 'shutdown' op still drains.
                break
        print(
            f"serving on {args.socket} ({args.jobs} {args.executor}"
            f" worker{'s' if args.jobs != 1 else ''});"
            " send SIGINT/SIGTERM or an admin 'shutdown' to drain",
            file=sys.stderr,
        )
        await service.wait_stopped()

    asyncio.run(main())
    _export_obs(args, obs)
    return 0


def _cmd_call(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient, ServiceError
    from repro.service.ops import OPS

    params: dict = {}
    if args.op in OPS:
        if not args.file:
            print(f"call {args.op} requires a FILE.c", file=sys.stderr)
            return 2
        with open(args.file, encoding="utf-8") as handle:
            params["source"] = handle.read()
        params["filename"] = args.file
        if args.stdin:
            params["stdin"] = args.stdin
        if args.arg:
            params["argv"] = list(args.arg)
        if args.passes:
            params["passes"] = args.passes
        if args.op in ("inline", "check"):
            params["threshold"] = args.threshold
            params["growth"] = args.growth
        if args.engine != "counting" and args.op != "compile":
            params["engine"] = args.engine
        if args.dump and args.op == "compile":
            params["dump"] = True
    with ServiceClient(args.socket) as client:
        try:
            envelope = client.request(args.op, params, raw=True)
        except ServiceError as exc:
            print(f"service error: {exc}", file=sys.stderr)
            return 1
    if args.op == "metrics" and envelope.get("ok"):
        # Prometheus text exposition goes to stdout verbatim, scrapable
        # with `impact-inline call metrics > metrics.prom`.
        sys.stdout.write(envelope["result"]["body"])
        return 0
    print(json.dumps(envelope, indent=2, sort_keys=True, default=str))
    return 0 if envelope.get("ok") else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service.top import watch

    return watch(
        args.socket,
        interval=args.interval,
        count=args.count,
        clear=not args.no_clear,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.observability.bench import compare, load_record
    from repro.observability.report import (
        load_trace,
        render_comparison_table,
        render_flamegraph,
        render_html_report,
        render_markdown_report,
    )

    baseline = load_record(args.baseline)
    current = load_record(args.current) if args.current else baseline
    comparison = compare(
        baseline,
        current,
        epsilon=args.epsilon,
        time_tolerance=args.time_tolerance,
    )
    flame = None
    if args.flame:
        flame = render_flamegraph(load_trace(args.flame))
    if args.format == "markdown":
        text = render_markdown_report(comparison, flame=flame)
    elif args.format == "html":
        text = render_html_report(comparison, flame=flame)
    else:
        text = render_comparison_table(comparison, show_ok=args.show_ok)
        if flame:
            text += "\n\nflamegraph:\n" + flame
        text += "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote report to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    if not comparison.ok(fail_on_time=args.fail_on_time):
        for delta in comparison.regressions + (
            comparison.time_regressions if args.fail_on_time else []
        ):
            print(f"REGRESSION: {delta.describe()}", file=sys.stderr)
        for name in comparison.missing_benchmarks:
            print(f"REGRESSION: benchmark {name} missing", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="impact-inline",
        description="Profile-guided inline function expansion for C programs"
        " (Hwu & Chang, PLDI 1989 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="compile and execute a C-subset file")
    run_parser.add_argument("file")
    run_parser.add_argument("--stdin", default="")
    run_parser.add_argument("--arg", action="append")
    run_parser.add_argument(
        "--check",
        action="store_true",
        help="re-verify IL well-formedness before executing",
    )
    _add_engine_flag(run_parser)
    _add_obs_flags(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    inline_parser = sub.add_parser(
        "inline", help="profile, inline, and report the improvement"
    )
    inline_parser.add_argument("file")
    inline_parser.add_argument("--stdin", default="")
    inline_parser.add_argument("--arg", action="append")
    inline_parser.add_argument(
        "--profile-file", default=None,
        help="use a saved profile instead of profiling on the spot",
    )
    inline_parser.add_argument("--threshold", type=float, default=10.0)
    inline_parser.add_argument("--growth", type=float, default=1.25)
    inline_parser.add_argument(
        "--passes",
        default=None,
        metavar="SPEC",
        help="optimization pass spec to run before profiling,"
        " e.g. 'fold,jumpopt' (default: none)",
    )
    inline_parser.add_argument("--dump", action="store_true")
    inline_parser.add_argument(
        "--check",
        action="store_true",
        help="re-verify IL well-formedness after every inline phase",
    )
    _add_engine_flag(inline_parser)
    _add_obs_flags(inline_parser)
    inline_parser.set_defaults(func=_cmd_inline)

    profile_parser = sub.add_parser(
        "profile", help="profile a program and emit the profile file"
    )
    profile_parser.add_argument("file")
    profile_parser.add_argument("--stdin", default="")
    profile_parser.add_argument("--arg", action="append")
    profile_parser.add_argument("-o", "--output", default=None)
    profile_parser.set_defaults(func=_cmd_profile)

    graph_parser = sub.add_parser(
        "graph", help="dump the weighted call graph as Graphviz DOT"
    )
    graph_parser.add_argument("file")
    graph_parser.add_argument("--stdin", default="")
    graph_parser.add_argument("--arg", action="append")
    graph_parser.add_argument(
        "--profile", action="store_true", help="weight nodes/arcs by a profiling run"
    )
    graph_parser.add_argument(
        "--synthetic", action="store_true", help="include worst-case $$$/### arcs"
    )
    graph_parser.add_argument(
        "--refine", action="store_true", help="narrow ### targets by pointer analysis"
    )
    graph_parser.add_argument("--min-weight", type=float, default=0.0)
    graph_parser.add_argument(
        "--dot",
        action="store_true",
        help="profile + run the selector, coloring arcs by their"
        " inline-audit reason code (ACCEPTED green, BELOW_THRESHOLD"
        " gray, hazard rejections red)",
    )
    graph_parser.add_argument("--threshold", type=float, default=10.0)
    graph_parser.add_argument("--growth", type=float, default=1.25)
    graph_parser.set_defaults(func=_cmd_graph)

    tables_parser = sub.add_parser("tables", help="regenerate the paper's tables")
    tables_parser.add_argument(
        "what",
        nargs="?",
        default="all",
        choices=["table1", "table2", "table3", "table4", "breakdown", "all"],
    )
    tables_parser.add_argument("--scale", default="small", choices=["small", "full"])
    tables_parser.add_argument(
        "--jobs",
        type=jobs_argument,
        default=1,
        metavar="N",
        help="run benchmarks on N workers (deterministic order; must be"
        " >= 1, 1 = serial)",
    )
    tables_parser.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="worker pool for --jobs: 'thread' starts instantly and"
        " shares the in-memory cache but CPU-bound work serializes on"
        " the GIL; 'process' runs compile/profile/inline work truly in"
        " parallel (output stays byte-identical) at the cost of"
        " per-worker startup and artifact pickling",
    )
    tables_parser.add_argument(
        "--cache-dir",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help="serve repeat compiles/profiles from an on-disk cache"
        " (default DIR: .repro-cache)",
    )
    tables_parser.add_argument(
        "--passes",
        default=None,
        metavar="SPEC",
        help="pre-optimization pass spec (see repro.pipeline)",
    )
    tables_parser.add_argument(
        "--check",
        action="store_true",
        help="re-verify IL well-formedness after every pipeline pass",
    )
    _add_engine_flag(tables_parser)
    _add_obs_flags(tables_parser)
    tables_parser.set_defaults(func=_cmd_tables)

    bench_parser = sub.add_parser(
        "bench",
        help="run the suite under telemetry and write a BENCH_<config>.json",
    )
    bench_parser.add_argument(
        "--config",
        default="suite",
        metavar="NAME",
        help="record name: the default output file is BENCH_<NAME>.json",
    )
    bench_parser.add_argument("--scale", default="small", choices=["small", "full"])
    bench_parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to named benchmarks",
    )
    bench_parser.add_argument(
        "--jobs",
        type=jobs_argument,
        default=1,
        metavar="N",
        help="worker count (>= 1; see tables --help for the"
        " thread-vs-process tradeoff)",
    )
    bench_parser.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="worker pool backend for --jobs",
    )
    bench_parser.add_argument(
        "--cache-dir",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
    )
    bench_parser.add_argument("--passes", default=None, metavar="SPEC")
    bench_parser.add_argument("--threshold", type=float, default=10.0)
    bench_parser.add_argument("--growth", type=float, default=1.25)
    bench_parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="record path (default: BENCH_<config>.json in the cwd)",
    )
    bench_parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="also write the run's JSONL trace (for report --flame)",
    )
    _add_engine_flag(bench_parser)
    bench_parser.set_defaults(func=_cmd_bench)

    check_parser = sub.add_parser(
        "check",
        help="differential-correctness harness (oracle + optional fuzzing)",
    )
    check_parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict the differential oracle to named benchmarks",
    )
    check_parser.add_argument("--scale", default="small", choices=["small", "full"])
    check_parser.add_argument(
        "--fuzz",
        type=int,
        default=0,
        metavar="N",
        help="also fuzz N random programs through the full pipeline",
    )
    check_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed for the fuzz program generator",
    )
    check_parser.add_argument("--threshold", type=float, default=10.0)
    check_parser.add_argument("--growth", type=float, default=1.25)
    check_parser.add_argument(
        "--engines",
        action="store_true",
        help="engine-equivalence mode: run each benchmark under both"
        " the counting interpreter and the fast tier and diff exit"
        " code, stdout, written files, and every counter channel"
        " (--fuzz N replays the fuzz corpus under both engines too)",
    )
    _add_engine_flag(check_parser)
    _add_obs_flags(check_parser)
    check_parser.set_defaults(func=_cmd_check)

    serve_parser = sub.add_parser(
        "serve",
        help="run the compilation service on a local Unix socket",
    )
    serve_parser.add_argument(
        "--socket",
        default=".repro-service.sock",
        metavar="PATH",
        help="Unix socket path (default: .repro-service.sock)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=jobs_argument,
        default=1,
        metavar="N",
        help="worker pool size (>= 1)",
    )
    serve_parser.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="worker pool backend: 'thread' shares one in-memory cache"
        " but serializes CPU work on the GIL; 'process' compiles truly"
        " in parallel, sharing the cache through its on-disk store",
    )
    serve_parser.add_argument(
        "--cache-dir",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help="content-addressed compile/profile cache shared by all"
        " workers (default DIR: .repro-cache)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=16,
        metavar="N",
        help="max requests dispatched to the pool in one wave",
    )
    serve_parser.add_argument(
        "--slow-log",
        default=None,
        metavar="FILE",
        help="append a JSONL record (trace_id, op, duration, cache"
        " outcome) for every request slower than --slow-threshold and"
        " for every failed request",
    )
    serve_parser.add_argument(
        "--slow-threshold",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="slow-request threshold for --slow-log (default: 1.0)",
    )
    serve_parser.add_argument(
        "--prom-out",
        default=None,
        metavar="FILE",
        help="keep a Prometheus text exposition file fresh (rewritten"
        " atomically every --prom-interval seconds; same format as the"
        " 'metrics' admin op)",
    )
    serve_parser.add_argument(
        "--prom-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="refresh period for --prom-out (default: 5.0)",
    )
    _add_engine_flag(serve_parser)
    _add_obs_flags(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    call_parser = sub.add_parser(
        "call", help="send one request to a running service"
    )
    call_parser.add_argument(
        "op",
        choices=[
            "compile",
            "profile",
            "inline",
            "check",
            "ping",
            "health",
            "stats",
            "metrics",
            "shutdown",
        ],
    )
    call_parser.add_argument("file", nargs="?", default=None)
    call_parser.add_argument(
        "--socket",
        default=".repro-service.sock",
        metavar="PATH",
    )
    call_parser.add_argument("--stdin", default="")
    call_parser.add_argument("--arg", action="append")
    call_parser.add_argument("--passes", default=None, metavar="SPEC")
    call_parser.add_argument("--threshold", type=float, default=10.0)
    call_parser.add_argument("--growth", type=float, default=1.25)
    call_parser.add_argument("--dump", action="store_true")
    _add_engine_flag(call_parser)
    call_parser.set_defaults(func=_cmd_call)

    top_parser = sub.add_parser(
        "top",
        help="live dashboard (throughput, latency percentiles, queue"
        " depth, cache rates) over a running service",
    )
    top_parser.add_argument(
        "--socket",
        default=".repro-service.sock",
        metavar="PATH",
    )
    top_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="polling/refresh period (default: 2.0)",
    )
    top_parser.add_argument(
        "--count",
        type=int,
        default=0,
        metavar="N",
        help="render N frames then exit (default 0: until Ctrl-C)",
    )
    top_parser.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    top_parser.set_defaults(func=_cmd_top)

    report_parser = sub.add_parser(
        "report",
        help="compare bench records; exit non-zero on exact regressions",
    )
    report_parser.add_argument("baseline", help="baseline BENCH_*.json")
    report_parser.add_argument(
        "current",
        nargs="?",
        default=None,
        help="current BENCH_*.json (default: the baseline itself)",
    )
    report_parser.add_argument(
        "--epsilon",
        type=float,
        default=0.0,
        help="relative slack for exact metrics (default 0)",
    )
    report_parser.add_argument(
        "--time-tolerance",
        type=float,
        default=0.25,
        help="relative slack for wall-clock metrics (default 0.25)",
    )
    report_parser.add_argument(
        "--fail-on-time",
        action="store_true",
        help="let wall-time regressions fail the comparison too",
    )
    report_parser.add_argument(
        "--format",
        default="table",
        choices=["table", "markdown", "html"],
    )
    report_parser.add_argument(
        "--show-ok",
        action="store_true",
        help="include unchanged metrics in the table output",
    )
    report_parser.add_argument(
        "--flame",
        default=None,
        metavar="TRACE",
        help="render a text flamegraph from a JSONL trace file",
    )
    report_parser.add_argument("-o", "--output", default=None, metavar="FILE")
    report_parser.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
