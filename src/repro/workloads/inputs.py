"""Deterministic input generators shared by the benchmark programs.

All generators take an explicit seed and a scale, so profiles are
reproducible run to run. ``scale`` follows the suite convention:
``"small"`` for unit tests and pytest benchmarks, ``"full"`` for the
paper-style experiment harness.
"""

from __future__ import annotations

import random

_WORDS = (
    "the quick brown fox jumps over lazy dog while compilers expand "
    "inline function calls profile weighted graphs reduce overhead "
    "register window stack buffer cache pipeline branch memory access "
    "structured programming technique subtask coordinate invoke"
).split()

_C_IDENTIFIERS = (
    "count total index buffer length value result flag state table "
    "cursor offset width height node list head tail next prev size"
).split()


def word_text(seed: int, words: int, line_words: int = 8) -> bytes:
    """Plain English-ish text: ``words`` words, wrapped lines."""
    rng = random.Random(seed)
    out = []
    line: list[str] = []
    for _ in range(words):
        line.append(rng.choice(_WORDS))
        if len(line) >= line_words:
            out.append(" ".join(line))
            line = []
    if line:
        out.append(" ".join(line))
    return ("\n".join(out) + "\n").encode()


def c_source_text(seed: int, functions: int) -> bytes:
    """Generated C-like source files (the cccp/wc/compress inputs)."""
    rng = random.Random(seed)
    lines = [
        "/* generated test input */",
        "#define LIMIT 100",
        "#define STEP 3",
        "#define TWICE(x) ((x) + (x))",
    ]
    for index in range(functions):
        name = f"fn_{index}"
        var_a = rng.choice(_C_IDENTIFIERS)
        var_b = rng.choice(_C_IDENTIFIERS)
        lines.append(f"int {name}(int {var_a})")
        lines.append("{")
        lines.append(f"    int {var_b} = {rng.randrange(100)};")
        body = rng.randrange(3)
        if body == 0:
            lines.append(f"    while ({var_a} > 0) {{ {var_b} += STEP; {var_a}--; }}")
        elif body == 1:
            lines.append(f"    if ({var_a} > LIMIT) {var_b} = TWICE({var_b});")
        else:
            lines.append(f"    {var_b} = {var_a} * STEP + LIMIT;")
        lines.append(f"    return {var_b};")
        lines.append("}")
        lines.append("")
    return ("\n".join(lines)).encode()


def binary_blob(seed: int, size: int) -> bytes:
    """Pseudo-random bytes (tar/cmp payloads)."""
    rng = random.Random(seed)
    return bytes(rng.randrange(256) for _ in range(size))


def skewed_text(seed: int, size: int, alphabet: bytes = b"abcdefgh ") -> bytes:
    """Compressible text with a skewed symbol distribution (compress)."""
    rng = random.Random(seed)
    weights = [2 ** (len(alphabet) - i) for i in range(len(alphabet))]
    symbols = rng.choices(alphabet, weights=weights, k=size)
    data = bytearray(symbols)
    for index in range(0, size - 8, 97):  # periodic repeats help LZW
        data[index : index + 4] = b"abab"
    return bytes(data)


def number_list(seed: int, count: int, bound: int = 10000) -> bytes:
    rng = random.Random(seed)
    return ("\n".join(str(rng.randrange(bound)) for _ in range(count)) + "\n").encode()
