"""eqn: equation formatter (troff preprocessor).

Scans documents for ``.EQ``/``.EN`` blocks and typesets the equations
inside with a recursive-descent parser (sup/sub scripts, over
fractions, sqrt, braces), computing box widths/heights. Token and box
helpers run several times per input character — the paper reports an
81% call decrease and the second-largest code increase.
"""

from __future__ import annotations

import random

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import word_text

INPUT_DESCRIPTION = "papers with .EQ options"

SOURCE = """\
#include <sys.h>
#include <string.h>
#include <ctype.h>
#include <bio.h>

#define MAXLINE 512
#define MAXTOK 64

char cur_line[MAXLINE];
int cur_pos = 0;
char token[MAXTOK];
int token_kind = 0;   /* 0 none, 1 word, 2 punct */

int width_total = 0;
int height_max = 0;
int boxes = 0;

int read_line(char *buffer)
{
    int length = 0;
    int c = bgetchar();
    if (c == EOF)
        return EOF;
    while (c != EOF && c != '\\n') {
        if (length < MAXLINE - 1) {
            buffer[length] = c;
            length++;
        }
        c = bgetchar();
    }
    buffer[length] = 0;
    return length;
}

void next_token(void)
{
    int n = 0;
    while (cur_line[cur_pos] == ' ' || cur_line[cur_pos] == '\\t')
        cur_pos++;
    token_kind = 0;
    token[0] = 0;
    if (cur_line[cur_pos] == 0)
        return;
    if (isalnum(cur_line[cur_pos])) {
        while (isalnum(cur_line[cur_pos]) && n < MAXTOK - 1) {
            token[n] = cur_line[cur_pos];
            n++;
            cur_pos++;
        }
        token[n] = 0;
        token_kind = 1;
        return;
    }
    token[0] = cur_line[cur_pos];
    token[1] = 0;
    cur_pos++;
    token_kind = 2;
}

int token_is(char *word)
{
    return token_kind != 0 && strcmp(token, word) == 0;
}

/* Box metrics are packed as width * 256 + height. */
int box_make(int width, int height)
{
    boxes++;
    return width * 256 + height;
}

int box_width(int box)
{
    return box / 256;
}

int box_height(int box)
{
    return box & 255;
}

int parse_expr(void);

int parse_primary(void)
{
    if (token_is("{")) {
        int inner;
        next_token();
        inner = parse_expr();
        if (token_is("}"))
            next_token();
        return inner;
    }
    if (token_is("sqrt")) {
        int inner;
        next_token();
        inner = parse_primary();
        bputchar('s');
        return box_make(box_width(inner) + 2, box_height(inner) + 1);
    }
    if (token_kind != 0) {
        int width = strlen(token);
        bputchar('w');
        next_token();
        return box_make(width, 1);
    }
    return box_make(0, 1);
}

int parse_script(void)
{
    int base = parse_primary();
    for (;;) {
        if (token_is("sup")) {
            int script;
            next_token();
            script = parse_primary();
            bputchar('^');
            base = box_make(box_width(base) + box_width(script),
                            box_height(base) + box_height(script));
        } else if (token_is("sub")) {
            int script;
            next_token();
            script = parse_primary();
            bputchar('_');
            base = box_make(box_width(base) + box_width(script),
                            box_height(base) + box_height(script));
        } else {
            return base;
        }
    }
}

int parse_over(void)
{
    int left = parse_script();
    while (token_is("over")) {
        int right;
        next_token();
        right = parse_script();
        bputchar('/');
        left = box_make(
            (box_width(left) > box_width(right) ? box_width(left)
                                                : box_width(right)) + 1,
            box_height(left) + box_height(right) + 1);
    }
    return left;
}

int parse_expr(void)
{
    int box = parse_over();
    while (token_kind != 0 && !token_is("}")) {
        int next = parse_over();
        box = box_make(box_width(box) + box_width(next) + 1,
                       box_height(box) > box_height(next)
                           ? box_height(box)
                           : box_height(next));
    }
    return box;
}

void typeset_line(char *line)
{
    int box;
    strcpy(cur_line, line);
    cur_pos = 0;
    next_token();
    box = parse_expr();
    width_total += box_width(box);
    if (box_height(box) > height_max)
        height_max = box_height(box);
    bputchar('\\n');
}

int main(void)
{
    char line[MAXLINE];
    int in_equation = 0;
    int equations = 0;
    while (read_line(line) != EOF) {
        if (strncmp(line, ".EQ", 3) == 0) {
            in_equation = 1;
            equations++;
        } else if (strncmp(line, ".EN", 3) == 0) {
            in_equation = 0;
        } else if (in_equation) {
            typeset_line(line);
        }
    }
    bputs("equations ");
    bput_int(equations);
    bputs(" width ");
    bput_int(width_total);
    bputs(" height ");
    bput_int(height_max);
    bputs(" boxes ");
    bput_int(boxes);
    bputchar('\\n');
    bflush();
    return 0;
}
"""

_EQUATION_PARTS = [
    "x sup 2",
    "a over b",
    "sqrt { x + y }",
    "alpha sub i",
    "{ a + b } over { c + d }",
    "x sup 2 sub j",
    "sum over n",
    "sqrt x over 2",
    "p sup { q + r }",
    "u + v over w",
]


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 20 if scale == "full" else 4
    runs = []
    rng = random.Random(11)
    for seed in range(count):
        rng.seed(seed)
        paragraphs = 8 if scale == "full" else 3
        lines: list[str] = []
        for block in range(paragraphs):
            lines.append(word_text(seed * 31 + block, 24).decode().strip())
            lines.append(".EQ")
            for _ in range(rng.randrange(2, 5)):
                parts = rng.sample(_EQUATION_PARTS, rng.randrange(1, 4))
                lines.append(" ".join(parts))
            lines.append(".EN")
        stdin = ("\n".join(lines) + "\n").encode()
        runs.append(RunSpec(stdin=stdin, label=f"eqn-{seed}"))
    return runs
