"""tar: archive creation and extraction.

``tar c archive f1 f2 ...`` packs files with fixed-size headers and a
rolling checksum; ``tar x archive`` unpacks and verifies. Every data
byte flows through small user wrappers that maintain the checksum while
the actual I/O is external — roughly the paper's 43% call-decrease mix.
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import binary_blob, word_text

INPUT_DESCRIPTION = "save/extract files"

SOURCE = """\
#include <sys.h>
#include <string.h>

#define NAMELEN 24
#define BLOCK 64

int checksum = 0;
int out_fd = -1;
int in_fd = -1;

void put_byte(int c)
{
    checksum = (checksum + (c & 255)) & 65535;
    fputc(c, out_fd);
}

int get_byte(void)
{
    int c = fgetc(in_fd);
    if (c != EOF)
        checksum = (checksum + (c & 255)) & 65535;
    return c;
}

void put_number(int value, int digits)
{
    int shift = (digits - 1) * 4;
    while (shift >= 0) {
        int nibble = (value >> shift) & 15;
        if (nibble < 10)
            put_byte('0' + nibble);
        else
            put_byte('a' + nibble - 10);
        shift -= 4;
    }
}

int get_number(int digits)
{
    int value = 0;
    int i;
    for (i = 0; i < digits; i++) {
        int c = get_byte();
        if (c >= '0' && c <= '9')
            value = value * 16 + (c - '0');
        else if (c >= 'a' && c <= 'f')
            value = value * 16 + (c - 'a' + 10);
    }
    return value;
}

void put_name(char *name)
{
    int i = 0;
    while (name[i] && i < NAMELEN) {
        put_byte(name[i]);
        i++;
    }
    while (i < NAMELEN) {
        put_byte(0);
        i++;
    }
}

void get_name(char *name)
{
    int i;
    for (i = 0; i < NAMELEN; i++) {
        int c = get_byte();
        name[i] = c;
    }
    name[NAMELEN] = 0;
}

void write_header(char *name, int size)
{
    checksum = 0;
    put_byte('T');
    put_byte('!');
    put_name(name);
    put_number(size, 8);
}

int archive_file(char *name)
{
    int fd = open(name, O_READ);
    int size;
    int c;
    int written = 0;
    if (fd == EOF) {
        print_str("tar: missing ");
        print_str(name);
        putchar('\\n');
        return 0;
    }
    size = fsize(fd);
    write_header(name, size);
    checksum = 0;
    c = fgetc(fd);
    while (c != EOF) {
        put_byte(c);
        written++;
        c = fgetc(fd);
    }
    while (written % BLOCK) {
        put_byte(0);
        written++;
    }
    put_number(checksum, 4);
    close(fd);
    return size;
}

int extract_file(void)
{
    char name[NAMELEN + 1];
    int size;
    int stored;
    int i;
    int fd;
    int magic = get_byte();
    if (magic == EOF)
        return EOF;
    if (magic != 'T' || get_byte() != '!') {
        print_str("tar: bad magic\\n");
        return EOF;
    }
    get_name(name);
    size = get_number(8);
    checksum = 0;
    fd = open(name, O_WRITE);
    for (i = 0; i < size; i++)
        fputc(get_byte() & 255, fd);
    i = size;
    while (i % BLOCK) {
        get_byte();
        i++;
    }
    stored = checksum;
    close(fd);
    print_str("x ");
    print_str(name);
    putchar(' ');
    print_int(size);
    if (get_number(4) != stored)
        print_str(" CHECKSUM MISMATCH");
    putchar('\\n');
    return size;
}

int main(int argc, char **argv)
{
    int i;
    int total = 0;
    if (argc < 3) {
        print_str("usage: tar c|x archive [files]\\n");
        return 0;
    }
    if (strcmp(argv[1], "c") == 0) {
        out_fd = open(argv[2], O_WRITE);
        for (i = 3; i < argc; i++)
            total += archive_file(argv[i]);
        close(out_fd);
        print_str("archived ");
        print_int(total);
        print_str(" bytes\\n");
    } else {
        in_fd = open(argv[2], O_READ);
        if (in_fd == EOF) {
            print_str("tar: cannot open archive\\n");
            return 0;
        }
        while (extract_file() != EOF)
            total++;
        close(in_fd);
        print_str("extracted ");
        print_int(total);
        print_str(" files\\n");
    }
    return 0;
}
"""


def _build_archive(seed: int, sizes: list[int]) -> bytes:
    """Create an archive in the program's own format, for extract runs."""

    def number(value: int, digits: int) -> bytes:
        return format(value & (16**digits - 1), f"0{digits}x").encode()

    out = bytearray()
    for index, size in enumerate(sizes):
        name = f"file{index}.dat".encode()
        data = binary_blob(seed * 100 + index, size)
        out += b"T!"
        out += name.ljust(24, b"\x00")[:24]
        out += number(size, 8)
        checksum = sum(data) & 65535
        padded = data + b"\x00" * (-len(data) % 64)
        checksum = sum(padded) & 65535
        out += padded
        out += number(checksum, 4)
    return bytes(out)


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 14 if scale == "full" else 4
    base = 900 if scale == "full" else 250
    runs = []
    for seed in range(count):
        if seed % 2 == 0:  # create
            files = {
                "a.txt": word_text(seed, base // 6),
                "b.bin": binary_blob(seed, base),
                "c.txt": word_text(seed + 50, base // 8),
            }
            argv = ["c", "out.tar", "a.txt", "b.bin", "c.txt"]
        else:  # extract
            archive = _build_archive(seed, [base, base // 2, base // 3])
            files = {"in.tar": archive}
            argv = ["x", "in.tar"]
        runs.append(RunSpec(files=files, argv=argv, label=f"tar-{seed}"))
    return runs
