"""espresso: two-level logic minimization.

A compact EXPAND/IRREDUNDANT loop over cubes encoded two bits per
variable, driven by minterm on/off-sets in a PLA-like input format.
Cube/minterm helpers run in tight nests and the final cover is sorted
through a comparison *function pointer* (a ``###`` arc in the call
graph). The paper reports a 70% call decrease for espresso.
"""

from __future__ import annotations

import random

from repro.profiler.profile import RunSpec

INPUT_DESCRIPTION = "original espresso benchmarks"

SOURCE = """\
#include <sys.h>
#include <string.h>
#include <stdlib.h>
#include <ctype.h>
#include <bio.h>

#define MAXVARS 10
#define MAXCUBES 200
#define MAXTERMS 200
#define MAXLINE 64

int nvars = 0;
int cubes[MAXCUBES];
int ncubes = 0;
int on_terms[MAXTERMS];
int non = 0;
int off_terms[MAXTERMS];
int noff = 0;

int cube_part(int cube, int var)
{
    return (cube >> (2 * var)) & 3;
}

int minterm_cube(int minterm)
{
    int cube = 0;
    int var;
    for (var = 0; var < nvars; var++) {
        int bit = (minterm >> var) & 1;
        cube = cube | ((bit ? 2 : 1) << (2 * var));
    }
    return cube;
}

int covers_minterm(int cube, int minterm)
{
    int var;
    for (var = 0; var < nvars; var++) {
        int need = ((minterm >> var) & 1) ? 2 : 1;
        if ((cube_part(cube, var) & need) == 0)
            return 0;
    }
    return 1;
}

int hits_offset(int cube)
{
    int i;
    for (i = 0; i < noff; i++) {
        if (covers_minterm(cube, off_terms[i]))
            return 1;
    }
    return 0;
}

int literal_count(int cube)
{
    int count = 0;
    int var;
    for (var = 0; var < nvars; var++) {
        if (cube_part(cube, var) != 3)
            count++;
    }
    return count;
}

int expand_cube(int cube)
{
    int var;
    for (var = 0; var < nvars; var++) {
        int raised;
        if (cube_part(cube, var) == 3)
            continue;
        raised = cube | (3 << (2 * var));
        if (!hits_offset(raised))
            cube = raised;
    }
    return cube;
}

int covered_elsewhere(int index, int minterm)
{
    int j;
    for (j = 0; j < ncubes; j++) {
        if (j != index && cubes[j] != 0 && covers_minterm(cubes[j], minterm))
            return 1;
    }
    return 0;
}

int is_redundant(int index)
{
    int i;
    for (i = 0; i < non; i++) {
        if (covers_minterm(cubes[index], on_terms[i])
            && !covered_elsewhere(index, on_terms[i]))
            return 0;
    }
    return 1;
}

void irredundant(void)
{
    int i;
    for (i = 0; i < ncubes; i++) {
        if (cubes[i] != 0 && is_redundant(i))
            cubes[i] = 0;
    }
}

int compare_cubes(char *a, char *b)
{
    int ca = *(int *)a;
    int cb = *(int *)b;
    if (ca == 0)
        return cb == 0 ? 0 : 1;
    if (cb == 0)
        return -1;
    return literal_count(ca) - literal_count(cb);
}

void print_cube(int cube)
{
    int var;
    for (var = nvars - 1; var >= 0; var--) {
        int part = cube_part(cube, var);
        if (part == 1)
            bputchar('0');
        else if (part == 2)
            bputchar('1');
        else
            bputchar('-');
    }
    bputchar('\\n');
}

int parse_minterm(char *line)
{
    int value = 0;
    int i;
    for (i = 0; i < nvars; i++) {
        value = value * 2;
        if (line[i] == '1')
            value = value + 1;
    }
    return value;
}

int read_line(int fd, char *buffer)
{
    int length = 0;
    int c = bfgetc(fd);
    if (c == EOF)
        return EOF;
    while (c != EOF && c != '\\n') {
        if (length < MAXLINE - 1) {
            buffer[length] = c;
            length++;
        }
        c = bfgetc(fd);
    }
    buffer[length] = 0;
    return length;
}

int main(int argc, char **argv)
{
    char line[MAXLINE];
    int fd;
    int i;
    int live = 0;
    int literals = 0;
    if (argc < 2) {
        print_str("usage: espresso pla-file\\n");
        return 0;
    }
    fd = open(argv[1], O_READ);
    if (fd == EOF) {
        print_str("espresso: cannot open input\\n");
        return 0;
    }
    while (read_line(fd, line) != EOF) {
        if (line[0] == '.') {
            if (line[1] == 'i')
                nvars = atoi(line + 2);
            continue;
        }
        if (line[0] != '0' && line[0] != '1')
            continue;
        {
            int minterm = parse_minterm(line);
            char kind = line[nvars + 1];
            if (kind == '1' && non < MAXTERMS) {
                on_terms[non] = minterm;
                non++;
            } else if (noff < MAXTERMS) {
                off_terms[noff] = minterm;
                noff++;
            }
        }
    }
    close(fd);

    for (i = 0; i < non && ncubes < MAXCUBES; i++) {
        cubes[ncubes] = minterm_cube(on_terms[i]);
        ncubes++;
    }
    for (i = 0; i < ncubes; i++)
        cubes[i] = expand_cube(cubes[i]);
    irredundant();
    sort((char *)cubes, ncubes, 4, compare_cubes);
    for (i = 0; i < ncubes; i++) {
        if (cubes[i] != 0) {
            live++;
            literals += literal_count(cubes[i]);
            print_cube(cubes[i]);
        }
    }
    bputs("cubes ");
    bput_int(live);
    bputs(" literals ");
    bput_int(literals);
    bputchar('\\n');
    bflush();
    return 0;
}
"""


def _generate_pla(seed: int, nvars: int, terms: int) -> bytes:
    """Sample a random boolean function's on/off minterms."""
    rng = random.Random(seed)
    # Random DNF over the variables defines the function.
    clauses = []
    for _ in range(rng.randrange(2, 5)):
        mask = rng.randrange(1, 1 << nvars)
        value = rng.randrange(1 << nvars) & mask
        clauses.append((mask, value))

    def evaluate(minterm: int) -> bool:
        return any((minterm & mask) == value for mask, value in clauses)

    space = 1 << nvars
    chosen = rng.sample(range(space), min(terms, space))
    lines = [f".i{nvars}"]
    for minterm in chosen:
        bits = format(minterm, f"0{nvars}b")
        lines.append(f"{bits} {1 if evaluate(minterm) else 0}")
    lines.append(".e")
    return ("\n".join(lines) + "\n").encode()


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 20 if scale == "full" else 4
    runs = []
    for seed in range(count):
        nvars = 6 + seed % 3 if scale == "full" else 4 + seed % 2
        terms = 90 if scale == "full" else 24
        pla = _generate_pla(seed, nvars, terms)
        runs.append(
            RunSpec(files={"f.pla": pla}, argv=["f.pla"], label=f"espresso-{seed}")
        )
    return runs
