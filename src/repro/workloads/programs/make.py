"""make: dependency-driven build tool.

Parses a makefile (rules, dependencies, commands) and a pseudo
filesystem table of modification times, then recursively brings targets
up to date, echoing the commands it "runs". The recursive ``build``
walk and the many small lookup helpers give the paper's make profile:
a 59% call decrease at the largest code increase of the suite (34%).
"""

from __future__ import annotations

import random

from repro.profiler.profile import RunSpec

INPUT_DESCRIPTION = "makefiles for cccp, compress, etc."

SOURCE = """\
#include <sys.h>
#include <string.h>
#include <stdlib.h>
#include <ctype.h>
#include <bio.h>

#define MAXRULES 48
#define MAXDEPS 6
#define MAXCMDS 3
#define NAMELEN 20
#define MAXFILES 96
#define MAXLINE 200

struct rule {
    char target[NAMELEN];
    char deps[MAXDEPS][NAMELEN];
    int ndeps;
    char cmds[MAXCMDS][MAXLINE];
    int ncmds;
    int visiting;
};

struct rule rules[MAXRULES];
int nrules = 0;

char file_names[MAXFILES][NAMELEN];
int file_times[MAXFILES];
int nfiles = 0;

int clock_now = 1000;
int commands_run = 0;

int read_line(int fd, char *buffer)
{
    int length = 0;
    int c = bfgetc(fd);
    if (c == EOF)
        return EOF;
    while (c != EOF && c != '\\n') {
        if (length < MAXLINE - 1) {
            buffer[length] = c;
            length++;
        }
        c = bfgetc(fd);
    }
    buffer[length] = 0;
    return length;
}

int skip_space(char *line, int i)
{
    while (line[i] == ' ' || line[i] == '\\t')
        i++;
    return i;
}

int read_word(char *line, int i, char *word)
{
    int n = 0;
    i = skip_space(line, i);
    while (line[i] && line[i] != ' ' && line[i] != '\\t' && line[i] != ':'
           && n < NAMELEN - 1) {
        word[n] = line[i];
        n++;
        i++;
    }
    word[n] = 0;
    return i;
}

int find_rule(char *name)
{
    int i;
    for (i = 0; i < nrules; i++) {
        if (strcmp(rules[i].target, name) == 0)
            return i;
    }
    return -1;
}

int find_file(char *name)
{
    int i;
    for (i = 0; i < nfiles; i++) {
        if (strcmp(file_names[i], name) == 0)
            return i;
    }
    return -1;
}

int lookup_time(char *name)
{
    int slot = find_file(name);
    if (slot < 0)
        return -1;
    return file_times[slot];
}

void set_time(char *name, int value)
{
    int slot = find_file(name);
    if (slot < 0) {
        if (nfiles >= MAXFILES)
            return;
        strcpy(file_names[nfiles], name);
        slot = nfiles;
        nfiles++;
    }
    file_times[slot] = value;
}

void parse_fstab(int fd)
{
    char line[MAXLINE];
    char name[NAMELEN];
    while (read_line(fd, line) != EOF) {
        int i = read_word(line, 0, name);
        if (name[0] == 0)
            continue;
        set_time(name, atoi(line + i));
    }
}

void parse_makefile(int fd)
{
    char line[MAXLINE];
    int current = -1;
    while (read_line(fd, line) != EOF) {
        if (line[0] == '\\t' || line[0] == '>') {
            if (current >= 0 && rules[current].ncmds < MAXCMDS) {
                int n = rules[current].ncmds;
                strcpy(rules[current].cmds[n], line + 1);
                rules[current].ncmds = n + 1;
            }
            continue;
        }
        if (line[0] == '#' || line[0] == 0)
            continue;
        if (strchr(line, ':') != NULL && nrules < MAXRULES) {
            int i;
            current = nrules;
            nrules++;
            rules[current].ndeps = 0;
            rules[current].ncmds = 0;
            rules[current].visiting = 0;
            i = read_word(line, 0, rules[current].target);
            i = skip_space(line, i);
            if (line[i] == ':')
                i++;
            while (line[i]) {
                char word[NAMELEN];
                i = read_word(line, i, word);
                if (word[0] == 0)
                    break;
                if (rules[current].ndeps < MAXDEPS) {
                    strcpy(rules[current].deps[rules[current].ndeps], word);
                    rules[current].ndeps++;
                }
            }
        }
    }
}

void run_commands(int index)
{
    int i;
    for (i = 0; i < rules[index].ncmds; i++) {
        print_str("        ");
        print_str(rules[index].cmds[i]);
        putchar('\\n');
        commands_run++;
    }
}

int build(char *name, int depth)
{
    int index = find_rule(name);
    int newest = 0;
    int own;
    int i;
    if (index < 0) {
        own = lookup_time(name);
        if (own < 0) {
            print_str("make: no rule for ");
            print_str(name);
            putchar('\\n');
            return 0;
        }
        return own;
    }
    if (rules[index].visiting) {
        print_str("make: circular dependency at ");
        print_str(name);
        putchar('\\n');
        return clock_now;
    }
    rules[index].visiting = 1;
    for (i = 0; i < rules[index].ndeps; i++) {
        int t = build(rules[index].deps[i], depth + 1);
        if (t > newest)
            newest = t;
    }
    rules[index].visiting = 0;
    own = lookup_time(name);
    if (own < 0 || own < newest) {
        print_str("make: building ");
        print_str(name);
        putchar('\\n');
        run_commands(index);
        clock_now++;
        set_time(name, clock_now);
        own = clock_now;
    }
    return own;
}

int main(int argc, char **argv)
{
    int make_fd;
    int fs_fd;
    int i;
    if (argc < 3) {
        print_str("usage: make makefile fstab [targets]\\n");
        return 0;
    }
    make_fd = open(argv[1], O_READ);
    fs_fd = open(argv[2], O_READ);
    if (make_fd == EOF || fs_fd == EOF) {
        print_str("make: cannot open input\\n");
        return 0;
    }
    parse_makefile(make_fd);
    parse_fstab(fs_fd);
    close(make_fd);
    close(fs_fd);
    if (argc == 3) {
        if (nrules > 0)
            build(rules[0].target, 0);
    } else {
        for (i = 3; i < argc; i++)
            build(argv[i], 0);
    }
    print_str("commands run: ");
    print_int(commands_run);
    putchar('\\n');
    return 0;
}
"""


def _generate_project(seed: int, modules: int) -> tuple[bytes, bytes]:
    """A makefile + filesystem table resembling a small C project."""
    rng = random.Random(seed)
    lines = []
    fs = []
    objects = []
    time = 100
    for index in range(modules):
        src = f"m{index}.c"
        header = f"m{index % 3}.h"
        obj = f"m{index}.o"
        objects.append(obj)
        lines.append(f"{obj}: {src} {header}")
        lines.append(f">cc -c {src}")
        fs.append(f"{src} {time + rng.randrange(50)}")
        if index % 2 == 0:  # half the objects are stale or missing
            fs.append(f"{obj} {time - 40}")
    for index in range(3):
        fs.append(f"m{index}.h {90 + rng.randrange(30)}")
    lines.insert(0, "prog: " + " ".join(objects))
    lines.insert(1, ">ld -o prog " + " ".join(objects))
    lines.insert(2, "#generated makefile")
    return ("\n".join(lines) + "\n").encode(), ("\n".join(fs) + "\n").encode()


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 20 if scale == "full" else 4
    runs = []
    for seed in range(count):
        modules = (6 + seed % 10) if scale == "full" else (3 + seed % 3)
        makefile, fstab = _generate_project(seed, modules)
        argv = ["Makefile", "fs.txt"]
        if seed % 4 == 1:
            argv.append("m1.o")
        runs.append(
            RunSpec(
                files={"Makefile": makefile, "fs.txt": fstab},
                argv=argv,
                label=f"make-{seed}",
            )
        )
    return runs
