"""grep: regular-expression line matcher.

Supports ``. * ^ $`` and ``[...]`` classes (the options the paper says
its grep inputs exercised). The matcher is a cluster of tiny mutually
recursive functions called several times per character, so nearly all
dynamic calls are user calls — grep shows the paper's highest call
decrease (99%).
"""

from __future__ import annotations

import random

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import word_text

INPUT_DESCRIPTION = 'exercised .*^$ options'

SOURCE = """\
#include <sys.h>
#include <string.h>
#include <bio.h>

#define MAXLINE 512

int match_here(char *pat, char *text);

inline int pattern_width(char *pat)
{
    int i;
    if (pat[0] != '[')
        return 1;
    i = 1;
    if (pat[i] == '^')
        i++;
    while (pat[i] && pat[i] != ']')
        i++;
    return i + 1;
}

inline int match_class(char *pat, int c)
{
    int i = 1;
    int negate = 0;
    int hit = 0;
    if (pat[i] == '^') {
        negate = 1;
        i++;
    }
    while (pat[i] && pat[i] != ']') {
        if (pat[i + 1] == '-' && pat[i + 2] && pat[i + 2] != ']') {
            if (c >= pat[i] && c <= pat[i + 2])
                hit = 1;
            i += 3;
        } else {
            if (pat[i] == c)
                hit = 1;
            i++;
        }
    }
    if (negate)
        return c != 0 && !hit;
    return hit;
}

inline int match_one(char *pat, int c)
{
    if (pat[0] == '[')
        return match_class(pat, c);
    if (pat[0] == '.')
        return c != 0;
    return pat[0] == c;
}

int match_star(char *pat, int width, char *text)
{
    int i = 0;
    for (;;) {
        if (match_here(pat + width + 1, text + i))
            return 1;
        if (text[i] == 0 || !match_one(pat, text[i]))
            return 0;
        i++;
    }
}

int match_here(char *pat, char *text)
{
    int width;
    if (pat[0] == 0)
        return 1;
    if (pat[0] == '$' && pat[1] == 0)
        return text[0] == 0;
    width = pattern_width(pat);
    if (pat[width] == '*')
        return match_star(pat, width, text);
    if (text[0] != 0 && match_one(pat, text[0]))
        return match_here(pat + width, text + 1);
    return 0;
}

int match(char *pat, char *text)
{
    int i = 0;
    if (pat[0] == '^')
        return match_here(pat + 1, text);
    do {
        if (match_here(pat, text + i))
            return 1;
    } while (text[i++] != 0);
    return 0;
}

int read_line(char *buffer, int limit)
{
    int length = 0;
    int c = bgetchar();
    if (c == EOF)
        return EOF;
    while (c != EOF && c != '\\n') {
        if (length < limit - 1) {
            buffer[length] = c;
            length++;
        }
        c = bgetchar();
    }
    buffer[length] = 0;
    return length;
}

void print_match(int number, char *line, int show_numbers)
{
    if (show_numbers) {
        bput_int(number);
        bputchar(':');
    }
    bputs(line);
    bputchar('\\n');
}

int main(int argc, char **argv)
{
    char line[MAXLINE];
    char *pattern;
    int show_numbers = 0;
    int count_only = 0;
    int invert = 0;
    int arg = 1;
    int line_number = 0;
    int matched = 0;
    while (arg < argc && argv[arg][0] == '-') {
        char *opt = argv[arg];
        int i = 1;
        while (opt[i]) {
            if (opt[i] == 'n')
                show_numbers = 1;
            else if (opt[i] == 'c')
                count_only = 1;
            else if (opt[i] == 'v')
                invert = 1;
            i++;
        }
        arg++;
    }
    if (arg >= argc) {
        print_str("usage: grep [-ncv] pattern\\n");
        return 0;
    }
    pattern = argv[arg];
    while (read_line(line, MAXLINE) != EOF) {
        int hit;
        line_number++;
        hit = match(pattern, line);
        if (invert)
            hit = !hit;
        if (hit) {
            matched++;
            if (!count_only)
                print_match(line_number, line, show_numbers);
        }
    }
    if (count_only) {
        bput_int(matched);
        bputchar('\\n');
    }
    bflush();
    return 0;
}
"""

_PATTERNS = [
    ["the"],
    ["^the"],
    ["s$"],
    ["-n", "c.*l"],
    ["-c", "[aeiou][aeiou]"],
    ["-v", "e"],
    ["-nc", "in.*ne"],
    ["[A-Z]"],
    ["fun[ck]tion"],
    ["^$"],
]


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 20 if scale == "full" else 4
    words = 700 if scale == "full" else 150
    runs = []
    rng = random.Random(7)
    for seed in range(count):
        argv = _PATTERNS[seed % len(_PATTERNS)]
        text = word_text(seed, words + rng.randrange(words // 2))
        runs.append(RunSpec(stdin=text, argv=list(argv), label=f"grep-{seed}"))
    return runs
