"""compress: LZW compression with 12-bit codes.

The hot loop calls small user helpers (input wrapper, hash probe, code
emitter) far more often than externals, so inline expansion removes the
bulk of its dynamic calls — the paper reports 91% for compress.
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import c_source_text, skewed_text, word_text

INPUT_DESCRIPTION = "same as cccp"

SOURCE = """\
#include <sys.h>
#include <bio.h>

#define HASH_SIZE 2048
#define MAX_CODE 1024
#define FIRST_FREE 257

int hash_code[HASH_SIZE];
int hash_prefix[HASH_SIZE];
int hash_append[HASH_SIZE];
int next_code = FIRST_FREE;

int bit_buffer = 0;
int bit_count = 0;
int bytes_in = 0;
int bytes_out = 0;

int next_char(void)
{
    int c = bgetchar();
    if (c != EOF)
        bytes_in++;
    return c;
}

void flush_bits(void)
{
    while (bit_count >= 8) {
        bputchar(bit_buffer & 255);
        bytes_out++;
        bit_buffer = bit_buffer >> 8;
        bit_count -= 8;
    }
}

void put_code(int code)
{
    bit_buffer = bit_buffer | (code << bit_count);
    bit_count += 10;
    flush_bits();
}

int hash_key(int prefix, int append)
{
    return ((append << 5) ^ prefix) & (HASH_SIZE - 1);
}

int find_slot(int prefix, int append)
{
    int slot = hash_key(prefix, append);
    while (hash_code[slot] != -1) {
        if (hash_prefix[slot] == prefix && hash_append[slot] == append)
            return slot;
        slot = (slot + 1) & (HASH_SIZE - 1);
    }
    return slot;
}

void enter_string(int slot, int prefix, int append)
{
    if (next_code < MAX_CODE) {
        hash_code[slot] = next_code;
        hash_prefix[slot] = prefix;
        hash_append[slot] = append;
        next_code++;
    }
}

void reset_table(void)
{
    int i;
    for (i = 0; i < HASH_SIZE; i++)
        hash_code[i] = -1;
    next_code = FIRST_FREE;
}

void report(void)
{
    bputs("in ");
    bput_int(bytes_in);
    bputs(" out ");
    bput_int(bytes_out);
    bputs(" codes ");
    bput_int(next_code);
    bputchar('\\n');
    bflush();
}

int main(void)
{
    int prefix;
    int c;
    reset_table();
    prefix = next_char();
    if (prefix == EOF) {
        report();
        return 0;
    }
    c = next_char();
    while (c != EOF) {
        int slot = find_slot(prefix, c);
        if (hash_code[slot] != -1) {
            prefix = hash_code[slot];
        } else {
            put_code(prefix);
            enter_string(slot, prefix, c);
            prefix = c;
        }
        c = next_char();
    }
    put_code(prefix);
    bit_count += 7;
    flush_bits();
    report();
    return 0;
}
"""


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 20 if scale == "full" else 4
    size = 2200 if scale == "full" else 500
    runs = []
    for seed in range(count):
        kind = seed % 3
        if kind == 0:
            stdin = skewed_text(seed, size)
        elif kind == 1:
            stdin = c_source_text(seed, size // 60 + 2)
        else:
            stdin = word_text(seed, size // 6)
        runs.append(RunSpec(stdin=stdin, label=f"compress-{seed}"))
    return runs
