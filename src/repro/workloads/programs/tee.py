"""tee: copy stdin to stdout and to each named output file.

Every hot call is an external (getchar/putchar/fputc), so inlining
eliminates ~0% of dynamic calls at 0% code growth — the paper's tee row.
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import c_source_text, word_text

INPUT_DESCRIPTION = "same as cccp"

SOURCE = """\
#include <sys.h>

#define MAXOUT 8

int open_outputs(char **argv, int argc, int *fds)
{
    int count = 0;
    int i;
    for (i = 1; i < argc && count < MAXOUT; i++) {
        int fd = open(argv[i], O_WRITE);
        if (fd != EOF) {
            fds[count] = fd;
            count++;
        }
    }
    return count;
}

int main(int argc, char **argv)
{
    int fds[MAXOUT];
    int count = open_outputs(argv, argc, fds);
    int copied = 0;
    int c = getchar();
    while (c != EOF) {
        int i;
        putchar(c);
        for (i = 0; i < count; i++)
            fputc(c, fds[i]);
        copied++;
        c = getchar();
    }
    {
        int i;
        for (i = 0; i < count; i++)
            close(fds[i]);
    }
    return 0;
}
"""


def make_runs(scale: str = "small") -> list[RunSpec]:
    if scale == "full":
        seeds = range(20)
        base_words = 120
    else:
        seeds = range(4)
        base_words = 50
    runs = []
    for seed in seeds:
        if seed % 2:
            stdin = c_source_text(seed, max(base_words // 20, 2))
        else:
            stdin = word_text(seed, base_words + 30 * seed)
        argv = ["out-a.txt"] if seed % 3 else ["out-a.txt", "out-b.txt"]
        runs.append(RunSpec(stdin=stdin, argv=argv, label=f"tee-{seed}"))
    return runs
