"""lex: a lexical-analyzer generator and driver.

Reads a token specification (keyword table plus character-class rules),
builds a keyword trie, then scans source files with a table-driven
tokenizer, reporting per-category token counts. Per-character helper
calls (trie stepping, character classification) dominate — the paper
reports a 77% call decrease for lex on C/Lisp/awk lexer generation.
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import c_source_text, word_text

INPUT_DESCRIPTION = "lexers for C, Lisp, awk, and pic"

SOURCE = """\
#include <sys.h>
#include <string.h>
#include <ctype.h>
#include <bio.h>

#define MAXNODES 512
#define MAXTOK 64

/* Keyword trie: nodes store a child pointer per letter. */
int trie_child[MAXNODES][28];
int trie_final[MAXNODES];
int trie_nodes = 1;

int letter_index(int c)
{
    if (c >= 'a' && c <= 'z')
        return c - 'a';
    if (c == '_')
        return 26;
    return 27;
}

int trie_step(int node, int c)
{
    if (node < 0)
        return -1;
    return trie_child[node][letter_index(c)];
}

void trie_insert(char *word)
{
    int node = 0;
    int i = 0;
    while (word[i]) {
        int slot = letter_index(word[i]);
        if (trie_child[node][slot] == 0) {
            if (trie_nodes >= MAXNODES)
                return;
            trie_child[node][slot] = trie_nodes;
            trie_nodes++;
        }
        node = trie_child[node][slot];
        i++;
    }
    trie_final[node] = 1;
}

int count_keyword = 0;
int count_ident = 0;
int count_number = 0;
int count_string = 0;
int count_punct = 0;
int count_comment = 0;

int peeked = -2;

int next_char(int fd)
{
    int c;
    if (peeked != -2) {
        c = peeked;
        peeked = -2;
        return c;
    }
    return bfgetc(fd);
}

void push_back(int c)
{
    peeked = c;
}

int scan_word(int fd, int first)
{
    int node = trie_step(0, first);
    int c = next_char(fd);
    while (c != EOF && (isalnum(c) || c == '_')) {
        node = trie_step(node, c);
        c = next_char(fd);
    }
    push_back(c);
    if (node > 0 && trie_final[node])
        return 1;
    return 0;
}

void scan_number(int fd)
{
    int c = next_char(fd);
    while (c != EOF && (isdigit(c) || c == 'x' || c == '.'))
        c = next_char(fd);
    push_back(c);
}

void scan_string(int fd, int quote)
{
    int c = next_char(fd);
    while (c != EOF && c != quote) {
        if (c == '\\\\')
            next_char(fd);
        c = next_char(fd);
    }
}

int scan_comment(int fd, int c)
{
    int d;
    if (c != '/')
        return 0;
    d = next_char(fd);
    if (d == '/') {
        d = next_char(fd);
        while (d != EOF && d != '\\n')
            d = next_char(fd);
        return 1;
    }
    if (d == '*') {
        int prev = 0;
        d = next_char(fd);
        while (d != EOF && !(prev == '*' && d == '/')) {
            prev = d;
            d = next_char(fd);
        }
        return 1;
    }
    push_back(d);
    return 0;
}

void tokenize(int fd)
{
    int c = next_char(fd);
    while (c != EOF) {
        if (isalpha(c) || c == '_') {
            if (scan_word(fd, c))
                count_keyword++;
            else
                count_ident++;
        } else if (isdigit(c)) {
            scan_number(fd);
            count_number++;
        } else if (c == '"' || c == '\\'') {
            scan_string(fd, c);
            count_string++;
        } else if (scan_comment(fd, c)) {
            count_comment++;
        } else if (!isspace(c)) {
            count_punct++;
        }
        c = next_char(fd);
    }
}

int read_spec_word(int fd, char *word)
{
    int n = 0;
    int c = fgetc(fd);
    while (c != EOF && isspace(c))
        c = fgetc(fd);
    if (c == EOF)
        return EOF;
    while (c != EOF && !isspace(c) && n < MAXTOK - 1) {
        word[n] = c;
        n++;
        c = fgetc(fd);
    }
    word[n] = 0;
    return n;
}

void report(char *label, int value)
{
    print_str(label);
    putchar(' ');
    print_int(value);
    putchar('\\n');
}

int main(int argc, char **argv)
{
    char word[MAXTOK];
    int spec_fd;
    int source_fd;
    int keywords = 0;
    if (argc < 3) {
        print_str("usage: lex spec source\\n");
        return 0;
    }
    spec_fd = open(argv[1], O_READ);
    source_fd = open(argv[2], O_READ);
    if (spec_fd == EOF || source_fd == EOF) {
        print_str("lex: cannot open input\\n");
        return 0;
    }
    while (read_spec_word(spec_fd, word) != EOF) {
        trie_insert(word);
        keywords++;
    }
    close(spec_fd);
    tokenize(source_fd);
    close(source_fd);
    report("keywords", count_keyword);
    report("idents", count_ident);
    report("numbers", count_number);
    report("strings", count_string);
    report("puncts", count_punct);
    report("comments", count_comment);
    report("trie", trie_nodes);
    return 0;
}
"""

_SPECS = {
    "c.spec": "int char void if else while for return break continue "
    "switch case default do struct sizeof static extern",
    "lisp.spec": "defun lambda let cond car cdr cons quote setq progn "
    "if and or not atom eq",
    "awk.spec": "BEGIN END function print printf getline next exit "
    "if else while for in delete",
    "pic.spec": "box circle ellipse line arrow move up down left right "
    "at with from to",
}


def make_runs(scale: str = "small") -> list[RunSpec]:
    specs = list(_SPECS)
    count = 4  # the paper profiles lex over 4 inputs
    size = 60 if scale == "full" else 15
    runs = []
    for seed in range(count):
        spec_name = specs[seed % len(specs)]
        if seed % 2 == 0:
            source = c_source_text(seed, size)
        else:
            source = word_text(seed, size * 12)
        runs.append(
            RunSpec(
                files={
                    spec_name: _SPECS[spec_name].encode(),
                    "input.src": source,
                },
                argv=[spec_name, "input.src"],
                label=f"lex-{seed}",
            )
        )
    return runs
