"""wc: line/word/character count.

As in the paper, wc's hot loop makes almost no user-function calls —
nearly every dynamic call is the external ``getchar`` — so inline
expansion rightly eliminates ~0% of its calls (Tables 3 and 4).
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import c_source_text, word_text

INPUT_DESCRIPTION = "same as cccp"

SOURCE = """\
#include <sys.h>

int total_lines = 0;
int total_words = 0;
int total_chars = 0;

void report(int lines, int words, int chars)
{
    print_int(lines);
    putchar(' ');
    print_int(words);
    putchar(' ');
    print_int(chars);
    putchar('\\n');
}

int count_stream(void)
{
    int c;
    int in_word = 0;
    int lines = 0;
    int words = 0;
    int chars = 0;
    c = getchar();
    while (c != EOF) {
        chars++;
        if (c == '\\n')
            lines++;
        if (c == ' ' || c == '\\n' || c == '\\t') {
            in_word = 0;
        } else if (!in_word) {
            in_word = 1;
            words++;
        }
        c = getchar();
    }
    total_lines = lines;
    total_words = words;
    total_chars = chars;
    return chars;
}

int main(void)
{
    count_stream();
    report(total_lines, total_words, total_chars);
    return 0;
}
"""


def make_runs(scale: str = "small") -> list[RunSpec]:
    if scale == "full":
        sizes = [(seed, 260 + 70 * seed) for seed in range(20)]
    else:
        sizes = [(seed, 80 + 40 * seed) for seed in range(4)]
    runs = []
    for seed, words in sizes:
        if seed % 2:
            stdin = c_source_text(seed, max(words // 24, 2))
        else:
            stdin = word_text(seed, words)
        runs.append(RunSpec(stdin=stdin, label=f"wc-{seed}"))
    return runs
