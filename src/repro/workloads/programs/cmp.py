"""cmp: byte-by-byte file comparison.

Each loop iteration makes two user-helper calls and two external fgetc
calls, so roughly half the dynamic calls are inlinable — matching the
paper's ~49% call decrease for cmp.
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import binary_blob, word_text

INPUT_DESCRIPTION = "similar/disimilar text files"

SOURCE = """\
#include <sys.h>
#include <string.h>

int file_a;
int file_b;

int next_a(void)
{
    return fgetc(file_a);
}

int next_b(void)
{
    return fgetc(file_b);
}

void report_position(int position, int line)
{
    print_str("differ: byte ");
    print_int(position);
    print_str(", line ");
    print_int(line);
    putchar('\\n');
}

void report_eof(char *name)
{
    print_str("EOF on ");
    print_str(name);
    putchar('\\n');
}

int compare(int verbose)
{
    int position = 1;
    int line = 1;
    int differences = 0;
    int ca = next_a();
    int cb = next_b();
    while (ca != EOF && cb != EOF) {
        if (ca != cb) {
            differences++;
            if (verbose) {
                print_int(position);
                putchar(' ');
                print_int(ca & 255);
                putchar(' ');
                print_int(cb & 255);
                putchar('\\n');
            } else {
                report_position(position, line);
                return differences;
            }
        }
        if (ca == '\\n')
            line++;
        position++;
        ca = next_a();
        cb = next_b();
    }
    if (ca != cb) {
        if (ca == EOF)
            report_eof("first file");
        else
            report_eof("second file");
        differences++;
    }
    return differences;
}

int main(int argc, char **argv)
{
    int verbose = 0;
    int arg = 1;
    int differences;
    if (arg < argc && strcmp(argv[arg], "-l") == 0) {
        verbose = 1;
        arg++;
    }
    if (arg + 1 >= argc) {
        print_str("usage: cmp [-l] file1 file2\\n");
        return 0;
    }
    file_a = open(argv[arg], O_READ);
    file_b = open(argv[arg + 1], O_READ);
    if (file_a == EOF || file_b == EOF) {
        print_str("cmp: cannot open input\\n");
        return 0;
    }
    differences = compare(verbose);
    if (differences == 0)
        print_str("files identical\\n");
    close(file_a);
    close(file_b);
    return 0;
}
"""


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 16 if scale == "full" else 4
    size = 1600 if scale == "full" else 400
    runs = []
    for seed in range(count):
        kind = seed % 4
        if kind == 0:  # identical text files
            a = b = word_text(seed, size // 6)
        elif kind == 1:  # one flipped byte midway
            a = word_text(seed, size // 6)
            body = bytearray(a)
            body[len(body) // 2] ^= 0x20
            b = bytes(body)
        elif kind == 2:  # sparse scattered differences, listed with -l
            a = binary_blob(seed, size)
            body = bytearray(a)
            for index in range(7, len(body), 37):
                body[index] ^= 0x01
            b = bytes(body)
        else:  # prefix relationship (EOF case)
            a = word_text(seed, size // 6)
            b = a[: len(a) * 2 // 3]
        argv = ["-l", "a.dat", "b.dat"] if kind == 2 else ["a.dat", "b.dat"]
        runs.append(
            RunSpec(
                files={"a.dat": a, "b.dat": b},
                argv=argv,
                label=f"cmp-{seed}",
            )
        )
    return runs
