"""The twelve benchmark programs, one module each.

Every module exposes ``SOURCE`` (C-subset text), ``INPUT_DESCRIPTION``
(Table 1's description column), and ``make_runs(scale)`` producing the
profiling inputs.
"""
