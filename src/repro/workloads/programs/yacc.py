"""yacc: an LL(1) parser generator and table-driven parser.

Reads a grammar (uppercase nonterminals, lowercase terminals), computes
NULLABLE/FIRST/FOLLOW with iterative set helpers, builds the predictive
parse table (reporting conflicts), then parses query token strings with
an explicit stack. Set-operation helpers run inside fixpoint loops, so
user calls dominate — the paper reports an 80% call decrease for yacc.
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec

INPUT_DESCRIPTION = "grammar for a C compiler, etc."

SOURCE = """\
#include <sys.h>
#include <string.h>
#include <ctype.h>
#include <bio.h>

#define MAXRULES 48
#define MAXRHS 8
#define MAXLINE 96
#define NSYM 26
#define END_MARK 26

int rule_lhs[MAXRULES];
char rule_rhs[MAXRULES][MAXRHS + 1];
int nrules = 0;
int start_symbol = -1;

int nullable[NSYM];
int first_set[NSYM];
int follow_set[NSYM];
int table[NSYM][NSYM + 1];
int conflicts = 0;

int is_nonterm(int c)
{
    return c >= 'A' && c <= 'Z';
}

int is_term(int c)
{
    return c >= 'a' && c <= 'z';
}

int nt_index(int c)
{
    return c - 'A';
}

int t_index(int c)
{
    return c - 'a';
}

int add_bits(int *target, int bits)
{
    int old = *target;
    *target = old | bits;
    return *target != old;
}

int symbol_first(int c)
{
    if (is_term(c))
        return 1 << t_index(c);
    return first_set[nt_index(c)];
}

int symbol_nullable(int c)
{
    if (is_term(c))
        return 0;
    return nullable[nt_index(c)];
}

int rhs_nullable(char *rhs, int from)
{
    int i = from;
    while (rhs[i]) {
        if (!symbol_nullable(rhs[i]))
            return 0;
        i++;
    }
    return 1;
}

int rhs_first(char *rhs, int from)
{
    int bits = 0;
    int i = from;
    while (rhs[i]) {
        bits = bits | symbol_first(rhs[i]);
        if (!symbol_nullable(rhs[i]))
            return bits;
        i++;
    }
    return bits;
}

void compute_nullable(void)
{
    int changed = 1;
    while (changed) {
        int r;
        changed = 0;
        for (r = 0; r < nrules; r++) {
            if (!nullable[rule_lhs[r]] && rhs_nullable(rule_rhs[r], 0)) {
                nullable[rule_lhs[r]] = 1;
                changed = 1;
            }
        }
    }
}

void compute_first(void)
{
    int changed = 1;
    while (changed) {
        int r;
        changed = 0;
        for (r = 0; r < nrules; r++) {
            if (add_bits(&first_set[rule_lhs[r]], rhs_first(rule_rhs[r], 0)))
                changed = 1;
        }
    }
}

void compute_follow(void)
{
    int changed = 1;
    follow_set[start_symbol] = 1 << END_MARK;
    while (changed) {
        int r;
        changed = 0;
        for (r = 0; r < nrules; r++) {
            char *rhs = rule_rhs[r];
            int i = 0;
            while (rhs[i]) {
                if (is_nonterm(rhs[i])) {
                    int idx = nt_index(rhs[i]);
                    if (add_bits(&follow_set[idx], rhs_first(rhs, i + 1)))
                        changed = 1;
                    if (rhs_nullable(rhs, i + 1)
                        && add_bits(&follow_set[idx],
                                    follow_set[rule_lhs[r]]))
                        changed = 1;
                }
                i++;
            }
        }
    }
}

void table_set(int nonterm, int term, int rule)
{
    if (table[nonterm][term] != 0) {
        if (table[nonterm][term] != rule + 1)
            conflicts++;
        return;
    }
    table[nonterm][term] = rule + 1;
}

void build_table(void)
{
    int r;
    for (r = 0; r < nrules; r++) {
        int firsts = rhs_first(rule_rhs[r], 0);
        int t;
        for (t = 0; t < NSYM; t++) {
            if (firsts & (1 << t))
                table_set(rule_lhs[r], t, r);
        }
        if (rhs_nullable(rule_rhs[r], 0)) {
            int follows = follow_set[rule_lhs[r]];
            for (t = 0; t <= END_MARK; t++) {
                if (follows & (1 << t))
                    table_set(rule_lhs[r], t, r);
            }
        }
    }
}

char parse_stack[256];
int stack_top = 0;

void push_symbol(int c)
{
    if (stack_top < 255) {
        parse_stack[stack_top] = c;
        stack_top++;
    }
}

int pop_symbol(void)
{
    if (stack_top == 0)
        return 0;
    stack_top--;
    return parse_stack[stack_top];
}

int parse_tokens(char *tokens)
{
    int pos = 0;
    int steps = 0;
    stack_top = 0;
    push_symbol('A' + start_symbol);
    while (stack_top > 0 && steps < 4000) {
        int top = pop_symbol();
        int look = tokens[pos] ? t_index(tokens[pos]) : END_MARK;
        steps++;
        if (is_term(top)) {
            if (tokens[pos] != top)
                return 0;
            pos++;
        } else {
            int rule = table[nt_index(top)][look];
            int len;
            int i;
            if (rule == 0)
                return 0;
            rule--;
            len = strlen(rule_rhs[rule]);
            for (i = len - 1; i >= 0; i--)
                push_symbol(rule_rhs[rule][i]);
        }
    }
    return tokens[pos] == 0 && stack_top == 0;
}

int read_line(int fd, char *buffer)
{
    int length = 0;
    int c = bfgetc(fd);
    if (c == EOF)
        return EOF;
    while (c != EOF && c != '\\n') {
        if (length < MAXLINE - 1) {
            buffer[length] = c;
            length++;
        }
        c = bfgetc(fd);
    }
    buffer[length] = 0;
    return length;
}

void add_rule(char *line)
{
    int i = 0;
    int n = 0;
    if (nrules >= MAXRULES)
        return;
    while (line[i] == ' ')
        i++;
    if (!is_nonterm(line[i]))
        return;
    rule_lhs[nrules] = nt_index(line[i]);
    if (start_symbol < 0)
        start_symbol = rule_lhs[nrules];
    while (line[i] && line[i] != '=')
        i++;
    if (line[i] == '=')
        i++;
    while (line[i] && n < MAXRHS) {
        if (is_nonterm(line[i]) || is_term(line[i])) {
            rule_rhs[nrules][n] = line[i];
            n++;
        }
        i++;
    }
    rule_rhs[nrules][n] = 0;
    nrules++;
}

int main(int argc, char **argv)
{
    char line[MAXLINE];
    int fd;
    int accepted = 0;
    int rejected = 0;
    int entries = 0;
    int i, j;
    if (argc < 2) {
        print_str("usage: yacc grammar-file\\n");
        return 0;
    }
    fd = open(argv[1], O_READ);
    if (fd == EOF) {
        print_str("yacc: cannot open input\\n");
        return 0;
    }
    while (read_line(fd, line) != EOF) {
        if (line[0] == '?') {
            /* queries are parsed after the grammar is complete */
        } else if (line[0] != '#' && line[0] != 0) {
            add_rule(line);
        }
    }
    compute_nullable();
    compute_first();
    compute_follow();
    build_table();
    close(fd);
    fd = open(argv[1], O_READ);
    while (read_line(fd, line) != EOF) {
        if (line[0] == '?') {
            if (parse_tokens(line + 1))
                accepted++;
            else
                rejected++;
        }
    }
    close(fd);
    for (i = 0; i < NSYM; i++) {
        for (j = 0; j <= NSYM; j++) {
            if (table[i][j] != 0)
                entries++;
        }
    }
    print_str("rules ");
    print_int(nrules);
    print_str(" entries ");
    print_int(entries);
    print_str(" conflicts ");
    print_int(conflicts);
    print_str(" accept ");
    print_int(accepted);
    print_str(" reject ");
    print_int(rejected);
    putchar('\\n');
    return 0;
}
"""

# Grammars: expression grammar, balanced parens, list grammar, and a
# statement grammar sketching a C compiler's shape (the paper's input).
_GRAMMARS = [
    (
        "E = T R\n"
        "R = p T R\n"
        "R =\n"
        "T = F S\n"
        "S = m F S\n"
        "S =\n"
        "F = x\n"
        "F = l E r\n",
        ["xpx", "xmxpx", "lxpxrmx", "x", "px", "lxr", "xx", "lxpxr"],
    ),
    (
        "B = l B r B\n" "B =\n",
        ["lr", "llrr", "lrlr", "llrlrr", "rl", "l", "lllrrr"],
    ),
    (
        "L = i C\n" "C = c i C\n" "C =\n",
        ["i", "ici", "icici", "ic", "ci", "icicici"],
    ),
    (
        "P = D P\n"
        "P = S P\n"
        "P =\n"
        "D = t i s\n"
        "S = i a E s\n"
        "E = i F\n"
        "F = p i F\n"
        "F =\n",
        ["tis", "iais", "tisiais", "iaipis", "tistis", "ia", "tisiaipipis"],
    ),
]


def _grammar_input(index: int, queries_scale: int) -> bytes:
    grammar, queries = _GRAMMARS[index % len(_GRAMMARS)]
    lines = [grammar.strip()]
    for repeat in range(queries_scale):
        for query in queries:
            lines.append("?" + query * (1 + repeat % 3))
    return ("\n".join(lines) + "\n").encode()


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 8  # the paper profiles yacc over 8 inputs
    queries_scale = 6 if scale == "full" else 2
    runs = []
    for seed in range(count):
        data = _grammar_input(seed, queries_scale + seed % 3)
        runs.append(
            RunSpec(files={"g.y": data}, argv=["g.y"], label=f"yacc-{seed}")
        )
    return runs
