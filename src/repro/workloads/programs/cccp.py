"""cccp: a miniature C preprocessor (the GNU cccp of the paper).

Strips comments, records object-like ``#define``/``#undef`` macros,
evaluates ``#ifdef``/``#ifndef``/``#else``/``#endif`` blocks, and
substitutes macros into identifier tokens on output. Character-class
helpers and the macro hash table are called a few times per input
character, giving the paper's ~55% call decrease.
"""

from __future__ import annotations

from repro.profiler.profile import RunSpec
from repro.workloads.inputs import c_source_text

INPUT_DESCRIPTION = "C programs (100-3000 lines)"

SOURCE = """\
#include <sys.h>
#include <string.h>
#include <ctype.h>
#include <bio.h>

#define MAXLINE 1024
#define MAXMACROS 128
#define NAMELEN 32
#define BODYLEN 64
#define MAXDEPTH 16

char macro_names[MAXMACROS][NAMELEN];
char macro_bodies[MAXMACROS][BODYLEN];
int macro_used[MAXMACROS];
int macro_count = 0;

int is_ident_start(int c)
{
    return isalpha(c) || c == '_';
}

int is_ident_char(int c)
{
    return isalnum(c) || c == '_';
}

int macro_hash(char *name)
{
    int h = 0;
    int i = 0;
    while (name[i]) {
        h = h * 31 + name[i];
        i++;
    }
    h = h & (MAXMACROS - 1);
    if (h < 0)
        h = 0;
    return h;
}

int macro_find(char *name)
{
    int slot = macro_hash(name);
    int probes = 0;
    while (probes < MAXMACROS) {
        if (!macro_used[slot])
            return -1;
        if (strcmp(macro_names[slot], name) == 0)
            return slot;
        slot = (slot + 1) & (MAXMACROS - 1);
        probes++;
    }
    return -1;
}

void macro_define(char *name, char *body)
{
    int slot = macro_find(name);
    if (slot < 0) {
        slot = macro_hash(name);
        while (macro_used[slot])
            slot = (slot + 1) & (MAXMACROS - 1);
        strncpy(macro_names[slot], name, NAMELEN - 1);
        macro_used[slot] = 1;
        macro_count++;
    }
    strncpy(macro_bodies[slot], body, BODYLEN - 1);
}

void macro_undef(char *name)
{
    int slot = macro_find(name);
    if (slot >= 0)
        macro_bodies[slot][0] = 0;
}

int read_line(char *buffer)
{
    int length = 0;
    int c = bgetchar();
    if (c == EOF)
        return EOF;
    while (c != EOF && c != '\\n') {
        if (length < MAXLINE - 1) {
            buffer[length] = c;
            length++;
        }
        c = bgetchar();
    }
    buffer[length] = 0;
    return length;
}

int skip_space(char *line, int i)
{
    while (line[i] == ' ' || line[i] == '\\t')
        i++;
    return i;
}

int read_word(char *line, int i, char *word, int limit)
{
    int n = 0;
    while (is_ident_char(line[i]) && n < limit - 1) {
        word[n] = line[i];
        n++;
        i++;
    }
    word[n] = 0;
    return i;
}

int in_comment = 0;

int strip_comments(char *line, char *out)
{
    int i = 0;
    int n = 0;
    while (line[i]) {
        if (in_comment) {
            if (line[i] == '*' && line[i + 1] == '/') {
                in_comment = 0;
                i += 2;
            } else {
                i++;
            }
        } else if (line[i] == '/' && line[i + 1] == '*') {
            in_comment = 1;
            i += 2;
        } else if (line[i] == '/' && line[i + 1] == '/') {
            break;
        } else {
            out[n] = line[i];
            n++;
            i++;
        }
    }
    out[n] = 0;
    return n;
}

void emit_ident(char *word, int depth)
{
    int slot = macro_find(word);
    if (slot >= 0 && macro_bodies[slot][0] && depth < MAXDEPTH) {
        /* rescan the body for nested macros */
        char body[BODYLEN];
        int i = 0;
        strcpy(body, macro_bodies[slot]);
        while (body[i]) {
            if (is_ident_start(body[i])) {
                char inner[NAMELEN];
                i = read_word(body, i, inner, NAMELEN);
                emit_ident(inner, depth + 1);
            } else {
                bputchar(body[i]);
                i++;
            }
        }
    } else {
        bputs(word);
    }
}

void emit_line(char *line)
{
    int i = 0;
    while (line[i]) {
        if (is_ident_start(line[i])) {
            char word[NAMELEN];
            i = read_word(line, i, word, NAMELEN);
            emit_ident(word, 0);
        } else {
            bputchar(line[i]);
            i++;
        }
    }
    bputchar('\\n');
}

int cond_stack[MAXDEPTH];
int cond_depth = 0;

int cond_active(void)
{
    int i;
    for (i = 0; i < cond_depth; i++) {
        if (!cond_stack[i])
            return 0;
    }
    return 1;
}

void directive(char *line)
{
    char name[NAMELEN];
    char word[NAMELEN];
    int i = skip_space(line, 1);
    i = read_word(line, i, name, NAMELEN);
    i = skip_space(line, i);
    if (strcmp(name, "ifdef") == 0 || strcmp(name, "ifndef") == 0) {
        int defined;
        i = read_word(line, i, word, NAMELEN);
        defined = macro_find(word) >= 0;
        if (name[2] == 'n')
            defined = !defined;
        if (cond_depth < MAXDEPTH) {
            cond_stack[cond_depth] = defined;
            cond_depth++;
        }
    } else if (strcmp(name, "else") == 0) {
        if (cond_depth > 0)
            cond_stack[cond_depth - 1] = !cond_stack[cond_depth - 1];
    } else if (strcmp(name, "endif") == 0) {
        if (cond_depth > 0)
            cond_depth--;
    } else if (!cond_active()) {
        return;
    } else if (strcmp(name, "define") == 0) {
        i = read_word(line, i, word, NAMELEN);
        i = skip_space(line, i);
        macro_define(word, line + i);
    } else if (strcmp(name, "undef") == 0) {
        i = read_word(line, i, word, NAMELEN);
        macro_undef(word);
    } else if (strcmp(name, "include") == 0) {
        bputs("/* include elided */");
        bputchar('\\n');
    }
}

int main(void)
{
    char raw[MAXLINE];
    char line[MAXLINE];
    int lines = 0;
    while (read_line(raw) != EOF) {
        int start;
        lines++;
        strip_comments(raw, line);
        start = skip_space(line, 0);
        if (line[start] == '#')
            directive(line + start);
        else if (cond_active())
            emit_line(line);
    }
    bflush();
    return 0;
}
"""


def make_runs(scale: str = "small") -> list[RunSpec]:
    count = 20 if scale == "full" else 4
    runs = []
    for seed in range(count):
        functions = (6 + 4 * seed) if scale == "full" else (3 + seed)
        body = c_source_text(seed, functions).decode()
        extra = (
            "#define MODE 1\n"
            "#ifdef MODE\n"
            "int mode_flag = MODE;\n"
            "#else\n"
            "int mode_flag = 0;\n"
            "#endif\n"
            "#define ALIAS LIMIT\n"
            "int alias_user(int x) { return x + ALIAS; }\n"
            "#undef STEP\n"
        )
        runs.append(RunSpec(stdin=(body + extra).encode(), label=f"cccp-{seed}"))
    return runs
