"""Benchmark suite registry (the paper's Table 1 row set)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compiler import compile_program
from repro.il.module import ILModule
from repro.profiler.profile import RunSpec
from repro.workloads.programs import (
    cccp,
    cmp,
    compress,
    eqn,
    espresso,
    grep,
    lex,
    make,
    tar,
    tee,
    wc,
    yacc,
)

_MODULES = {
    "cccp": cccp,
    "cmp": cmp,
    "compress": compress,
    "eqn": eqn,
    "espresso": espresso,
    "grep": grep,
    "lex": lex,
    "make": make,
    "tar": tar,
    "tee": tee,
    "wc": wc,
    "yacc": yacc,
}


@dataclass(frozen=True)
class Benchmark:
    """One suite entry: source text plus its input generator."""

    name: str
    source: str
    input_description: str
    runs_factory: Callable[[str], list[RunSpec]]

    @property
    def c_lines(self) -> int:
        """Static program size in C lines (Table 1's *C lines*)."""
        return sum(1 for line in self.source.splitlines() if line.strip())

    def make_runs(self, scale: str = "small") -> list[RunSpec]:
        return self.runs_factory(scale)

    def compile(self, link_libc: bool = True, obs=None) -> ILModule:
        return compile_program(
            self.source, filename=f"{self.name}.c", link_libc=link_libc, obs=obs
        )


def benchmark_suite() -> list[Benchmark]:
    """All twelve benchmarks, in the paper's Table 1 order."""
    return [
        Benchmark(
            name=name,
            source=module.SOURCE,
            input_description=module.INPUT_DESCRIPTION,
            runs_factory=module.make_runs,
        )
        for name, module in _MODULES.items()
    ]


def benchmark_names() -> list[str]:
    return list(_MODULES)


def benchmark_by_name(name: str) -> Benchmark:
    module = _MODULES.get(name)
    if module is None:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {', '.join(_MODULES)}"
        )
    return Benchmark(
        name=name,
        source=module.SOURCE,
        input_description=module.INPUT_DESCRIPTION,
        runs_factory=module.make_runs,
    )
