"""The twelve-benchmark suite.

Miniature but fully functional re-implementations (in the C subset) of
the paper's twelve UNIX programs — cccp, cmp, compress, eqn, espresso,
grep, lex, make, tar, tee, wc, yacc — with deterministic input
generators mirroring the paper's input descriptions (Table 1).
"""

from repro.workloads.suite import (
    Benchmark,
    benchmark_by_name,
    benchmark_names,
    benchmark_suite,
)

__all__ = [
    "Benchmark",
    "benchmark_by_name",
    "benchmark_names",
    "benchmark_suite",
]
