"""Jump optimization.

Four cleanups, iterated by the pipeline until quiet:

1. *Jump threading*: a branch to a label whose only content is another
   unconditional jump is retargeted to the final destination.
2. *Branch collapsing*: a conditional jump with identical targets
   becomes an unconditional jump.
3. *Fallthrough removal*: a jump to the label immediately following it
   is deleted.
4. *Unreachable sweep*: instructions between a terminator and the next
   label can never execute and are removed, and labels that nothing
   references are dropped.
"""

from __future__ import annotations

from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode, is_terminator


def _thread_map(function: ILFunction) -> dict[str, str]:
    """label -> ultimate label reached through chains of bare jumps."""
    next_hop: dict[str, str] = {}
    body = function.body
    for index, instr in enumerate(body):
        if instr.op is not Opcode.LABEL:
            continue
        cursor = index + 1
        while cursor < len(body) and body[cursor].op is Opcode.LABEL:
            cursor += 1
        if cursor < len(body) and body[cursor].op is Opcode.JUMP:
            target = body[cursor].label
            if target != instr.label:
                next_hop[instr.label] = target
    resolved: dict[str, str] = {}
    for label in next_hop:
        seen = {label}
        cursor = label
        while cursor in next_hop and next_hop[cursor] not in seen:
            cursor = next_hop[cursor]
            seen.add(cursor)
        if cursor != label:
            resolved[label] = cursor
    return resolved


def optimize_jumps(function: ILFunction) -> int:
    """Apply all four cleanups once; returns the number of changes."""
    changes = 0
    body = function.body

    # 1. Jump threading.
    threading = _thread_map(function)
    if threading:
        for instr in body:
            before = (instr.label, instr.label2, tuple(instr.cases))
            if instr.op in (Opcode.JUMP, Opcode.CJUMP, Opcode.SWITCH):
                instr.retarget_labels(threading)
                if (instr.label, instr.label2, tuple(instr.cases)) != before:
                    changes += 1

    # 2. Branch collapsing.
    for index, instr in enumerate(body):
        if instr.op is Opcode.CJUMP and instr.label == instr.label2:
            body[index] = Instr(Opcode.JUMP, label=instr.label)
            changes += 1
        elif instr.op is Opcode.SWITCH:
            targets = {label for _, label in instr.cases} | {instr.label2}
            if len(targets) == 1:
                body[index] = Instr(Opcode.JUMP, label=instr.label2)
                changes += 1

    # 3. Fallthrough removal.
    new_body: list[Instr] = []
    for index, instr in enumerate(body):
        if instr.op is Opcode.JUMP:
            cursor = index + 1
            falls_through = False
            while cursor < len(body) and body[cursor].op is Opcode.LABEL:
                if body[cursor].label == instr.label:
                    falls_through = True
                    break
                cursor += 1
            if falls_through:
                changes += 1
                continue
        new_body.append(instr)
    body = new_body

    # 4a. Unreachable instruction sweep.
    swept: list[Instr] = []
    unreachable = False
    for instr in body:
        if instr.op is Opcode.LABEL:
            unreachable = False
        if unreachable:
            changes += 1
            continue
        swept.append(instr)
        if is_terminator(instr):
            unreachable = True
    body = swept

    # 4b. Unreferenced label removal.
    referenced: set[str] = set()
    for instr in body:
        referenced.update(instr.labels_used())
    cleaned: list[Instr] = []
    for instr in body:
        if instr.op is Opcode.LABEL and instr.label not in referenced:
            changes += 1
            continue
        cleaned.append(instr)

    function.body = cleaned
    return changes
