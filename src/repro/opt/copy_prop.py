"""Copy propagation.

Block-local: after ``MOV dst, src`` every later use of ``dst`` in the
block is replaced by ``src`` until either register is redefined. This is
the pass the paper expects to clean up the parameter-buffer moves that
physical inline expansion introduces (§2.4: "copy propagation and other
optimizations can be applied to eliminate unnecessary overhead
instructions").
"""

from __future__ import annotations

from repro.il.function import ILFunction
from repro.il.instructions import Opcode, Operand


def propagate_copies(function: ILFunction) -> int:
    """Propagate register copies in place; returns changes made."""
    changes = 0
    # copy_of[r] = s means r currently holds the same value as s.
    copy_of: dict[str, str] = {}
    # users[s] = registers currently known to be copies of s.
    users: dict[str, set[str]] = {}

    def kill(reg: str) -> None:
        source = copy_of.pop(reg, None)
        if source is not None:
            users.get(source, set()).discard(reg)
        for copied in users.pop(reg, set()):
            copy_of.pop(copied, None)

    def subst(value: Operand | None) -> Operand | None:
        if isinstance(value, str):
            return copy_of.get(value, value)
        return value

    for instr in function.body:
        op = instr.op
        if op is Opcode.LABEL:
            copy_of.clear()
            users.clear()
            continue

        original_a, original_b = instr.a, instr.b
        if op in (
            Opcode.MOV,
            Opcode.BIN,
            Opcode.UN,
            Opcode.LOAD,
            Opcode.STORE,
            Opcode.RET,
            Opcode.CJUMP,
            Opcode.SWITCH,
            Opcode.ICALL,
        ):
            instr.a = subst(instr.a)
            instr.b = subst(instr.b)
        if op in (Opcode.CALL, Opcode.ICALL):
            new_args = [subst(arg) for arg in instr.args]
            if new_args != instr.args:
                instr.args = new_args
                changes += 1
        if instr.a is not original_a or instr.b is not original_b:
            changes += 1

        if instr.dst is not None:
            kill(instr.dst)
            if op is Opcode.MOV and isinstance(instr.a, str) and instr.a != instr.dst:
                copy_of[instr.dst] = instr.a
                users.setdefault(instr.a, set()).add(instr.dst)
    return changes
