"""Loop-invariant code motion.

Hoists pure, loop-invariant computations into a preheader. This is one
of the optimizations whose scope inline expansion enlarges (§1.2): a
callee's address arithmetic, once spliced into a loop, frequently
becomes invariant and hoistable.

Soundness conditions for hoisting an instruction ``dst = op(args)``
found in a loop body:

1. the opcode is pure and cannot trap (CONST, MOV, non-division BIN,
   UN, FRAME, GADDR, FADDR — loads are excluded because stores in the
   loop may alias),
2. every register source is invariant: defined nowhere in the loop, or
   itself already hoisted this round,
3. ``dst`` has exactly one definition in the whole function (so there
   is no other value the name could carry),
4. ``dst`` is not live on entry to the loop header (hoisting must not
   overwrite a value an earlier iteration... or pre-loop path reads).

The preheader is materialized as a fresh label directly before the
header; jumps into the loop from outside are retargeted to it while
back edges keep targeting the header.
"""

from __future__ import annotations

from repro.analysis.liveness import liveness
from repro.analysis.loops import natural_loops
from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode

_PURE_OPS = frozenset(
    {Opcode.CONST, Opcode.MOV, Opcode.BIN, Opcode.UN, Opcode.FRAME,
     Opcode.GADDR, Opcode.FADDR}
)
_TRAPPING_BINOPS = frozenset({"/", "%"})


def hoist_loop_invariants(function: ILFunction) -> int:
    """Hoist invariants out of one loop (the largest); returns moves.

    Called repeatedly by :func:`licm_function` so that freshly created
    preheaders (which change instruction indices) are re-analyzed.
    """
    result = liveness(function)
    cfg = result.cfg
    loops = natural_loops(cfg)
    if not loops:
        return 0
    # Outermost first: largest body.
    loops.sort(key=lambda loop: -len(loop.body))
    body = function.body

    for loop in loops:
        loop_instrs: list[int] = []
        for block_index in loop.body:
            block = cfg.blocks[block_index]
            loop_instrs.extend(range(block.start, block.end))
        loop_instr_set = set(loop_instrs)

        defs_in_loop: dict[str, int] = {}
        defs_total: dict[str, int] = {}
        for index, instr in enumerate(body):
            if instr.dst is not None:
                defs_total[instr.dst] = defs_total.get(instr.dst, 0) + 1
                if index in loop_instr_set:
                    defs_in_loop[instr.dst] = defs_in_loop.get(instr.dst, 0) + 1

        header_live_in = result.live_in[loop.header]
        invariant_regs: set[str] = set()
        hoisted: list[int] = []
        changed = True
        while changed:
            changed = False
            for index in loop_instrs:
                instr = body[index]
                if index in hoisted or instr.op not in _PURE_OPS:
                    continue
                if instr.op is Opcode.BIN and instr.op2 in _TRAPPING_BINOPS:
                    continue
                dst = instr.dst
                if dst is None or defs_total.get(dst, 0) != 1:
                    continue
                if dst in header_live_in:
                    continue
                sources_ok = all(
                    reg in invariant_regs or defs_in_loop.get(reg, 0) == 0
                    for reg in instr.source_regs()
                )
                if not sources_ok:
                    continue
                hoisted.append(index)
                invariant_regs.add(dst)
                changed = True
        if not hoisted:
            continue

        # Build the preheader before the header block's label run.
        header_block = cfg.blocks[loop.header]
        preheader_label = function.new_label("PH")
        hoisted_sorted = sorted(hoisted)
        moved = [body[i] for i in hoisted_sorted]
        # Retarget entries from outside the loop to the preheader.
        for index, instr in enumerate(body):
            if index in loop_instr_set:
                continue
            for label in instr.labels_used():
                if label in header_block.labels:
                    instr.retarget_labels(
                        {old: preheader_label for old in header_block.labels}
                    )
                    break
        new_body: list[Instr] = []
        for index, instr in enumerate(body):
            if index in set(hoisted_sorted):
                continue
            if index == header_block.start:
                new_body.append(Instr(Opcode.LABEL, label=preheader_label))
                new_body.extend(moved)
            new_body.append(instr)
        function.body = new_body
        return len(moved)  # one loop per call; caller re-analyzes
    return 0


def licm_function(function: ILFunction, max_rounds: int = 10) -> int:
    """Run LICM to a fixpoint over all loops; returns total moves."""
    total = 0
    for _ in range(max_rounds):
        moved = hoist_loop_invariants(function)
        if moved == 0:
            break
        total += moved
    return total


def licm_module(module) -> int:
    """Apply LICM to every function of a module."""
    return sum(licm_function(fn) for fn in module.functions.values())
