"""Dead code elimination.

Function-level: an instruction is dead when it has a destination
register that is never read anywhere in the function and the
instruction has no side effects. Calls always survive (they may perform
I/O); stores and control transfers have no destination and survive.
Dead loads are removed too — this changes trapping behaviour on wild
pointers, the usual compiler licence.

Runs a worklist to a fixpoint so chains of dead definitions disappear
in one call.
"""

from __future__ import annotations

from repro.il.function import ILFunction
from repro.il.instructions import Opcode

#: Opcodes safe to delete when their destination is unread.
_PURE_OPS = frozenset(
    {
        Opcode.CONST,
        Opcode.MOV,
        Opcode.BIN,
        Opcode.UN,
        Opcode.FRAME,
        Opcode.GADDR,
        Opcode.FADDR,
        Opcode.LOAD,
    }
)


def eliminate_dead_code(function: ILFunction) -> int:
    """Remove dead pure instructions in place; returns removals."""
    use_counts: dict[str, int] = {}
    for instr in function.body:
        for reg in instr.source_regs():
            use_counts[reg] = use_counts.get(reg, 0) + 1

    alive = [True] * len(function.body)
    # Seed the worklist with every currently-dead pure definition.
    worklist = [
        index
        for index, instr in enumerate(function.body)
        if instr.op in _PURE_OPS
        and instr.dst is not None
        and use_counts.get(instr.dst, 0) == 0
    ]
    removed = 0
    # Map from register to defining indices for cascade processing.
    defs: dict[str, list[int]] = {}
    for index, instr in enumerate(function.body):
        if instr.dst is not None:
            defs.setdefault(instr.dst, []).append(index)

    while worklist:
        index = worklist.pop()
        if not alive[index]:
            continue
        instr = function.body[index]
        if instr.dst is None or use_counts.get(instr.dst, 0) != 0:
            continue
        if instr.op not in _PURE_OPS:
            continue
        alive[index] = False
        removed += 1
        for reg in instr.source_regs():
            use_counts[reg] -= 1
            if use_counts[reg] == 0:
                worklist.extend(defs.get(reg, ()))

    if removed:
        function.body = [
            instr for index, instr in enumerate(function.body) if alive[index]
        ]
    return removed
