"""The optimization pipeline.

Runs fold → copy-propagate → jump-optimize → DCE rounds until a round
changes nothing (or the round limit hits). The paper applies constant
folding and jump optimization before inlining and recommends the full
set afterwards (§4.4); callers choose where in their pipeline to invoke
this.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.il.function import ILFunction
from repro.il.module import ILModule
from repro.observability import resolve
from repro.opt.constant_fold import fold_constants
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.copy_prop import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.jump_opt import optimize_jumps


@dataclass
class OptimizationStats:
    """Per-pass change counts accumulated over all rounds."""

    rounds: int = 0
    by_pass: dict[str, int] = field(default_factory=dict)

    def record(self, name: str, count: int) -> None:
        self.by_pass[name] = self.by_pass.get(name, 0) + count

    @property
    def total_changes(self) -> int:
        return sum(self.by_pass.values())


_PASSES = (
    ("constant-fold", fold_constants),
    ("copy-propagate", propagate_copies),
    ("cse", eliminate_common_subexpressions),
    ("jump-optimize", optimize_jumps),
    ("dead-code", eliminate_dead_code),
)


def optimize_function(
    function: ILFunction, max_rounds: int = 8
) -> OptimizationStats:
    """Optimize one function in place to a fixpoint."""
    stats = OptimizationStats()
    for _ in range(max_rounds):
        round_changes = 0
        for name, pass_fn in _PASSES:
            count = pass_fn(function)
            stats.record(name, count)
            round_changes += count
        stats.rounds += 1
        if round_changes == 0:
            break
    return stats


def optimize_module(
    module: ILModule, max_rounds: int = 8, obs=None
) -> OptimizationStats:
    """Optimize every function of the module in place.

    ``obs`` is an optional :class:`repro.observability.Observability`;
    when given, per-pass change counts and the phase's wall time are
    reported into it.
    """
    obs = resolve(obs)
    total = OptimizationStats()
    with obs.tracer.span("opt.module", functions=len(module.functions)) as attrs:
        for function in module.functions.values():
            stats = optimize_function(function, max_rounds)
            total.rounds = max(total.rounds, stats.rounds)
            for name, count in stats.by_pass.items():
                total.record(name, count)
        attrs["changes"] = total.total_changes
    if obs.metrics.enabled:
        for name, count in total.by_pass.items():
            obs.metrics.inc(f"opt.changes.{name}", count)
        obs.metrics.inc("opt.modules_optimized")
    return total
