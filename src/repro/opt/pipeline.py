"""The optimization pipeline (thin wrapper over the PassManager).

Runs fold → copy-propagate → cse → jump-optimize → DCE rounds until a
round changes nothing (or the round limit hits). The paper applies
constant folding and jump optimization before inlining and recommends
the full set afterwards (§4.4); callers choose where in their pipeline
to invoke this.

The pass order itself now lives in :mod:`repro.pipeline`: the default
spec is :data:`repro.pipeline.passes.DEFAULT_OPT_SPEC`, and both
entry points accept a ``pass_spec`` string (e.g.
``"fold,copyprop,dce"``) to run a custom pipeline.
"""

from __future__ import annotations

from repro.il.function import ILFunction
from repro.il.module import ILModule
from repro.observability import resolve
from repro.pipeline.manager import PassManager, PassStats

#: Back-compat name: per-pass change counts accumulated over all rounds.
OptimizationStats = PassStats


def optimize_function(
    function: ILFunction, max_rounds: int = 8, pass_spec: str | None = None
) -> PassStats:
    """Optimize one function in place to a fixpoint."""
    return PassManager.from_spec(pass_spec).run_function(function, max_rounds)


def optimize_module(
    module: ILModule, max_rounds: int = 8, obs=None, pass_spec: str | None = None
) -> PassStats:
    """Optimize every function of the module in place.

    ``obs`` is an optional :class:`repro.observability.Observability`;
    when given, per-pass change counts and the phase's wall time are
    reported into it. ``pass_spec`` selects a custom pipeline
    (default: the full five-pass set).
    """
    obs = resolve(obs)
    manager = PassManager.from_spec(pass_spec)
    total = PassStats()
    with obs.tracer.span("opt.module", functions=len(module.functions)) as attrs:
        for function in module.functions.values():
            total.merge(manager.run_function(function, max_rounds, obs=obs))
        attrs["changes"] = total.total_changes
    if obs.metrics.enabled:
        for name, count in total.by_pass.items():
            obs.metrics.inc(f"opt.changes.{name}", count)
        obs.metrics.inc("opt.modules_optimized")
    return total
