"""Tail-recursion elimination.

The paper notes (§2.2) that "there are standard ways of removing tail
recursion and expanding simple recursive functions"; inline expansion
itself refuses simple recursion, so this pass is the companion that
handles it: a self-call whose result immediately reaches a RET (or a
void self-call directly before RET) is rewritten into parameter
re-assignment plus a jump back to the function entry.

This converts the recursion's calls/returns into ordinary control
transfers and removes the control-stack growth entirely — stronger than
the one-iteration absorption inline expansion could give.
"""

from __future__ import annotations

from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode
from repro.il.module import ILModule

_ENTRY_LABEL = "tailrec/entry"


def _returned_register(function: ILFunction, index: int) -> str | None:
    """If body[index+1] is ``RET r`` (possibly via a MOV), return r."""
    if index + 1 >= len(function.body):
        return None
    nxt = function.body[index + 1]
    if nxt.op is Opcode.RET:
        if nxt.a is None:
            return "__void__"
        if isinstance(nxt.a, str):
            return nxt.a
    return None


def eliminate_tail_recursion(function: ILFunction) -> int:
    """Rewrite self tail calls in place; returns rewrites performed.

    Recognized shape: ``t = call self(args); ret t`` (or ``call self(...)``
    directly followed by ``ret`` in a void function). The call becomes
    moves of the arguments into fresh shadow registers, moves of the
    shadows into the parameter registers, and a jump to the entry label
    (shadows make ``f(b, a)``-style swaps safe).
    """
    rewrites = 0
    entry_placed = bool(
        function.body
        and function.body[0].op is Opcode.LABEL
        and function.body[0].label == _ENTRY_LABEL
    )
    index = 0
    while index < len(function.body):
        instr = function.body[index]
        if instr.op is not Opcode.CALL or instr.name != function.name:
            index += 1
            continue
        returned = _returned_register(function, index)
        is_tail = (
            returned is not None
            and (
                returned == "__void__"
                or (instr.dst is not None and returned == instr.dst)
            )
            and len(instr.args) == len(function.params)
        )
        if not is_tail:
            index += 1
            continue
        if not entry_placed:
            function.body.insert(0, Instr(Opcode.LABEL, label=_ENTRY_LABEL))
            index += 1  # everything shifted by the new label
            entry_placed = True
        replacement: list[Instr] = []
        shadows: list[str] = []
        for arg in instr.args:
            shadow = function.new_temp("tail")
            shadows.append(shadow)
            if isinstance(arg, str):
                replacement.append(Instr(Opcode.MOV, dst=shadow, a=arg))
            else:
                replacement.append(Instr(Opcode.CONST, dst=shadow, a=arg))
        for param, shadow in zip(function.params, shadows):
            replacement.append(Instr(Opcode.MOV, dst=param, a=shadow))
        replacement.append(Instr(Opcode.JUMP, label=_ENTRY_LABEL))
        # Replace the call and the RET it fed.
        function.body[index : index + 2] = replacement
        rewrites += 1
        index += len(replacement)
    return rewrites


def eliminate_tail_recursion_module(module: ILModule) -> int:
    """Apply tail-recursion elimination to every function."""
    total = 0
    for function in module.functions.values():
        total += eliminate_tail_recursion(function)
    return total
