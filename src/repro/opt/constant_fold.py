"""Constant folding and propagation.

A forward, block-local pass: known-constant registers are substituted
into operands, arithmetic on constants is evaluated with the VM's exact
32-bit semantics, and conditional jumps/switches on constants become
unconditional jumps. Facts are dropped at labels (block boundaries);
within a block a call only kills its destination register, because IL
registers are function-private.
"""

from __future__ import annotations

from repro.frontend.constexpr import apply_binary, apply_unary
from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode, Operand


def _subst(value: Operand | None, consts: dict[str, int]) -> Operand | None:
    if isinstance(value, str) and value in consts:
        return consts[value]
    return value


def fold_constants(function: ILFunction) -> int:
    """Fold and propagate constants in place; returns changes made."""
    changes = 0
    consts: dict[str, int] = {}
    new_body: list[Instr] = []

    for instr in function.body:
        op = instr.op
        if op is Opcode.LABEL:
            consts.clear()
            new_body.append(instr)
            continue

        original_a, original_b = instr.a, instr.b
        if op in (
            Opcode.MOV,
            Opcode.BIN,
            Opcode.UN,
            Opcode.LOAD,
            Opcode.STORE,
            Opcode.RET,
            Opcode.CJUMP,
            Opcode.SWITCH,
            Opcode.ICALL,
        ):
            instr.a = _subst(instr.a, consts)
            instr.b = _subst(instr.b, consts)
        if op in (Opcode.CALL, Opcode.ICALL):
            new_args = [_subst(arg, consts) for arg in instr.args]
            if new_args != instr.args:
                instr.args = new_args
                changes += 1
        if instr.a is not original_a or instr.b is not original_b:
            changes += 1

        if op is Opcode.CONST:
            consts[instr.dst] = instr.a
        elif op is Opcode.MOV:
            if isinstance(instr.a, int):
                instr = Instr(Opcode.CONST, dst=instr.dst, a=instr.a)
                consts[instr.dst] = instr.a
                changes += 1
            else:
                consts.pop(instr.dst, None)
        elif op is Opcode.BIN:
            if isinstance(instr.a, int) and isinstance(instr.b, int):
                try:
                    value = apply_binary(instr.op2, instr.a, instr.b)
                except ZeroDivisionError:
                    value = None  # leave the trap for runtime
                if value is not None:
                    instr = Instr(Opcode.CONST, dst=instr.dst, a=value)
                    consts[instr.dst] = value
                    changes += 1
                else:
                    consts.pop(instr.dst, None)
            else:
                consts.pop(instr.dst, None)
        elif op is Opcode.UN:
            if isinstance(instr.a, int):
                value = apply_unary(instr.op2, instr.a) if instr.op2 != "sxt8" else (
                    ((instr.a & 0xFF) ^ 0x80) - 0x80
                )
                instr = Instr(Opcode.CONST, dst=instr.dst, a=value)
                consts[instr.dst] = value
                changes += 1
            else:
                consts.pop(instr.dst, None)
        elif op is Opcode.CJUMP:
            if isinstance(instr.a, int):
                target = instr.label if instr.a else instr.label2
                instr = Instr(Opcode.JUMP, label=target)
                changes += 1
        elif op is Opcode.SWITCH:
            if isinstance(instr.a, int):
                target = dict(instr.cases).get(instr.a, instr.label2)
                instr = Instr(Opcode.JUMP, label=target)
                changes += 1
        elif instr.dst is not None:
            # FRAME/GADDR/FADDR/CALL/ICALL/LOAD: destination no longer
            # a known constant.
            consts.pop(instr.dst, None)
        new_body.append(instr)

    function.body = new_body
    return changes
