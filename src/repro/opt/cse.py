"""Local common subexpression elimination (value numbering).

The paper lists CSE among the optimizations whose scope inline
expansion enlarges (§1, §1.2): after a callee is spliced in, its
address computations often repeat the caller's. This pass removes the
redundancy block-locally: pure computations with operands of known
value numbers are replaced by moves from the first computation's
result.
"""

from __future__ import annotations

from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode, Operand


def eliminate_common_subexpressions(function: ILFunction) -> int:
    """Value-number each block in place; returns replacements made."""
    changes = 0
    value_number: dict[str, int] = {}
    next_vn = [0]
    #: (kind, details...) -> (vn, register holding it)
    table: dict[tuple, tuple[int, str]] = {}

    def fresh_vn() -> int:
        next_vn[0] += 1
        return next_vn[0]

    def vn_of(operand: Operand | None):
        if isinstance(operand, int):
            return ("const", operand)
        if operand is None:
            return None
        number = value_number.get(operand)
        if number is None:
            number = fresh_vn()
            value_number[operand] = number
        return number

    def reset() -> None:
        value_number.clear()
        table.clear()

    for index, instr in enumerate(function.body):
        op = instr.op
        if op is Opcode.LABEL:
            reset()
            continue
        key: tuple | None = None
        if op is Opcode.BIN:
            left, right = vn_of(instr.a), vn_of(instr.b)
            if instr.op2 in ("+", "*", "&", "|", "^", "==", "!="):
                left, right = sorted((left, right), key=repr)  # commutative
            key = ("bin", instr.op2, left, right)
        elif op is Opcode.UN:
            key = ("un", instr.op2, vn_of(instr.a))
        elif op is Opcode.FRAME:
            key = ("frame", instr.name)
        elif op is Opcode.GADDR:
            key = ("gaddr", instr.name)
        elif op is Opcode.FADDR:
            key = ("faddr", instr.name)

        if key is not None:
            hit = table.get(key)
            if hit is not None and value_number.get(hit[1]) == hit[0]:
                # The register still holds that value: reuse it.
                function.body[index] = Instr(Opcode.MOV, dst=instr.dst, a=hit[1])
                value_number[instr.dst] = hit[0]
                changes += 1
                continue
            number = fresh_vn()
            value_number[instr.dst] = number
            table[key] = (number, instr.dst)
            continue

        if op is Opcode.MOV and isinstance(instr.a, str):
            value_number[instr.dst] = vn_of(instr.a)
        elif instr.dst is not None:
            # CONST/LOAD/CALL/ICALL: a fresh, unknown value.
            value_number[instr.dst] = fresh_vn()
    return changes
