"""Code-improving transformations around inline expansion.

The paper applies constant folding and jump optimization before inline
expansion (§4.4) and names register allocation, code scheduling, common
subexpression elimination, constant propagation, copy propagation, and
dead code elimination as beneficiaries of inlining (§1.2, §2.4). This
package implements the machine-independent subset relevant at IL level:

- constant folding and propagation (block-local),
- copy propagation (block-local),
- dead code elimination (function-level),
- jump optimization (threading, dead-code sweeping, label cleanup).
"""

from repro.opt.constant_fold import fold_constants
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.copy_prop import propagate_copies
from repro.opt.dce import eliminate_dead_code
from repro.opt.jump_opt import optimize_jumps
from repro.opt.licm import licm_function, licm_module
from repro.opt.tail_recursion import (
    eliminate_tail_recursion,
    eliminate_tail_recursion_module,
)
from repro.opt.pipeline import OptimizationStats, optimize_function, optimize_module

__all__ = [
    "OptimizationStats",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "eliminate_tail_recursion",
    "eliminate_tail_recursion_module",
    "fold_constants",
    "licm_function",
    "licm_module",
    "optimize_function",
    "optimize_jumps",
    "optimize_module",
    "propagate_copies",
]
