"""The IL interpreter.

The machine links an :class:`~repro.il.module.ILModule` into a compact
executable form (dense register indices, resolved labels and global
addresses) and interprets it with an explicit control stack, counting
the dynamic quantities the paper's profiler needs.

Memory model: one flat byte-addressable space.

- ``[0, 16)`` is unmapped (null-pointer guard),
- ``[16, 16 + stack_size)`` is the control stack (frame slots only;
  scalar temporaries live in per-activation register files),
- globals follow the stack region,
- the heap grows beyond the globals via a bump allocator.

Function pointers are encoded as negative integers (``-1 - index`` into
the function table), so they survive 32-bit store/load round trips and
can never collide with data addresses.

Two execution engines share this link step: the counting interpreter
below (``engine="counting"``, the reference) and the closure-compiled
fast tier in :mod:`repro.vm.fast` (``engine="fast"``), which produces
the exact same :class:`~repro.vm.counters.Counters` on every
successful run at roughly an order of magnitude higher
dynamic-instruction throughput.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

from repro.errors import ILError, VMTrap
from repro.il.instructions import Opcode
from repro.il.module import ILModule
from repro.vm.builtins import BUILTINS, ExitSignal
from repro.vm.counters import Counters
from repro.vm.os import VirtualOS

# Compiled opcodes (distinct from IL opcodes: loads/stores are split by
# size and calls by callee kind for dispatch speed).
_OP_CONST = 0
_OP_MOV = 1
_OP_BIN = 2
_OP_UN = 3
_OP_LOAD4 = 4
_OP_LOAD1 = 5
_OP_STORE4 = 6
_OP_STORE1 = 7
_OP_FRAME = 8
_OP_CALLU = 9
_OP_CALLB = 10
_OP_ICALL = 11
_OP_RET = 12
_OP_JUMP = 13
_OP_CJUMP = 14
_OP_SWITCH = 15

_NULL_GUARD = 16
_INT_MASK = 0xFFFFFFFF
_INT_SIGN = 0x80000000

#: Recognized execution engines (see the module docstring).
ENGINES = ("counting", "fast")

#: Ceiling on bump-allocator growth (bytes). Fuel caps instruction
#: counts but not allocation: a tight ``malloc`` loop can otherwise
#: grow host memory without bound. 256 MiB clears every suite
#: benchmark and fuzz program by a wide margin.
DEFAULT_HEAP_LIMIT = 256 * 1024 * 1024

#: Per-module cache of compiled (link-stage) code. Compilation is pure
#: in the module plus the link knobs captured in the key, so machines
#: built against the same module share one compiled form instead of
#: recompiling every function per construction. ``base`` is the only
#: field mutated after compilation and is a pure function of the same
#: key, so re-linking a shared entry rewrites identical values.
_COMPILED_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _wrap(value: int) -> int:
    value &= _INT_MASK
    return value - 0x100000000 if value & _INT_SIGN else value


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise VMTrap("integer division by zero")
    quotient = abs(a) // abs(b)
    return _wrap(-quotient if (a < 0) != (b < 0) else quotient)


def _c_mod(a: int, b: int) -> int:
    return _wrap(a - _c_div(a, b) * b)


_BINOPS = {
    "+": lambda a, b: _wrap(a + b),
    "-": lambda a, b: _wrap(a - b),
    "*": lambda a, b: _wrap(a * b),
    "/": _c_div,
    "%": _c_mod,
    "<<": lambda a, b: _wrap(a << (b & 31)),
    ">>": lambda a, b: _wrap(a >> (b & 31)),
    "&": lambda a, b: _wrap(a & b),
    "|": lambda a, b: _wrap(a | b),
    "^": lambda a, b: _wrap(a ^ b),
    "<": lambda a, b: 1 if a < b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
}

_UNOPS = {
    "-": lambda a: _wrap(-a),
    "+": lambda a: a,
    "~": lambda a: _wrap(~a),
    "!": lambda a: 0 if a else 1,
    "sxt8": lambda a: ((a & 0xFF) ^ 0x80) - 0x80,
}


class _CompiledFunction:
    __slots__ = (
        "name", "code", "nregs", "nparams", "frame_size", "returns_value", "base",
    )

    def __init__(self, name: str, nparams: int, frame_size: int, returns_value: bool):
        self.name = name
        self.code: list[tuple] = []
        self.nregs = nparams
        self.nparams = nparams
        self.frame_size = frame_size
        self.returns_value = returns_value
        #: Simulated code address of instruction 0 (set by the linker;
        #: used by the optional instruction-cache tracer).
        self.base = 0


@dataclass
class RunResult:
    """Outcome of one program run."""

    exit_code: int
    counters: Counters
    os: VirtualOS

    @property
    def stdout(self) -> str:
        return self.os.stdout_text()


class Machine:
    """Links and executes one IL module.

    A machine is single-shot: build one, call :meth:`run` once (a
    second call raises :class:`~repro.errors.ILError` — the first run
    mutates globals and the heap, so re-running would execute a
    different program and double-report into the metrics registry).
    The compile step is reusable across runs via :func:`compile_module`
    if many inputs must be executed against the same module.

    ``engine`` selects how the linked code is executed: ``"counting"``
    (default) is the reference interpreter below; ``"fast"`` is the
    closure-compiled tier in :mod:`repro.vm.fast`, which produces
    identical counters and outputs on every successful run. The fast
    tier has no per-instruction dispatch point, so it cannot drive the
    instruction-cache tracer — combining ``engine="fast"`` with
    ``icache`` is rejected at construction.
    """

    def __init__(
        self,
        module: ILModule,
        os: VirtualOS | None = None,
        stack_size: int = 1 << 20,
        fuel: int = 2_000_000_000,
        collect_branches: bool = False,
        icache=None,
        code_layout: str = "sequential",
        layout_seed: int = 0,
        function_order: list[str] | None = None,
        metrics=None,
        engine: str = "counting",
        heap_limit: int = DEFAULT_HEAP_LIMIT,
    ):
        if engine not in ENGINES:
            raise ILError(
                f"unknown engine {engine!r}, expected one of {ENGINES}"
            )
        if engine == "fast" and icache is not None:
            raise ILError(
                "engine='fast' cannot drive the instruction-cache tracer;"
                " use engine='counting' for icache simulation"
            )
        self.module = module
        self.os = os if os is not None else VirtualOS()
        self._engine = engine
        self._heap_limit = heap_limit
        self._ran = False
        self._stack_limit = _NULL_GUARD + stack_size
        self._fuel = fuel
        self._collect_branches = collect_branches
        #: Optional repro.observability MetricsRegistry; dynamic counts
        #: are reported into it once per run (never from the hot loop).
        self._metrics = metrics
        #: Optional repro.icache.InstructionCache fed one access per
        #: executed instruction (slows execution; off by default).
        self.icache = icache
        #: "sequential" packs functions in module order; "scattered"
        #: shuffles them with random gaps, modelling a linker that
        #: places related functions far apart (the mapping-conflict
        #: regime of the paper's instruction-cache study).
        self._code_layout = code_layout
        self._layout_seed = layout_seed
        self._function_order = function_order
        self._mem = bytearray()
        self._sp = _NULL_GUARD
        self.counters = Counters()
        self._global_addresses: dict[str, int] = {}
        self._function_table: list[tuple] = []
        self._function_ids: dict[str, int] = {}
        self._compiled: dict[str, _CompiledFunction] = {}
        self._link()

    # ------------------------------------------------------------------
    # linking

    def _link(self) -> None:
        module = self.module
        # Function table: user functions first, then externals.
        for name in module.functions:
            self._function_ids[name] = len(self._function_table)
            self._function_table.append(("u", name))
        for name in sorted(module.externals):
            self._function_ids[name] = len(self._function_table)
            self._function_table.append(("b", name))
        # Global placement after the stack region.
        address = self._stack_limit
        for data in module.globals.values():
            align = max(data.align, 1)
            address = (address + align - 1) // align * align
            self._global_addresses[data.name] = address
            address += max(data.size, 1)
        heap_start = (address + 15) // 16 * 16
        self._mem = bytearray(heap_start)
        self._heap_top = heap_start
        self._heap_start = heap_start
        for data in module.globals.values():
            self._init_global(data)
        compile_key = (
            self._stack_limit,
            self._collect_branches,
            self._code_layout,
            self._layout_seed,
            tuple(self._function_order) if self._function_order else None,
        )
        # The stamp revalidates cache hits: transforms in this codebase
        # clone modules before mutating, but in-place edits would
        # otherwise serve stale code. Rebinding ``body`` or splicing it
        # changes an id or a length here.
        stamp = tuple(
            (name, id(fn), id(fn.body), len(fn.body))
            for name, fn in module.functions.items()
        )
        cached = None
        try:
            cached = _COMPILED_MEMO.setdefault(module, {})
        except TypeError:  # un-weakref-able module stand-in (tests)
            pass
        hit = cached.get(compile_key) if cached is not None else None
        if hit is not None and hit[0] == stamp:
            self._compiled = hit[1]
        else:
            for name, function in module.functions.items():
                self._compiled[name] = self._compile_function(function)
            if cached is not None:
                cached[compile_key] = (stamp, self._compiled)
        # Lay functions out in a simulated code space for the
        # instruction-cache tracer (4 bytes per IL instruction,
        # line-aligned starts).
        ordered = list(self._compiled.values())
        gaps = [0] * len(ordered)
        if self._function_order is not None:
            # Explicit placement (e.g. profile-guided affinity order);
            # names missing from the order keep their relative position
            # at the end.
            position = {name: i for i, name in enumerate(self._function_order)}
            ordered.sort(key=lambda c: position.get(c.name, len(position)))
        elif self._code_layout == "scattered":
            import random

            rng = random.Random(0xC0DE + self._layout_seed)
            rng.shuffle(ordered)
            gaps = [rng.randrange(0, 16) * 16 for _ in ordered]
        elif self._code_layout != "sequential":
            raise ILError(f"unknown code layout {self._code_layout!r}")
        code_address = 0
        for compiled, gap in zip(ordered, gaps):
            code_address += gap
            compiled.base = code_address
            code_address += 4 * len(compiled.code)
            code_address = (code_address + 15) // 16 * 16

    def _init_global(self, data) -> None:
        base = self._global_addresses[data.name]
        for item in data.init:
            offset = base + item.offset
            if item.kind == "int":
                raw = item.value & (_INT_MASK if item.size == 4 else 0xFF)
                self._mem[offset : offset + item.size] = raw.to_bytes(
                    item.size, "little"
                )
            elif item.kind == "bytes":
                self._mem[offset : offset + len(item.data)] = item.data
            elif item.kind == "gaddr":
                address = self._global_addresses[item.symbol]
                self._mem[offset : offset + 4] = address.to_bytes(4, "little")
            elif item.kind == "faddr":
                fid = self._function_pointer(item.symbol)
                self._mem[offset : offset + 4] = (fid & _INT_MASK).to_bytes(4, "little")
            else:  # pragma: no cover
                raise ILError(f"unknown init kind {item.kind!r}")

    def _function_pointer(self, name: str) -> int:
        if name not in self._function_ids:
            raise ILError(f"unknown function {name!r} used as a pointer")
        return -1 - self._function_ids[name]

    def _compile_function(self, function) -> _CompiledFunction:
        compiled = _CompiledFunction(
            function.name,
            len(function.params),
            function.layout_frame(),
            function.returns_value,
        )
        regmap: dict[str, int] = {name: i for i, name in enumerate(function.params)}

        def reg(name: str) -> int:
            index = regmap.get(name)
            if index is None:
                index = len(regmap)
                regmap[name] = index
            return index

        def operand(value):
            if isinstance(value, str):
                return reg(value)
            return (value,)  # immediate, boxed to distinguish from indices

        # First pass: label -> compiled index (labels are dropped).
        label_at: dict[str, int] = {}
        compiled_index = 0
        for instr in function.body:
            if instr.op is Opcode.LABEL:
                label_at[instr.label] = compiled_index
            else:
                compiled_index += 1

        code = compiled.code
        for il_index, instr in enumerate(function.body):
            op = instr.op
            if op is Opcode.LABEL:
                continue
            if op is Opcode.CONST:
                code.append((_OP_CONST, reg(instr.dst), instr.a))
            elif op is Opcode.MOV:
                code.append((_OP_MOV, reg(instr.dst), operand(instr.a)))
            elif op is Opcode.BIN:
                fn = _BINOPS.get(instr.op2)
                if fn is None:
                    raise ILError(f"unknown binary operator {instr.op2!r}")
                code.append(
                    (_OP_BIN, reg(instr.dst), fn, operand(instr.a), operand(instr.b))
                )
            elif op is Opcode.UN:
                fn = _UNOPS.get(instr.op2)
                if fn is None:
                    raise ILError(f"unknown unary operator {instr.op2!r}")
                code.append((_OP_UN, reg(instr.dst), fn, operand(instr.a)))
            elif op is Opcode.LOAD:
                kind = _OP_LOAD4 if instr.size == 4 else _OP_LOAD1
                code.append((kind, reg(instr.dst), operand(instr.a)))
            elif op is Opcode.STORE:
                kind = _OP_STORE4 if instr.size == 4 else _OP_STORE1
                code.append((kind, operand(instr.a), operand(instr.b)))
            elif op is Opcode.FRAME:
                slot = function.slots.get(instr.name)
                if slot is None:
                    raise ILError(
                        f"{function.name}: unknown frame slot {instr.name!r}"
                    )
                code.append((_OP_FRAME, reg(instr.dst), slot.offset))
            elif op is Opcode.GADDR:
                address = self._global_addresses.get(instr.name)
                if address is None:
                    raise ILError(f"unknown global {instr.name!r}")
                code.append((_OP_CONST, reg(instr.dst), address))
            elif op is Opcode.FADDR:
                code.append((_OP_CONST, reg(instr.dst), self._function_pointer(instr.name)))
            elif op is Opcode.CALL:
                dst = reg(instr.dst) if instr.dst is not None else -1
                args = tuple(operand(a) for a in instr.args)
                if instr.name in self.module.functions:
                    callee = self.module.functions[instr.name]
                    if len(args) != len(callee.params):
                        # Indirect calls trap on arity mismatch at run
                        # time; direct calls are fully resolved here, so
                        # reject them at link time instead of letting
                        # extra args overwrite callee temporaries.
                        raise ILError(
                            f"{function.name}: call to {instr.name} at site"
                            f" {instr.site} passes {len(args)} args,"
                            f" expected {len(callee.params)}"
                        )
                    code.append((_OP_CALLU, dst, instr.name, args, instr.site))
                else:
                    entry = BUILTINS.get(instr.name)
                    impl = None
                    if entry is not None:
                        nargs, impl = entry
                        if nargs != len(args):
                            raise ILError(
                                f"builtin {instr.name} takes {nargs} args,"
                                f" called with {len(args)}"
                            )
                    code.append(
                        (_OP_CALLB, dst, impl, args, instr.site, instr.name)
                    )
            elif op is Opcode.ICALL:
                dst = reg(instr.dst) if instr.dst is not None else -1
                args = tuple(operand(a) for a in instr.args)
                code.append((_OP_ICALL, dst, operand(instr.a), args, instr.site))
            elif op is Opcode.RET:
                code.append((_OP_RET, operand(instr.a) if instr.a is not None else None))
            elif op is Opcode.JUMP:
                code.append((_OP_JUMP, label_at[instr.label]))
            elif op is Opcode.CJUMP:
                key = (function.name, il_index) if self._collect_branches else None
                code.append(
                    (
                        _OP_CJUMP,
                        operand(instr.a),
                        label_at[instr.label],
                        label_at[instr.label2],
                        key,
                    )
                )
            elif op is Opcode.SWITCH:
                table = {value: label_at[label] for value, label in instr.cases}
                code.append(
                    (_OP_SWITCH, operand(instr.a), table, label_at[instr.label2])
                )
            else:  # pragma: no cover
                raise ILError(f"cannot compile opcode {op}")
        compiled.nregs = len(regmap)
        return compiled

    # ------------------------------------------------------------------
    # services used by builtins

    def heap_alloc(self, size: int) -> int:
        address = self._heap_top
        rounded = (max(size, 1) + 7) // 8 * 8
        if self._heap_top + rounded - self._heap_start > self._heap_limit:
            raise VMTrap("out of heap memory")
        self._heap_top += rounded
        self._mem.extend(b"\x00" * rounded)
        return address

    def read_cstring_bytes(self, address: int) -> bytes:
        mem = self._mem
        if address < _NULL_GUARD:
            raise VMTrap(f"string read through bad pointer {address}")
        end = mem.find(b"\x00", address)
        if end < 0:
            raise VMTrap("unterminated string in VM memory")
        return bytes(mem[address:end])

    def write_bytes(self, address: int, data: bytes) -> None:
        if address < _NULL_GUARD or address + len(data) > len(self._mem):
            raise VMTrap(f"block write to bad address {address}")
        self._mem[address : address + len(data)] = data

    def read_byte(self, address: int) -> int:
        if address < _NULL_GUARD or address >= len(self._mem):
            raise VMTrap(f"block read from bad address {address}")
        return self._mem[address]

    def read_bytes(self, address: int, length: int) -> bytes:
        if address < _NULL_GUARD or address + length > len(self._mem):
            raise VMTrap(f"block read from bad address {address}")
        return bytes(self._mem[address : address + length])

    def mem_bounds_ok(self, address: int, length: int) -> bool:
        """Whether ``[address, address+length)`` is fully mapped.

        Block-transfer builtins use this to pick the bulk path; windows
        that touch unmapped memory fall back to byte-at-a-time loops so
        partial-progress-then-trap behaviour stays exactly as specified.
        """
        return address >= _NULL_GUARD and address + length <= len(self._mem)

    # ------------------------------------------------------------------
    # execution

    def run(self) -> RunResult:
        if self._ran:
            raise ILError(
                "Machine is single-shot: run() was already called;"
                " build a new Machine to execute again"
            )
        self._ran = True
        entry = self._compiled.get(self.module.entry)
        if entry is None:
            raise ILError(f"entry function {self.module.entry!r} not found")
        args: list[int] = []
        if entry.nparams == 2:
            args = self._setup_argv()
        elif entry.nparams != 0:
            raise ILError(
                f"{self.module.entry} must take 0 or 2 parameters,"
                f" has {entry.nparams}"
            )
        try:
            if self._engine == "fast":
                from repro.vm.fast import run_fast

                exit_code = run_fast(self, entry, args)
            else:
                exit_code = self._execute(entry, args)
        except ExitSignal as signal:
            exit_code = signal.code
        if self._metrics is not None:
            metrics = self._metrics
            metrics.inc("vm.runs")
            metrics.inc("vm.instructions_retired", self.counters.il)
            metrics.inc("vm.control_transfers", self.counters.ct)
            metrics.inc("vm.calls", self.counters.calls)
            metrics.inc("vm.returns", self.counters.returns)
        return RunResult(exit_code, self.counters, self.os)

    def _setup_argv(self) -> list[int]:
        argv = [self.module.entry, *self.os.argv]
        pointers = []
        for arg in argv:
            data = arg.encode("latin-1") + b"\x00"
            address = self.heap_alloc(len(data))
            self.write_bytes(address, data)
            pointers.append(address)
        table = self.heap_alloc(4 * (len(pointers) + 1))
        for index, pointer in enumerate(pointers):
            self.write_bytes(table + 4 * index, pointer.to_bytes(4, "little"))
        return [len(pointers), table]

    def _execute(self, entry: _CompiledFunction, args: list[int]) -> int:
        mem = self._mem
        os = self.os
        counters = self.counters
        fuel = self._fuel
        compiled = self._compiled
        function_table = self._function_table
        stack_limit = self._stack_limit
        site_counts = counters.site_counts
        func_counts = counters.func_counts
        branch_counts = counters.branch_counts
        icache = self.icache

        n_il = 0
        n_ct = 0
        n_calls = 0
        n_rets = 0

        current = entry
        code = entry.code
        regs = [0] * entry.nregs
        regs[: len(args)] = args
        pc = 0
        fp = self._sp
        sp = fp + entry.frame_size
        if sp > stack_limit:
            raise VMTrap("control stack overflow at entry")
        func_counts[entry.name] = func_counts.get(entry.name, 0) + 1
        call_stack: list[tuple] = []

        try:
            while True:
                ins = code[pc]
                if icache is not None:
                    icache.access(current.base + 4 * pc)
                pc += 1
                n_il += 1
                if n_il > fuel:
                    raise VMTrap(f"fuel exhausted after {n_il} instructions")
                op = ins[0]

                if op == _OP_BIN:
                    a = ins[3]
                    b = ins[4]
                    regs[ins[1]] = ins[2](
                        regs[a] if type(a) is int else a[0],
                        regs[b] if type(b) is int else b[0],
                    )
                elif op == _OP_LOAD4:
                    a = ins[2]
                    address = regs[a] if type(a) is int else a[0]
                    if address < _NULL_GUARD or address + 4 > len(mem):
                        raise VMTrap(f"load4 from bad address {address}")
                    regs[ins[1]] = int.from_bytes(
                        mem[address : address + 4], "little", signed=True
                    )
                elif op == _OP_CJUMP:
                    a = ins[1]
                    value = regs[a] if type(a) is int else a[0]
                    if value:
                        pc = ins[2]
                        taken = 0
                    else:
                        pc = ins[3]
                        taken = 1
                    n_ct += 1
                    key = ins[4]
                    if key is not None:
                        pair = branch_counts.setdefault(key, [0, 0])
                        pair[taken] += 1
                elif op == _OP_CONST:
                    regs[ins[1]] = ins[2]
                elif op == _OP_MOV:
                    a = ins[2]
                    regs[ins[1]] = regs[a] if type(a) is int else a[0]
                elif op == _OP_STORE4:
                    a = ins[1]
                    address = regs[a] if type(a) is int else a[0]
                    b = ins[2]
                    value = regs[b] if type(b) is int else b[0]
                    if address < _NULL_GUARD or address + 4 > len(mem):
                        raise VMTrap(f"store4 to bad address {address}")
                    mem[address : address + 4] = (value & _INT_MASK).to_bytes(
                        4, "little"
                    )
                elif op == _OP_LOAD1:
                    a = ins[2]
                    address = regs[a] if type(a) is int else a[0]
                    if address < _NULL_GUARD or address >= len(mem):
                        raise VMTrap(f"load1 from bad address {address}")
                    byte = mem[address]
                    regs[ins[1]] = (byte ^ 0x80) - 0x80
                elif op == _OP_STORE1:
                    a = ins[1]
                    address = regs[a] if type(a) is int else a[0]
                    b = ins[2]
                    value = regs[b] if type(b) is int else b[0]
                    if address < _NULL_GUARD or address >= len(mem):
                        raise VMTrap(f"store1 to bad address {address}")
                    mem[address] = value & 0xFF
                elif op == _OP_FRAME:
                    regs[ins[1]] = fp + ins[2]
                elif op == _OP_JUMP:
                    pc = ins[1]
                    n_ct += 1
                elif op == _OP_CALLU:
                    callee = compiled[ins[2]]
                    n_calls += 1
                    site = ins[4]
                    site_counts[site] = site_counts.get(site, 0) + 1
                    func_counts[callee.name] = func_counts.get(callee.name, 0) + 1
                    new_regs = [0] * callee.nregs
                    arg_ops = ins[3]
                    for index, a in enumerate(arg_ops):
                        new_regs[index] = regs[a] if type(a) is int else a[0]
                    call_stack.append((current, code, regs, pc, fp, ins[1]))
                    current = callee
                    code = callee.code
                    regs = new_regs
                    pc = 0
                    fp = sp
                    sp = fp + callee.frame_size
                    if sp > stack_limit:
                        raise VMTrap(
                            f"control stack overflow calling {callee.name}"
                            f" (depth {len(call_stack)})"
                        )
                elif op == _OP_CALLB:
                    impl = ins[2]
                    name = ins[5]
                    if impl is None:
                        raise VMTrap(f"call to unavailable external {name!r}")
                    n_calls += 1
                    site = ins[4]
                    site_counts[site] = site_counts.get(site, 0) + 1
                    func_counts[name] = func_counts.get(name, 0) + 1
                    values = [
                        regs[a] if type(a) is int else a[0] for a in ins[3]
                    ]
                    result = impl(self, *values)
                    n_rets += 1
                    if ins[1] >= 0:
                        regs[ins[1]] = result if result is not None else 0
                elif op == _OP_ICALL:
                    a = ins[2]
                    pointer = regs[a] if type(a) is int else a[0]
                    if pointer >= 0:
                        raise VMTrap(f"indirect call through bad pointer {pointer}")
                    index = -1 - pointer
                    if index >= len(function_table):
                        raise VMTrap(f"indirect call through bad pointer {pointer}")
                    kind, name = function_table[index]
                    n_calls += 1
                    site = ins[4]
                    site_counts[site] = site_counts.get(site, 0) + 1
                    func_counts[name] = func_counts.get(name, 0) + 1
                    values = [
                        regs[x] if type(x) is int else x[0] for x in ins[3]
                    ]
                    if kind == "b":
                        entry_builtin = BUILTINS.get(name)
                        if entry_builtin is None:
                            raise VMTrap(f"indirect call to unavailable {name!r}")
                        result = entry_builtin[1](self, *values)
                        n_rets += 1
                        if ins[1] >= 0:
                            regs[ins[1]] = result if result is not None else 0
                    else:
                        callee = compiled[name]
                        if len(values) != callee.nparams:
                            raise VMTrap(
                                f"indirect call to {name} with {len(values)} args,"
                                f" expected {callee.nparams}"
                            )
                        new_regs = [0] * callee.nregs
                        new_regs[: len(values)] = values
                        call_stack.append((current, code, regs, pc, fp, ins[1]))
                        current = callee
                        code = callee.code
                        regs = new_regs
                        pc = 0
                        fp = sp
                        sp = fp + callee.frame_size
                        if sp > stack_limit:
                            raise VMTrap(
                                f"control stack overflow calling {name}"
                                f" (depth {len(call_stack)})"
                            )
                elif op == _OP_RET:
                    a = ins[1]
                    value = 0
                    if a is not None:
                        value = regs[a] if type(a) is int else a[0]
                    if not call_stack:
                        # The entry frame's return has no matching call
                        # instruction, so it does not count as a dynamic
                        # return (the paper assumes calls == returns).
                        return value
                    n_rets += 1
                    sp = fp
                    current, code, regs, pc, fp, dst = call_stack.pop()
                    if dst >= 0:
                        regs[dst] = value
                elif op == _OP_UN:
                    a = ins[3]
                    regs[ins[1]] = ins[2](regs[a] if type(a) is int else a[0])
                elif op == _OP_SWITCH:
                    a = ins[1]
                    value = regs[a] if type(a) is int else a[0]
                    pc = ins[2].get(value, ins[3])
                    n_ct += 1
                else:  # pragma: no cover
                    raise VMTrap(f"unknown compiled opcode {op}")
        finally:
            counters.il += n_il
            counters.ct += n_ct
            counters.calls += n_calls
            counters.returns += n_rets
