"""Dynamic execution counters collected by the VM."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counters:
    """Raw dynamic counts from one program run.

    ``il`` counts every executed real IL instruction (the paper's
    "intermediate instructions"). ``ct`` counts control transfers other
    than call/return (jump, conditional jump, switch), matching Table 1's
    *control* column. ``calls`` counts every dynamic call — to user
    functions, through pointers, and to externals alike.
    """

    il: int = 0
    ct: int = 0
    calls: int = 0
    returns: int = 0
    #: dynamic invocation count per static call site (the arc weights).
    site_counts: dict[int, int] = field(default_factory=dict)
    #: entry count per function, user and external (the node weights).
    func_counts: dict[str, int] = field(default_factory=dict)
    #: (function, pc) -> [taken, not-taken] for conditional branches.
    branch_counts: dict[tuple[str, int], list[int]] = field(default_factory=dict)

    def merge(self, other: "Counters") -> None:
        """Accumulate another run's counts into this one."""
        self.il += other.il
        self.ct += other.ct
        self.calls += other.calls
        self.returns += other.returns
        for site, count in other.site_counts.items():
            self.site_counts[site] = self.site_counts.get(site, 0) + count
        for name, count in other.func_counts.items():
            self.func_counts[name] = self.func_counts.get(name, 0) + count
        for key, pair in other.branch_counts.items():
            mine = self.branch_counts.setdefault(key, [0, 0])
            mine[0] += pair[0]
            mine[1] += pair[1]

    def to_summary(self) -> dict[str, int]:
        """The four scalar totals as a JSON-ready dict (bench records)."""
        return {
            "il": self.il,
            "ct": self.ct,
            "calls": self.calls,
            "returns": self.returns,
        }

    def scaled(self, divisor: float) -> "Counters":
        """Return averaged counters (used to average over N runs)."""
        result = Counters(
            il=int(self.il / divisor),
            ct=int(self.ct / divisor),
            calls=int(self.calls / divisor),
            returns=int(self.returns / divisor),
        )
        result.site_counts = {
            site: count / divisor for site, count in self.site_counts.items()
        }
        result.func_counts = {
            name: count / divisor for name, count in self.func_counts.items()
        }
        result.branch_counts = {
            key: [pair[0] / divisor, pair[1] / divisor]
            for key, pair in self.branch_counts.items()
        }
        return result
