"""IL virtual machine.

Executes an :class:`~repro.il.module.ILModule` with a byte-addressable
memory, an explicit control stack, and a virtual OS providing the
external ("system call") functions. While running it counts dynamic
intermediate instructions, control transfers, and per-call-site
invocation counts — the raw material of the paper's profiles.

Two execution engines share the front-end and produce identical
counters: the reference ``counting`` interpreter, and the opt-in
``fast`` tier (:mod:`repro.vm.fast`) that compiles each function's
basic blocks into Python closures. Select one with
``Machine(..., engine="fast")``; :data:`~repro.vm.machine.ENGINES`
lists the valid names.
"""

from repro.vm.counters import Counters
from repro.vm.machine import DEFAULT_HEAP_LIMIT, ENGINES, Machine, RunResult
from repro.vm.os import VirtualOS

__all__ = [
    "Counters",
    "DEFAULT_HEAP_LIMIT",
    "ENGINES",
    "Machine",
    "RunResult",
    "VirtualOS",
]
