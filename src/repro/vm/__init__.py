"""IL virtual machine.

Executes an :class:`~repro.il.module.ILModule` with a byte-addressable
memory, an explicit control stack, and a virtual OS providing the
external ("system call") functions. While running it counts dynamic
intermediate instructions, control transfers, and per-call-site
invocation counts — the raw material of the paper's profiles.
"""

from repro.vm.counters import Counters
from repro.vm.machine import Machine, RunResult
from repro.vm.os import VirtualOS

__all__ = ["Counters", "Machine", "RunResult", "VirtualOS"]
