"""The virtual operating system behind the VM's external functions.

The paper's benchmarks call UNIX system calls and library routines whose
bodies the compiler cannot see; those are exactly the calls routed to
the ``$$$`` node. Here the same role is played by :class:`VirtualOS`: an
in-memory stdin/stdout, a flat in-memory filesystem, and a bump-pointer
heap service, all deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VMTrap

O_READ = 0
O_WRITE = 1
EOF = -1


@dataclass
class _OpenFile:
    path: str
    mode: int
    data: bytearray
    pos: int = 0


@dataclass
class VirtualOS:
    """Deterministic, in-memory OS state for one run."""

    stdin: bytes = b""
    files: dict[str, bytes] = field(default_factory=dict)
    argv: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.written_files: dict[str, bytes] = {}
        self._stdin_pos = 0
        self._fds: dict[int, _OpenFile] = {}
        self._next_fd = 3  # 0/1/2 reserved for std streams
        self.exit_code: int | None = None

    # ------------------------------------------------------------------
    # standard streams

    def getchar(self) -> int:
        if self._stdin_pos >= len(self.stdin):
            return EOF
        byte = self.stdin[self._stdin_pos]
        self._stdin_pos += 1
        return byte

    def putchar(self, char: int) -> int:
        self.stdout.append(char & 0xFF)
        return char & 0xFF

    def put_stderr(self, char: int) -> int:
        self.stderr.append(char & 0xFF)
        return char & 0xFF

    # Bulk variants of the byte-stream calls. Each is observably a loop
    # over its single-byte counterpart; the block-transfer builtins use
    # them so a 4 KiB stdio refill is one slice instead of 4096 calls.

    def stdin_avail(self) -> int:
        return len(self.stdin) - self._stdin_pos

    def getchar_bulk(self, maximum: int) -> bytes:
        pos = self._stdin_pos
        data = self.stdin[pos : pos + maximum]
        self._stdin_pos = pos + len(data)
        return data

    def putchar_bulk(self, data: bytes) -> int:
        self.stdout += data
        return len(data)

    # ------------------------------------------------------------------
    # files

    def open(self, path: str, mode: int) -> int:
        if mode == O_READ:
            if path not in self.files:
                return EOF
            handle = _OpenFile(path, mode, bytearray(self.files[path]))
        elif mode == O_WRITE:
            handle = _OpenFile(path, mode, bytearray())
        else:
            raise VMTrap(f"open: bad mode {mode}")
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def close(self, fd: int) -> int:
        handle = self._fds.pop(fd, None)
        if handle is None:
            return EOF
        if handle.mode == O_WRITE:
            self.written_files[handle.path] = bytes(handle.data)
        return 0

    def _handle(self, fd: int) -> _OpenFile:
        handle = self._fds.get(fd)
        if handle is None:
            raise VMTrap(f"bad file descriptor {fd}")
        return handle

    def fgetc(self, fd: int) -> int:
        handle = self._handle(fd)
        if handle.pos >= len(handle.data):
            return EOF
        byte = handle.data[handle.pos]
        handle.pos += 1
        return byte

    def favail(self, fd: int) -> int | None:
        """Bytes left before EOF on ``fd``, or None for a bad fd."""
        handle = self._fds.get(fd)
        if handle is None:
            return None
        return len(handle.data) - handle.pos

    def fgetc_bulk(self, fd: int, maximum: int) -> bytes:
        handle = self._handle(fd)
        pos = handle.pos
        data = bytes(handle.data[pos : pos + maximum])
        handle.pos = pos + len(data)
        return data

    def fputc_bulk(self, fd: int, data: bytes) -> int:
        if fd == 1:
            return self.putchar_bulk(data)
        if fd == 2:
            self.stderr += data
            return len(data)
        handle = self._handle(fd)
        if handle.mode != O_WRITE:
            raise VMTrap(f"fputc on read-only fd {fd}")
        handle.data += data
        return len(data)

    def fputc(self, char: int, fd: int) -> int:
        if fd == 1:
            return self.putchar(char)
        if fd == 2:
            return self.put_stderr(char)
        handle = self._handle(fd)
        if handle.mode != O_WRITE:
            raise VMTrap(f"fputc on read-only fd {fd}")
        handle.data.append(char & 0xFF)
        return char & 0xFF

    def fsize(self, fd: int) -> int:
        return len(self._handle(fd).data)

    def rewind(self, fd: int) -> int:
        self._handle(fd).pos = 0
        return 0

    # ------------------------------------------------------------------

    def stdout_text(self) -> str:
        return self.stdout.decode("latin-1")

    def stderr_text(self) -> str:
        return self.stderr.decode("latin-1")
