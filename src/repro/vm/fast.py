"""The fast execution tier: closure compilation of linked IL code.

The counting interpreter in :mod:`repro.vm.machine` pays a full dispatch
round (tuple fetch, opcode compare chain, operand boxing checks) for
every executed IL instruction. This module removes that overhead by
*compiling* each linked :class:`~repro.vm.machine._CompiledFunction`
into Python closures fused over control-flow regions
("superinstructions"):

- The function body is split into basic blocks (leaders: entry, jump /
  switch targets, the instruction after every control transfer or
  call). Each block becomes one generated Python closure whose body is
  straight-line Python — operand fetches, 32-bit wrapping arithmetic,
  and memory bounds checks are inlined with no per-instruction
  dispatch at all.
- Each closure greedily *inlines* its forward successors (both arms of
  a conditional, jump chains, fallthroughs, call continuations) up to
  a per-closure instruction budget, duplicating join blocks instead of
  bouncing through the driver. A branch back to the closure's own
  entry block compiles to ``continue`` of a surrounding ``while``
  loop, so hot inner loops run entirely inside one Python frame.
- Virtual registers are promoted to Python locals for the lifetime of
  a closure invocation: only live-in registers (and, for closures with
  back-edges, loop-carried ones) are unpacked from the register file
  on entry, and modified locals are written back only where control
  leaves the closure (cold branches, switches, deep calls).
- *Leaf* callees (acyclic, no calls to other user functions, no
  switch) are expanded transparently into the caller's closure with
  renamed locals — while still bumping the call/site/function/return
  counters, so the profile the paper's inliner consumes is untouched.
  This is the fast tier quietly agreeing with the paper: most dynamic
  calls go to small leaves, and expanding them wins.
- Remaining user calls are *direct Python calls*: the call site
  invokes the callee's entry closure inline and resumes in the same
  Python frame, so the caller's promoted registers survive the call
  with no spill at all. Beyond a fixed IL call depth (`_DEPTH_LIMIT`)
  call sites switch to returning a request tuple that an
  explicit-stack trampoline (``drive``) executes iteratively, so IL
  recursion of any depth — the reference interpreter bounds it only by
  stack memory, not Python frames — can never overflow the host stack.
- Dynamic-instruction accounting is *deferred along straight paths*:
  instruction and control-transfer counts accumulate as compile-time
  constants along each tail-duplicated path and flush as a single
  ``st[0] += n`` / ``st[1] += m`` at segment points (calls, closure
  exits, loop back-edges), so counters are exact at every call and on
  every successful run even when a builtin raises
  :class:`~repro.vm.builtins.ExitSignal` mid-block.

The tier is proven against the reference interpreter: for every
successful run it produces the exact same :class:`~repro.vm.counters.
Counters` — ``il``/``ct``/``calls``/``returns`` totals and the
``site_counts``/``func_counts``/``branch_counts`` dicts — and identical
outputs (see :mod:`repro.verify.engines` and the ``fast-tier-smoke`` CI
job). Divergences exist only on *aborted* runs: fuel exhaustion is
detected at region granularity (the trap still fires, but the reported
instruction count may differ from the reference by up to one closure's
inline budget), and a :class:`~repro.errors.VMTrap` mid-segment leaves
that segment's trailing instructions partially counted.

Generated code is a pure function of the linked instruction stream, so
factory sources are cached process-wide keyed on a structural
fingerprint of the compiled tuples and byte-compiled lazily, one
function at a time, the first time a run actually calls that function.
Re-running the same module (profiling loops, differential checks, fuzz
replay) pays code generation once, and functions that never execute
are never compiled.
"""

from __future__ import annotations

import struct
import sys
import threading
import weakref
from collections import OrderedDict

from repro.errors import VMTrap
from repro.vm.builtins import BUILTINS
from repro.vm.machine import (
    _BINOPS,
    _OP_BIN,
    _OP_CALLB,
    _OP_CALLU,
    _OP_CJUMP,
    _OP_CONST,
    _OP_FRAME,
    _OP_ICALL,
    _OP_JUMP,
    _OP_LOAD1,
    _OP_LOAD4,
    _OP_MOV,
    _OP_RET,
    _OP_STORE1,
    _OP_STORE4,
    _OP_SWITCH,
    _OP_UN,
    _UNOPS,
)

#: Operator symbol for each interpreter lambda (codegen inlines these).
_BIN_SYMBOL = {fn: symbol for symbol, fn in _BINOPS.items()}
_UN_SYMBOL = {fn: symbol for symbol, fn in _UNOPS.items()}

#: Comparison operators produce bare 0/1 and need no 32-bit wrap.
_COMPARISONS = {"<", ">", "<=", ">=", "==", "!="}

_TERMINATORS = (
    _OP_JUMP, _OP_CJUMP, _OP_SWITCH, _OP_RET, _OP_CALLU, _OP_ICALL,
)

#: How many instructions each closure may inline beyond its entry
#: block. Join blocks get tail-duplicated into both arms, so this caps
#: generated code growth; the budget is shared across the whole tree.
_INLINE_BUDGET = 256

#: Leaf callees whose fully tail-duplicated expansion exceeds this many
#: instructions are called through the normal protocol instead.
_LEAF_EXPANSION_CAP = 64

#: IL call depth beyond which call sites stop recursing into Python
#: and hand the callee to the explicit-stack trampoline instead. One
#: Python frame is consumed per direct IL call level.
_DEPTH_LIMIT = 512

#: Python recursion headroom needed for `_DEPTH_LIMIT` direct calls
#: plus builtins and the surrounding application stack.
_PY_STACK_NEED = 3000

#: Process-wide factory cache: structural code fingerprint -> module
#: factory table (sources compiled lazily, shared across machines).
_FACTORY_CACHE: OrderedDict[tuple, "_FactoryTable"] = OrderedDict()
_FACTORY_CACHE_LIMIT = 32
_FACTORY_LOCK = threading.Lock()

#: Fingerprint memo: source module -> {collect_branches: fingerprint}.
#: Linking the same module with the same flags always produces the same
#: instruction stream, so the (expensive) canonicalisation runs once
#: per module instead of once per run.
_FP_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

_UNPACK4 = struct.Struct("<i").unpack_from
_PACK4 = struct.Struct("<I").pack_into


class _FastFunction:
    """Per-machine shell for one closure-compiled function."""

    __slots__ = ("name", "nregs", "nparams", "frame_size", "entry")

    def __init__(self, name: str, nregs: int, nparams: int, frame_size: int):
        self.name = name
        self.nregs = nregs
        self.nparams = nparams
        self.frame_size = frame_size
        #: Entry block closure; None until the function first runs.
        self.entry = None


class _FactoryTable:
    """Lazily byte-compiled factory sources for one module shape.

    Shared by every machine whose linked code has the same fingerprint;
    each function's source is compiled at most once per process (a
    benign race under threads re-compiles identical source).
    """

    __slots__ = ("sources", "factories")

    def __init__(self, sources: dict[str, str]):
        self.sources = sources
        self.factories: dict = {}

    def get(self, name: str):
        factory = self.factories.get(name)
        if factory is None:
            namespace: dict = {}
            exec(
                compile(self.sources[name], "<repro-fast-tier>", "exec"),
                namespace,
            )
            factory = namespace[f"_factory_{name}"]
            self.factories[name] = factory
        return factory


# ----------------------------------------------------------------------
# structural fingerprint (cache key)


def _code_fingerprint(compiled: dict) -> tuple:
    """Flatten the linked instruction stream into a hashable key.

    Callables (builtin impls, operator lambdas) are module-level
    singletons, so identity is a stable process-wide token. Marker
    strings can never collide with payload strings (function and
    builtin names are C identifiers).
    """
    parts = []
    for name, function in compiled.items():
        flat: list = [
            name, function.nregs, function.nparams, function.frame_size,
        ]
        append = flat.append
        for ins in function.code:
            append("|")
            for item in ins:
                kind = type(item)
                if kind is int or kind is str or item is None:
                    append(item)
                elif kind is tuple:
                    append("(")
                    for sub in item:
                        if type(sub) is tuple:  # boxed immediate
                            append("#")
                            append(sub[0])
                        else:
                            append(sub)
                    append(")")
                elif kind is dict:
                    append("{")
                    for key in sorted(item):
                        append(key)
                        append(item[key])
                    append("}")
                else:  # callable
                    append(id(item))
        parts.append(tuple(flat))
    return tuple(parts)


# ----------------------------------------------------------------------
# code generation


def _block_starts(code: list) -> list[int]:
    starts = {0, len(code)}
    for pc, ins in enumerate(code):
        op = ins[0]
        if op == _OP_JUMP:
            starts.add(ins[1])
            starts.add(pc + 1)
        elif op == _OP_CJUMP:
            starts.add(ins[2])
            starts.add(ins[3])
            starts.add(pc + 1)
        elif op == _OP_SWITCH:
            starts.update(ins[2].values())
            starts.add(ins[3])
            starts.add(pc + 1)
        elif op in (_OP_RET, _OP_CALLU, _OP_ICALL):
            starts.add(pc + 1)
    return sorted(start for start in starts if start <= len(code))


def _leaf_expansion_size(function) -> tuple[int, int | None] | None:
    """(expansion size, loop header block) for an inlinable leaf.

    A *leaf* makes no user or indirect calls and has no switch, so its
    whole body can be expanded into a caller with every path ending in
    a return or trap, never needing the caller's driver protocol.
    Builtin calls are fine. Backward branches are allowed when they all
    target one common header that dominates them — the expansion wraps
    that region in a nested ``while`` whose returns ``break`` out, so
    loop-containing string/scan helpers inline too. Returns None when
    the function is not expandable (or too large).
    """
    code = function.code
    header_pc: int | None = None
    for pc, ins in enumerate(code):
        op = ins[0]
        if op in (_OP_CALLU, _OP_ICALL, _OP_SWITCH):
            return None
        targets = ()
        if op == _OP_JUMP:
            targets = (ins[1],)
        elif op == _OP_CJUMP:
            targets = (ins[2], ins[3])
        for target in targets:
            if target <= pc:
                if header_pc is None:
                    header_pc = target
                elif header_pc != target:
                    return None  # two distinct loops: not expandable
    starts = _block_starts(code)
    block_of = {start: i for i, start in enumerate(starts)}
    header = None if header_pc is None else block_of[header_pc]

    def successors(index: int):
        start = starts[index]
        end = starts[index + 1] if index + 1 < len(starts) else len(code)
        if start >= len(code):
            return ()
        terminator = code[end - 1]
        op = terminator[0]
        if op == _OP_JUMP:
            return (block_of[terminator[1]],)
        if op == _OP_CJUMP:
            return (block_of[terminator[2]], block_of[terminator[3]])
        if op == _OP_RET:
            return ()
        return (block_of[end],) if end in block_of else ()

    if header is not None and header != 0:
        # The generated `continue` is only well-formed if every
        # back-edge source sits inside the header's `while` — i.e. is
        # unreachable without passing through the header. Reject jumps
        # into the middle of the loop.
        seen = {0}
        work = [0]
        while work:
            for successor in successors(work.pop()):
                if successor != header and successor not in seen:
                    seen.add(successor)
                    work.append(successor)
        for pc, ins in enumerate(code):
            op = ins[0]
            back = (
                op == _OP_JUMP and ins[1] <= pc
            ) or (op == _OP_CJUMP and (ins[2] <= pc or ins[3] <= pc))
            if back:
                source = block_of[
                    max(s for s in starts if s <= pc and s < len(code))
                ]
                if source in seen:
                    return None

    memo: dict[int, int] = {}
    in_progress: set[int] = set()

    def expansion(index: int) -> int:
        if index in memo:
            return memo[index]
        if index in in_progress:  # back-edge: compiles to `continue`
            return 0
        in_progress.add(index)
        start = starts[index]
        end = starts[index + 1] if index + 1 < len(starts) else len(code)
        if start >= len(code):
            in_progress.discard(index)
            return 1
        size = end - start
        terminator = code[end - 1]
        op = terminator[0]
        if op == _OP_JUMP:
            size += expansion(block_of[terminator[1]])
        elif op == _OP_CJUMP:
            size += expansion(block_of[terminator[2]])
            size += expansion(block_of[terminator[3]])
        elif op != _OP_RET:  # fallthrough into the next block
            size += expansion(block_of[end])
        in_progress.discard(index)
        memo[index] = size
        return size

    total = expansion(0)
    return (total, header) if total <= _LEAF_EXPANSION_CAP else None


class _Frame:
    """One level of transparent expansion inside a generated closure.

    The root frame is the function the closure belongs to (registers
    ``rN``, frame pointer ``fp``). Each inlined leaf call adds a frame
    with a unique register prefix and a constant frame-pointer offset.
    """

    __slots__ = ("function", "code", "starts", "block_of", "prefix",
                 "fp_off", "depth_off", "frame_size", "retk",
                 "loop_header")

    def __init__(self, function, prefix: str, fp_off: int, depth_off: int):
        self.function = function
        self.code = function.code
        self.starts = _block_starts(function.code)
        self.block_of = {s: i for i, s in enumerate(self.starts)}
        self.prefix = prefix
        self.fp_off = fp_off
        self.depth_off = depth_off
        self.frame_size = function.frame_size
        #: Emission callback replacing RET for inlined frames; carries
        #: the caller's continuation so every return site in the
        #: expansion resumes the caller in place.
        self.retk = None
        #: Block index of the single loop header (inlined frames only).
        self.loop_header: int | None = None

    def fp_expr(self) -> str:
        return "fp" if self.fp_off == 0 else f"fp + {self.fp_off}"


class _FunctionCodegen:
    """Emits the factory source for one compiled function."""

    def __init__(self, name: str, compiled: dict,
                 leaves: dict[str, tuple[int, int | None]]):
        self.name = name
        self.compiled = compiled
        self.leaves = leaves
        self.root = _Frame(compiled[name], "", 0, 0)
        self.lines: list[str] = []
        self.bindings: dict[str, str] = {}  # identifier -> init statement
        self.switches: list[str] = []
        self._switch_count = 0
        #: Branch key -> bound alias of its [taken, not-taken] pair.
        #: run_fast pre-seeds every static key, so the binding resolves
        #: at materialisation and each arm is a plain list bump.
        self._branch_aliases: dict = {}
        # Blocks targeted by a backward branch: each gets a nested
        # `while` when reached, so inner loops never bounce through the
        # driver between iterations.
        self.root_loop_headers: set[int] = set()
        code = self.root.code
        for pc, ins in enumerate(code):
            op = ins[0]
            if op == _OP_JUMP and ins[1] <= pc:
                self.root_loop_headers.add(self.root.block_of[ins[1]])
            elif op == _OP_CJUMP:
                for target in (ins[2], ins[3]):
                    if target <= pc:
                        self.root_loop_headers.add(
                            self.root.block_of[target]
                        )
        # Per-closure emission state.
        self.body: list = []
        self.live_in: set[int] = set()
        self.assigned_anywhere: set[int] = set()
        self.has_backedge = False
        self.budget = 0
        self._inline_count = 0
        #: Textually-open nested root loops, innermost last.
        self._loop_stack: list[int] = []

    # -- emission helpers ---------------------------------------------

    def emit(self, indent: int, line: str) -> None:
        self.body.append("    " * indent + line)

    def bind(self, identifier: str, init: str) -> str:
        self.bindings.setdefault(identifier, f"    {identifier} = {init}")
        return identifier

    def assign(self, frame: _Frame, assigned: set[str], index: int) -> str:
        """Mark a register as defined on this path; return its local."""
        name = f"{frame.prefix}r{index}"
        assigned.add(name)
        if not frame.prefix:
            self.assigned_anywhere.add(index)
        return name

    def operand(self, frame: _Frame, value, assigned: set[str]) -> str:
        """Expression for one operand.

        Root-frame reads before a path assignment make the register
        live-in (unpacked at closure entry). Inlined-frame reads before
        a path assignment fold to the register's initial value, 0 —
        every emitted location sits on exactly one tail-duplicated path
        from the expansion entry, so "not assigned here" means "still
        holds its initial zero".
        """
        if type(value) is int:
            name = f"{frame.prefix}r{value}"
            if name not in assigned:
                if frame.prefix:
                    return "0"
                self.live_in.add(value)
            return name
        return repr(value[0])

    def _wrap_assign(self, indent: int, target: str, expression: str) -> None:
        """32-bit two's-complement wrap of ``expression`` into ``target``."""
        self.emit(indent, f"t = {expression} & 4294967295")
        self.emit(
            indent, f"{target} = t - 4294967296 if t & 2147483648 else t"
        )

    def _flush(self, indent: int, pil: int, pct: int,
               pca: int = 0, prt: int = 0) -> None:
        """Account deferred il / ct / call / return counts.

        Every flush point dominates the next builtin invocation and
        every closure exit, so the shared counter segment is exact
        whenever foreign code (or the driver) can observe it.
        """
        if pil:
            self.emit(indent, f"st[0] += {pil}")
        if pct:
            self.emit(indent, f"st[1] += {pct}")
        if pca:
            self.emit(indent, f"st[2] += {pca}")
        if prt:
            self.emit(indent, f"st[3] += {prt}")

    def _bump(self, indent: int, counts: str, key) -> None:
        """Exact equivalent of ``d[k] = d.get(k, 0) + 1``, hot-path cheap."""
        self.emit(indent, "try:")
        self.emit(indent, f"    {counts}[{key!r}] += 1")
        self.emit(indent, "except KeyError:")
        self.emit(indent, f"    {counts}[{key!r}] = 1")

    def _writeback(self, indent: int, assigned: set[str]) -> None:
        """Spill modified root-frame locals back to the register file.

        Emitted as a placeholder and expanded once the whole closure is
        generated: when the closure contains a back-edge, locals
        assigned on *any* path may carry state from a previous loop
        iteration into this exit, so the spill must cover the
        closure-wide assigned set, not just the current path's.
        Inlined-frame registers never spill — they are dead at every
        closure exit.
        """
        roots = frozenset(
            int(name[1:]) for name in assigned if name[0] == "r"
        )
        self.body.append((indent, roots))

    # -- per-instruction bodies ---------------------------------------

    def _emit_simple(self, frame: _Frame, ins, indent: int,
                     assigned: set[str]) -> None:
        op = ins[0]
        if op == _OP_CONST:
            self.emit(
                indent, f"{self.assign(frame, assigned, ins[1])} = {ins[2]!r}"
            )
        elif op == _OP_MOV:
            value = self.operand(frame, ins[2], assigned)
            self.emit(
                indent, f"{self.assign(frame, assigned, ins[1])} = {value}"
            )
        elif op == _OP_BIN:
            symbol = _BIN_SYMBOL[ins[2]]
            a = self.operand(frame, ins[3], assigned)
            b = self.operand(frame, ins[4], assigned)
            target = self.assign(frame, assigned, ins[1])
            if symbol in _COMPARISONS:
                self.emit(indent, f"{target} = 1 if {a} {symbol} {b} else 0")
            elif symbol == "/":
                self.emit(indent, f"{target} = c_div({a}, {b})")
            elif symbol == "%":
                self.emit(indent, f"{target} = c_mod({a}, {b})")
            elif symbol == "<<":
                self._wrap_assign(indent, target, f"{a} << ({b} & 31)")
            elif symbol == ">>":
                self._wrap_assign(indent, target, f"{a} >> ({b} & 31)")
            else:
                self._wrap_assign(indent, target, f"{a} {symbol} {b}")
        elif op == _OP_UN:
            symbol = _UN_SYMBOL[ins[2]]
            a = self.operand(frame, ins[3], assigned)
            target = self.assign(frame, assigned, ins[1])
            if symbol == "+":
                self.emit(indent, f"{target} = {a}")
            elif symbol == "!":
                self.emit(indent, f"{target} = 0 if {a} else 1")
            elif symbol == "sxt8":
                self.emit(indent, f"{target} = (({a} & 255) ^ 128) - 128")
            else:  # "-" / "~"
                self._wrap_assign(indent, target, f"{symbol}({a})")
        elif op == _OP_LOAD4:
            address = self.operand(frame, ins[2], assigned)
            self.emit(
                indent, f"if {address} < 16 or {address} + 4 > lm:"
            )
            self.emit(
                indent,
                f"    raise VMTrap(f'load4 from bad address {{{address}}}')",
            )
            self.emit(
                indent,
                f"{self.assign(frame, assigned, ins[1])} ="
                f" U4(mem, {address})[0]",
            )
        elif op == _OP_LOAD1:
            address = self.operand(frame, ins[2], assigned)
            self.emit(indent, f"if {address} < 16 or {address} >= lm:")
            self.emit(
                indent,
                f"    raise VMTrap(f'load1 from bad address {{{address}}}')",
            )
            self.emit(
                indent,
                f"{self.assign(frame, assigned, ins[1])} ="
                f" (mem[{address}] ^ 128) - 128",
            )
        elif op == _OP_STORE4:
            address = self.operand(frame, ins[1], assigned)
            self.emit(
                indent, f"if {address} < 16 or {address} + 4 > lm:"
            )
            self.emit(
                indent,
                f"    raise VMTrap(f'store4 to bad address {{{address}}}')",
            )
            value = ins[2]
            if type(value) is not int:
                self.emit(
                    indent,
                    f"P4(mem, {address}, {value[0] & 0xFFFFFFFF})",
                )
            else:
                self.emit(
                    indent,
                    f"P4(mem, {address},"
                    f" {self.operand(frame, value, assigned)} & 4294967295)",
                )
        elif op == _OP_STORE1:
            address = self.operand(frame, ins[1], assigned)
            self.emit(indent, f"if {address} < 16 or {address} >= lm:")
            self.emit(
                indent,
                f"    raise VMTrap(f'store1 to bad address {{{address}}}')",
            )
            value = self.operand(frame, ins[2], assigned)
            self.emit(indent, f"mem[{address}] = {value} & 255")
        elif op == _OP_FRAME:
            self.emit(
                indent,
                f"{self.assign(frame, assigned, ins[1])} ="
                f" fp + {frame.fp_off + ins[2]}",
            )
        else:  # pragma: no cover - handled by callers
            raise AssertionError(f"not a simple opcode {op}")

    def _emit_callb(self, frame: _Frame, ins, indent: int,
                    assigned: set[str], pil: int, pct: int, pca: int,
                    prt: int) -> tuple[int, int, int, int]:
        """Emit a builtin call; returns the pending counts that follow.

        All deferred counts (including this call) flush before the
        implementation runs — a builtin may raise ExitSignal and the
        counter snapshot must be exact at that point. The matching
        return is deferred into the continuation.
        """
        dst, impl, args, site, name = ins[1], ins[2], ins[3], ins[4], ins[5]
        if impl is None:
            self._flush(indent, pil, pct, pca, prt)
            message = f"call to unavailable external {name!r}"
            self.emit(indent, f"raise VMTrap({message!r})")
            return 0, 0, 0, 0
        self._flush(indent, pil, pct, pca + 1, prt)
        self._bump(indent, "site_counts", site)
        self._bump(indent, "func_counts", name)
        binding = self.bind(f"B_{name}", f"builtins[{name!r}][1]")
        arguments = "".join(
            f", {self.operand(frame, arg, assigned)}" for arg in args
        )
        self.emit(indent, f"t = {binding}(M{arguments})")
        self.emit(indent, "lm = len(mem)")
        if dst >= 0:
            self.emit(
                indent,
                f"{self.assign(frame, assigned, dst)} = 0 if t is None else t",
            )
        return 0, 0, 0, 1

    def _emit_new_regs(self, callee, values, indent: int) -> None:
        if callee.nregs <= 24:
            cells = values + ["0"] * (callee.nregs - len(values))
            self.emit(indent, f"nr = [{', '.join(cells)}]")
        else:
            self.emit(indent, f"nr = [0] * {callee.nregs}")
            for index, value in enumerate(values):
                self.emit(indent, f"nr[{index}] = {value}")

    def _emit_inline_call(self, frame: _Frame, ins, cont: int, entry: int,
                          path: frozenset, indent: int, assigned: set[str],
                          pil: int, pct: int, pca: int, prt: int) -> None:
        """Expand a leaf callee into the current closure.

        Counting (call, site, function, return) is emitted exactly as
        for a protocol call — the call and its matching return simply
        join the deferred pending counts, since a pure leaf body cannot
        invoke foreign code before the next flush point. The
        stack-overflow probe stays when the callee owns frame memory —
        when its frame size is 0 the probe can never fire (the caller's
        own entry already proved ``fp + fp_off + frame_size`` is within
        the limit) and is elided.
        """
        dst, name, args, site = ins[1], ins[2], ins[3], ins[4]
        callee = self.compiled[name]
        self._bump(indent, "site_counts", site)
        self._bump(indent, "func_counts", name)
        values = [self.operand(frame, arg, assigned) for arg in args]
        self._inline_count += 1
        inner = _Frame(
            callee,
            f"i{self._inline_count}_",
            frame.fp_off + frame.frame_size,
            frame.depth_off + 1,
        )
        inner.loop_header = self.leaves[name][1]
        for index, value in enumerate(values):
            self.emit(
                indent, f"{self.assign(inner, assigned, index)} = {value}"
            )
        if callee.frame_size > 0:
            self.emit(
                indent,
                f"if {inner.fp_expr()} + {callee.frame_size} > stack_limit:",
            )
            self.emit(
                indent,
                "    raise VMTrap(f'control stack overflow calling"
                f" {name} (depth {{d + {inner.depth_off}}})')",
            )

        def return_to_caller(value_expr: str, ret_assigned: set[str],
                             ret_indent: int, ret_pil: int, ret_pct: int,
                             ret_pca: int, ret_prt: int) -> None:
            if dst >= 0:
                self.emit(
                    ret_indent,
                    f"{self.assign(frame, ret_assigned, dst)} = {value_expr}",
                )
            self._goto(
                frame, cont, entry, path, ret_assigned, ret_indent,
                ret_pil, ret_pct, ret_pca, ret_prt + 1,
            )

        inner.retk = return_to_caller
        self._gen_block(
            inner, 0, entry, path | {(inner.prefix, 0)}, assigned, indent,
            pil, pct, pca + 1, prt,
        )

    def _emit_callu(self, frame: _Frame, ins, cont: int, entry: int,
                    path: frozenset, indent: int, assigned: set[str],
                    pil: int, pct: int, pca: int, prt: int) -> None:
        """Direct call when shallow; trampoline request tuple when deep.

        The shallow arm runs the callee via plain Python recursion and
        falls straight through to the continuation in the same Python
        frame — the caller's promoted registers never touch the
        register file. One Python frame per IL depth level is safe up
        to `_DEPTH_LIMIT`; past that every call site returns a request
        tuple and ``drive`` executes the subtree with an explicit
        stack.
        """
        name = ins[2]
        callee = self.compiled[name]
        leaf = self.leaves.get(name)
        if leaf is not None and leaf[0] <= self.budget:
            self.budget -= leaf[0]
            self._emit_inline_call(
                frame, ins, cont, entry, path, indent, assigned,
                pil, pct, pca, prt,
            )
            return
        dst, args, site = ins[1], ins[3], ins[4]
        self._flush(indent, pil, pct, pca + 1, prt)
        self._bump(indent, "site_counts", site)
        self._bump(indent, "func_counts", name)
        values = [self.operand(frame, arg, assigned) for arg in args]
        self._emit_new_regs(callee, values, indent)
        binding = self.bind(f"F_{name}", f"FNS[{name!r}]")
        fp_off = frame.fp_off + frame.frame_size
        fp2 = "fp" if fp_off == 0 else f"fp + {fp_off}"
        depth = f"d + {frame.depth_off + 1}"
        self.emit(indent, f"if d < {_DEPTH_LIMIT}:")
        inner = indent + 1
        if callee.frame_size > 0:
            self.emit(
                inner, f"if {fp2} + {callee.frame_size} > stack_limit:"
            )
            self.emit(
                inner,
                "    raise VMTrap(f'control stack overflow calling"
                f" {name} (depth {{{depth}}})')",
            )
        self.emit(inner, f"blk = {binding}.entry")
        self.emit(inner, "if blk is None:")
        self.emit(inner, f"    blk = MAT({binding})")
        self.emit(inner, f"t = blk(nr, {fp2}, {depth})")
        self.emit(inner, "while t.__class__ is not tuple:")
        self.emit(inner, f"    t = t(nr, {fp2}, {depth})")
        self.emit(inner, "if len(t) != 1:")
        self.emit(inner, f"    t = drive(t, nr, {fp2}, {depth})")
        self.emit(inner, "lm = len(mem)")
        shallow = set(assigned)
        if dst >= 0:
            self.emit(inner, f"{self.assign(frame, shallow, dst)} = t[0]")
        self._goto(frame, cont, entry, path, shallow, inner, 0, 0, 0, 1)
        self.emit(indent, "else:")
        self._writeback(indent + 1, assigned)
        self.emit(
            indent + 1,
            f"return ({binding}, nr, {dst}, b{cont}, {fp2})",
        )

    def _emit_icall(self, frame: _Frame, ins, cont: int, entry: int,
                    path: frozenset, indent: int, assigned: set[str],
                    pil: int, pct: int, pca: int, prt: int) -> None:
        dst, pointer, args, site = ins[1], ins[2], ins[3], ins[4]
        self._flush(indent, pil, pct, pca, prt)
        values = ", ".join(
            self.operand(frame, arg, assigned) for arg in args
        )
        values = f"({values},)" if values else "()"
        pointer = self.operand(frame, pointer, assigned)
        fp_off = frame.fp_off + frame.frame_size
        fp2 = "fp" if fp_off == 0 else f"fp + {fp_off}"
        depth = "d" if frame.depth_off == 0 else f"d + {frame.depth_off}"
        self.emit(
            indent,
            f"t = icall({pointer}, {values}, {dst}, {site},"
            f" {fp2}, {depth}, b{cont})",
        )
        self.emit(indent, "lm = len(mem)")
        self.emit(indent, "if len(t) == 1:")
        inner = indent + 1
        shallow = set(assigned)
        if dst >= 0:
            self.emit(inner, f"{self.assign(frame, shallow, dst)} = t[0]")
        self._goto(frame, cont, entry, path, shallow, inner, 0, 0, 0, 0)
        self.emit(indent, "else:")
        self._writeback(indent + 1, assigned)
        self.emit(indent + 1, "return t")

    # -- control-flow-region emission ---------------------------------

    def _emit_inline_loop(self, frame: _Frame, index: int, entry: int,
                          path: frozenset, assigned: set[str], indent: int,
                          pil: int, pct: int, pca: int, prt: int) -> None:
        """Wrap an inlined leaf's loop region in a nested ``while``.

        Return sites inside the loop stash the value and ``break``; the
        caller's continuation is emitted once after the loop, so a
        ``continue`` emitted there still targets the *enclosing*
        closure loop. The fuel probe at the top of the body keeps this
        cycle checked — it never passes the closure entry.
        """
        self._flush(indent, pil, pct, pca, prt)
        result = f"{frame.prefix}rv"
        outer_retk = frame.retk

        def loop_retk(value_expr: str, ret_assigned: set[str],
                      ret_indent: int, ret_pil: int, ret_pct: int,
                      ret_pca: int, ret_prt: int) -> None:
            self.emit(ret_indent, f"{result} = {value_expr}")
            self._flush(ret_indent, ret_pil, ret_pct, ret_pca, ret_prt)
            self.emit(ret_indent, "break")

        frame.retk = loop_retk
        self.emit(indent, "while 1:")
        self.emit(indent + 1, "if st[0] > fuel:")
        self.emit(
            indent + 1,
            "    raise VMTrap('fuel exhausted after"
            " %d instructions' % st[0])",
        )
        self._gen_block(
            frame, index, entry, path, assigned, indent + 1,
            0, 0, 0, 0, as_loop_body=True,
        )
        frame.retk = outer_retk
        outer_retk(result, assigned, indent, 0, 0, 0, 0)

    def _block_extent(self, frame: _Frame, index: int) -> tuple[int, int]:
        start = frame.starts[index]
        end = (
            frame.starts[index + 1]
            if index + 1 < len(frame.starts)
            else len(frame.code)
        )
        return start, end

    def _goto(self, frame: _Frame, target: int, entry: int, path: frozenset,
              assigned: set[str], indent: int, pil: int, pct: int,
              pca: int = 0, prt: int = 0) -> None:
        """Transfer control to block ``target`` from inside a closure.

        Back-edges to the closure's entry block re-enter its ``while``
        loop; forward targets are inlined (tail-duplicated) while the
        budget lasts; everything else spills locals and bounces through
        the driver via the target's own closure. Inlined leaf frames
        are acyclic and fully pre-budgeted, so their transfers always
        land in the first two cases.
        """
        key = (frame.prefix, target)
        if not frame.prefix:
            if target == entry and not self._loop_stack:
                self.has_backedge = True
                self._flush(indent, pil, pct, pca, prt)
                self.emit(indent, "continue")
                return
            if (
                self._loop_stack
                and target == self._loop_stack[-1]
                and key in path
            ):
                # Back-edge of the innermost open nested loop.
                self._flush(indent, pil, pct, pca, prt)
                self.emit(indent, "continue")
                return
            # A `continue` for any other loop level would bind to the
            # wrong `while`; fall through to the bounce path (below),
            # which re-enters via the target block's own closure.
        elif target == frame.loop_header and key in path:
            # Back-edge of an inlined leaf loop: re-enter its `while`.
            self._flush(indent, pil, pct, pca, prt)
            self.emit(indent, "continue")
            return
        start, end = self._block_extent(frame, target)
        size = end - start
        if key not in path and (frame.prefix or size <= self.budget):
            if not frame.prefix:
                self.budget -= size
            self._gen_block(
                frame, target, entry, path | {key}, assigned, indent,
                pil, pct, pca, prt,
            )
            return
        self._flush(indent, pil, pct, pca, prt)
        self._writeback(indent, assigned)
        self.emit(indent, f"return b{target}")

    def _gen_block(self, frame: _Frame, index: int, entry: int,
                   path: frozenset, assigned: set[str], indent: int,
                   pil: int, pct: int, pca: int = 0, prt: int = 0,
                   as_loop_body: bool = False) -> None:
        if (
            frame.prefix
            and index == frame.loop_header
            and not as_loop_body
        ):
            self._emit_inline_loop(
                frame, index, entry, path, assigned, indent,
                pil, pct, pca, prt,
            )
            return
        if (
            not frame.prefix
            and not as_loop_body
            and index != entry
            and index in self.root_loop_headers
        ):
            # Inner loop of this function: give it its own `while` so
            # iterating never leaves the closure. Registers assigned on
            # any path may now carry values across iterations, so exits
            # must spill the closure-wide assigned set (has_backedge).
            self._flush(indent, pil, pct, pca, prt)
            self.has_backedge = True
            self._loop_stack.append(index)
            self.emit(indent, "while 1:")
            self.emit(indent + 1, "if st[0] > fuel:")
            self.emit(
                indent + 1,
                "    raise VMTrap('fuel exhausted after"
                " %d instructions' % st[0])",
            )
            self._gen_block(
                frame, index, entry, path, assigned, indent + 1,
                0, 0, 0, 0, as_loop_body=True,
            )
            self._loop_stack.pop()
            return
        start, end = self._block_extent(frame, index)
        if start >= len(frame.code):
            # Control fell (or jumped) off the end of the function; the
            # reference interpreter raises the same IndexError here.
            self._flush(indent, pil, pct, pca, prt)
            self.emit(indent, "raise IndexError('list index out of range')")
            return
        body = frame.code[start:end]
        terminator = body[-1]
        has_terminator = terminator[0] in _TERMINATORS
        straight = body[:-1] if has_terminator else body
        for ins in straight:
            pil += 1
            if ins[0] == _OP_CALLB:
                pil, pct, pca, prt = self._emit_callb(
                    frame, ins, indent, assigned, pil, pct, pca, prt
                )
            else:
                self._emit_simple(frame, ins, indent, assigned)
        if not has_terminator:
            self._goto(
                frame, frame.block_of[end], entry, path, assigned, indent,
                pil, pct, pca, prt,
            )
            return
        pil += 1
        op = terminator[0]
        if op == _OP_JUMP:
            self._goto(
                frame, frame.block_of[terminator[1]], entry, path, assigned,
                indent, pil, pct + 1, pca, prt,
            )
        elif op == _OP_CJUMP:
            pct += 1
            value = self.operand(frame, terminator[1], assigned)
            taken = frame.block_of[terminator[2]]
            fallthrough = frame.block_of[terminator[3]]
            key = terminator[4]
            self.emit(indent, f"if {value}:")
            if key is not None:
                alias = self._branch_aliases.get(key)
                if alias is None:
                    alias = f"BR{len(self._branch_aliases)}"
                    self._branch_aliases[key] = alias
                    self.bind(alias, f"branch_counts[{key!r}]")
                self.emit(indent + 1, f"{alias}[0] += 1")
            self._goto(
                frame, taken, entry, path, set(assigned), indent + 1,
                pil, pct, pca, prt,
            )
            if key is not None:
                self.emit(indent, f"{alias}[1] += 1")
            self._goto(
                frame, fallthrough, entry, path, assigned, indent,
                pil, pct, pca, prt,
            )
        elif op == _OP_SWITCH:
            self._flush(indent, pil, pct + 1, pca, prt)
            name = f"S{self._switch_count}"
            self._switch_count += 1
            entries = ", ".join(
                f"{value!r}: b{frame.block_of[target]}"
                for value, target in terminator[2].items()
            )
            self.switches.append(f"    {name} = {{{entries}}}")
            value = self.operand(frame, terminator[1], assigned)
            default = f"b{frame.block_of[terminator[3]]}"
            self._writeback(indent, assigned)
            self.emit(indent, f"return {name}.get({value}, {default})")
        elif op == _OP_RET:
            # Registers die at return: no spill needed.
            operand = terminator[1]
            value = (
                "0"
                if operand is None
                else self.operand(frame, operand, assigned)
            )
            if frame.retk is None:
                self._flush(indent, pil, pct, pca, prt)
                self.emit(indent, f"return ({value},)")
            else:
                frame.retk(value, assigned, indent, pil, pct, pca, prt)
        elif op == _OP_CALLU:
            self._emit_callu(
                frame, terminator, frame.block_of[end], entry, path, indent,
                assigned, pil, pct, pca, prt,
            )
        elif op == _OP_ICALL:
            self._emit_icall(
                frame, terminator, frame.block_of[end], entry, path, indent,
                assigned, pil, pct, pca, prt,
            )
        else:  # pragma: no cover
            raise AssertionError(f"unhandled terminator {op}")

    # -- closures ------------------------------------------------------

    def _gen_closure(self, index: int) -> None:
        self.body = []
        self.live_in = set()
        self.assigned_anywhere = set()
        self.has_backedge = False
        self.budget = _INLINE_BUDGET
        self._inline_count = 0
        self._loop_stack = []
        # The fuel probe sits at the top of every closure (and so on
        # every loop iteration and every call): all executed
        # instructions are flushed at closure exits and back-edges, so
        # st[0] is exact here and no cycle can run unchecked.
        self.emit(3, "if st[0] > fuel:")
        self.emit(
            3,
            "    raise VMTrap('fuel exhausted after"
            " %d instructions' % st[0])",
        )
        self._gen_block(
            self.root, index, index, frozenset((("", index),)), set(), 3,
            0, 0,
        )
        self.lines.append(f"    def b{index}(r, fp, d):")
        # Localise the memory bound: ``mem`` only grows, and only
        # builtins grow it, so refreshing ``lm`` at entry and after
        # every call keeps the bound exact without a ``len`` per access.
        self.lines.append("        lm = len(mem)")
        # Unpack live-in registers; a back-edge additionally keeps every
        # assigned register local across iterations, so those spill
        # targets must be defined on every path too.
        unpack = self.live_in
        if self.has_backedge:
            unpack = unpack | self.assigned_anywhere
        for register in sorted(unpack):
            self.lines.append(f"        r{register} = r[{register}]")
        # Every path through the region tree ends in continue / return /
        # raise, so the loop only repeats on back-edges to this entry.
        self.lines.append("        while 1:")
        for item in self.body:
            if type(item) is str:
                self.lines.append(item)
                continue
            indent, path_assigned = item
            spill = (
                self.assigned_anywhere if self.has_backedge else path_assigned
            )
            for register in sorted(spill):
                self.lines.append(
                    "    " * indent + f"r[{register}] = r{register}"
                )

    def generate(self) -> str:
        for index in range(len(self.root.starts)):
            self._gen_closure(index)
        header = [
            f"def _factory_{self.name}(env, FNS):",
            "    st = env['st']",
            "    mem = env['mem']",
            "    fuel = env['fuel']",
            "    site_counts = env['site_counts']",
            "    func_counts = env['func_counts']",
            "    branch_counts = env['branch_counts']",
            "    M = env['machine']",
            "    icall = env['icall']",
            "    drive = env['drive']",
            "    MAT = env['materialize']",
            "    stack_limit = env['stack_limit']",
            "    builtins = env['builtins']",
            "    U4 = env['U4']",
            "    P4 = env['P4']",
            "    c_div = env['c_div']",
            "    c_mod = env['c_mod']",
            "    VMTrap = env['VMTrap']",
        ]
        header.extend(sorted(self.bindings.values()))
        return "\n".join(header + self.lines + self.switches + ["    return b0"])


def _build_sources(compiled: dict) -> dict[str, str]:
    """Generate (but do not compile) the factory source per function."""
    leaves: dict[str, tuple[int, int | None]] = {}
    for name, function in compiled.items():
        leaf = _leaf_expansion_size(function)
        if leaf is not None:
            leaves[name] = leaf
    return {
        name: _FunctionCodegen(name, compiled, leaves).generate()
        for name in compiled
    }


def _factories_for(compiled: dict, module=None,
                   collect_branches: bool = False) -> _FactoryTable:
    key = None
    if module is not None:
        try:
            memo = _FP_MEMO.setdefault(module, {})
        except TypeError:  # unhashable/unweakrefable module object
            memo = None
        if memo is not None:
            key = memo.get(collect_branches)
            if key is None:
                key = _code_fingerprint(compiled)
                memo[collect_branches] = key
    if key is None:
        key = _code_fingerprint(compiled)
    with _FACTORY_LOCK:
        table = _FACTORY_CACHE.get(key)
        if table is not None:
            _FACTORY_CACHE.move_to_end(key)
            return table
    table = _FactoryTable(_build_sources(compiled))
    with _FACTORY_LOCK:
        table = _FACTORY_CACHE.setdefault(key, table)
        _FACTORY_CACHE.move_to_end(key)
        while len(_FACTORY_CACHE) > _FACTORY_CACHE_LIMIT:
            _FACTORY_CACHE.popitem(last=False)
    return table


# ----------------------------------------------------------------------
# execution


def run_fast(machine, entry_compiled, args: list[int]) -> int:
    """Execute ``machine``'s linked module on the fast tier.

    Mirrors :meth:`~repro.vm.machine.Machine._execute`: same memory,
    same virtual OS, same counter totals and per-site/function/branch
    dicts on every successful run.
    """
    from repro.vm.machine import _c_div, _c_mod

    if sys.getrecursionlimit() < _PY_STACK_NEED:
        sys.setrecursionlimit(_PY_STACK_NEED)

    compiled = machine._compiled
    factories = _factories_for(
        compiled, machine.module, machine._collect_branches
    )
    counters = machine.counters
    site_counts = counters.site_counts
    func_counts = counters.func_counts
    function_table = machine._function_table
    stack_limit = machine._stack_limit

    #: [il, ct, calls, returns] — flushed into counters on exit.
    st = [0, 0, 0, 0]
    shells = {
        name: _FastFunction(
            name, function.nregs, function.nparams, function.frame_size
        )
        for name, function in compiled.items()
    }

    def materialize(shell):
        """Build a function's block closures on first call."""
        block = factories.get(shell.name)(env, shells)
        shell.entry = block
        return block

    def drive(request, regs, fp, d):
        """Explicit-stack trampoline for calls past `_DEPTH_LIMIT`.

        ``request`` is the call tuple a closure running frame
        ``(regs, fp)`` at IL depth ``d`` returned instead of recursing.
        Executes that call and everything after it in the issuing frame
        until the frame itself returns; its return tuple flows back to
        the Python-recursive call site that entered the trampoline.
        """
        stack: list[tuple] = []
        while True:
            if request.__class__ is tuple:
                if len(request) == 1:
                    if not stack:
                        return request
                    st[3] += 1
                    value = request[0]
                    regs, fp, dst, block, d = stack.pop()
                    if dst >= 0:
                        regs[dst] = value
                else:
                    callee, new_regs, dst, cont, fp2 = request
                    stack.append((regs, fp, dst, cont, d))
                    regs = new_regs
                    fp = fp2
                    d += 1
                    if fp + callee.frame_size > stack_limit:
                        raise VMTrap(
                            f"control stack overflow calling {callee.name}"
                            f" (depth {d})"
                        )
                    block = callee.entry
                    if block is None:
                        block = materialize(callee)
            else:
                block = request
            request = block(regs, fp, d)

    def icall(pointer, values, dst, site, fp2, d, cont):
        """Indirect-call resolution (the reference's _OP_ICALL arm).

        Returns a 1-tuple holding the produced value, or — for a user
        call past the depth limit — the trampoline request tuple the
        calling closure must propagate.
        """
        if pointer >= 0:
            raise VMTrap(f"indirect call through bad pointer {pointer}")
        index = -1 - pointer
        if index >= len(function_table):
            raise VMTrap(f"indirect call through bad pointer {pointer}")
        kind, name = function_table[index]
        st[2] += 1
        site_counts[site] = site_counts.get(site, 0) + 1
        func_counts[name] = func_counts.get(name, 0) + 1
        if kind == "b":
            entry = BUILTINS.get(name)
            if entry is None:
                raise VMTrap(f"indirect call to unavailable {name!r}")
            result = entry[1](machine, *values)
            st[3] += 1
            return (result if result is not None else 0,)
        callee = shells[name]
        if len(values) != callee.nparams:
            raise VMTrap(
                f"indirect call to {name} with {len(values)} args,"
                f" expected {callee.nparams}"
            )
        new_regs = [0] * callee.nregs
        new_regs[: len(values)] = values
        if d >= _DEPTH_LIMIT:
            return (callee, new_regs, dst, cont, fp2)
        if fp2 + callee.frame_size > stack_limit:
            raise VMTrap(
                f"control stack overflow calling {name} (depth {d + 1})"
            )
        block = callee.entry
        if block is None:
            block = materialize(callee)
        result = block(new_regs, fp2, d + 1)
        while result.__class__ is not tuple:
            result = result(new_regs, fp2, d + 1)
        if len(result) != 1:
            result = drive(result, new_regs, fp2, d + 1)
        st[3] += 1
        return result

    env = {
        "st": st,
        "mem": machine._mem,
        "fuel": machine._fuel,
        "site_counts": site_counts,
        "func_counts": func_counts,
        "branch_counts": counters.branch_counts,
        "machine": machine,
        "icall": icall,
        "drive": drive,
        "materialize": materialize,
        "stack_limit": stack_limit,
        "builtins": BUILTINS,
        "U4": _UNPACK4,
        "P4": _PACK4,
        "c_div": _c_div,
        "c_mod": _c_mod,
        "VMTrap": VMTrap,
    }

    # Pre-seed every static branch key so factories can bind the
    # [taken, not-taken] pair once at materialisation instead of paying
    # a dict probe per executed branch. Keys a run never touches are
    # pruned on exit — the reference interpreter only creates entries
    # for executed branches.
    branch_counts = counters.branch_counts
    if machine._collect_branches:
        for function in compiled.values():
            for ins in function.code:
                if ins[0] == _OP_CJUMP and ins[4] is not None:
                    branch_counts.setdefault(ins[4], [0, 0])

    entry = shells[entry_compiled.name]
    regs = [0] * entry.nregs
    regs[: len(args)] = args
    fp = machine._sp
    sp = fp + entry.frame_size
    if sp > stack_limit:
        raise VMTrap("control stack overflow at entry")
    func_counts[entry.name] = func_counts.get(entry.name, 0) + 1
    block = materialize(entry)

    try:
        result = block(regs, fp, 0)
        while result.__class__ is not tuple:
            result = result(regs, fp, 0)
        if len(result) != 1:  # pragma: no cover - needs _DEPTH_LIMIT == 0
            result = drive(result, regs, fp, 0)
        # The entry frame's return has no matching call instruction, so
        # it is not a counted dynamic return.
        return result[0]
    finally:
        counters.il += st[0]
        counters.ct += st[1]
        counters.calls += st[2]
        counters.returns += st[3]
        if machine._collect_branches:
            for key in [k for k, v in branch_counts.items() if v == [0, 0]]:
                del branch_counts[key]
