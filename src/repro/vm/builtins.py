"""External (builtin) functions provided by the VM.

These are the bodies the compiler never sees — the reproduction's
equivalent of UNIX system calls and unavailable library archives. Every
call to one of them is routed through the ``$$$`` node of the weighted
call graph and can never be inline expanded (§2.5, §3.2).

Each builtin receives the running :class:`~repro.vm.machine.Machine`
and already-evaluated integer arguments, and returns an int (or None
for void).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import VMTrap

BuiltinImpl = Callable[..., int | None]

#: name -> (parameter count, implementation)
BUILTINS: dict[str, tuple[int, BuiltinImpl]] = {}


def _builtin(name: str, nargs: int):
    def register(fn: BuiltinImpl) -> BuiltinImpl:
        BUILTINS[name] = (nargs, fn)
        return fn

    return register


#: C prototypes for every builtin, used to generate the <sys.h> virtual
#: header that workload programs include.
BUILTIN_PROTOTYPES = """\
int getchar(void);
int putchar(int c);
int eputc(int c);
int read_stdin(char *buf, int max);
int read_block(int fd, char *buf, int max);
int write_stdout(char *buf, int n);
int write_block(int fd, char *buf, int n);
int puts(char *s);
int print_int(int value);
int print_str(char *s);
int open(char *path, int mode);
int close(int fd);
int fgetc(int fd);
int fputc(int c, int fd);
int fputs(char *s, int fd);
int fsize(int fd);
int rewindf(int fd);
char *malloc(int n);
int free(char *p);
void exit(int code);
int abort(void);
"""


class ExitSignal(Exception):
    """Raised by exit() to unwind the interpreter."""

    def __init__(self, code: int):
        self.code = code
        super().__init__(code)


@_builtin("getchar", 0)
def _getchar(machine) -> int:
    return machine.os.getchar()


@_builtin("putchar", 1)
def _putchar(machine, char: int) -> int:
    return machine.os.putchar(char)


@_builtin("eputc", 1)
def _eputc(machine, char: int) -> int:
    return machine.os.put_stderr(char)


@_builtin("read_stdin", 2)
def _read_stdin(machine, buffer: int, maximum: int) -> int:
    """Block read from stdin: the syscall behind buffered stdio."""
    # A negative maximum reads nothing and reports 0 bytes, matching
    # the write-side clamp below.
    maximum = max(maximum, 0)
    os = machine.os
    count = min(maximum, os.stdin_avail())
    if count > 0 and machine.mem_bounds_ok(buffer, count):
        machine.write_bytes(buffer, os.getchar_bulk(count))
        return count
    # Byte-at-a-time fallback for windows that touch unmapped memory:
    # writes what fits, then traps, exactly as a real loop would.
    count = 0
    while count < maximum:
        char = os.getchar()
        if char < 0:
            break
        machine.write_bytes(buffer + count, bytes((char,)))
        count += 1
    return count


@_builtin("read_block", 3)
def _read_block(machine, fd: int, buffer: int, maximum: int) -> int:
    maximum = max(maximum, 0)
    os = machine.os
    avail = os.favail(fd) if maximum > 0 else None
    if avail is not None:
        count = min(maximum, avail)
        if count > 0 and machine.mem_bounds_ok(buffer, count):
            machine.write_bytes(buffer, os.fgetc_bulk(fd, count))
            return count
    count = 0
    while count < maximum:
        char = os.fgetc(fd)
        if char < 0:
            break
        machine.write_bytes(buffer + count, bytes((char,)))
        count += 1
    return count


@_builtin("write_stdout", 2)
def _write_stdout(machine, buffer: int, length: int) -> int:
    # Clamp negative lengths to an empty write and report the count
    # actually written, not the caller's request.
    length = max(length, 0)
    if length > 0 and machine.mem_bounds_ok(buffer, length):
        return machine.os.putchar_bulk(machine.read_bytes(buffer, length))
    for offset in range(length):
        machine.os.putchar(machine.read_byte(buffer + offset))
    return length


@_builtin("write_block", 3)
def _write_block(machine, fd: int, buffer: int, length: int) -> int:
    length = max(length, 0)
    if length > 0 and machine.mem_bounds_ok(buffer, length):
        return machine.os.fputc_bulk(fd, machine.read_bytes(buffer, length))
    for offset in range(length):
        machine.os.fputc(machine.read_byte(buffer + offset), fd)
    return length


@_builtin("puts", 1)
def _puts(machine, address: int) -> int:
    machine.os.putchar_bulk(machine.read_cstring_bytes(address))
    machine.os.putchar(10)
    return 0


@_builtin("print_int", 1)
def _print_int(machine, value: int) -> int:
    for char in str(value):
        machine.os.putchar(ord(char))
    return value


@_builtin("print_str", 1)
def _print_str(machine, address: int) -> int:
    return machine.os.putchar_bulk(machine.read_cstring_bytes(address))


@_builtin("open", 2)
def _open(machine, path_address: int, mode: int) -> int:
    path = machine.read_cstring_bytes(path_address).decode("latin-1")
    return machine.os.open(path, mode)


@_builtin("close", 1)
def _close(machine, fd: int) -> int:
    return machine.os.close(fd)


@_builtin("fgetc", 1)
def _fgetc(machine, fd: int) -> int:
    return machine.os.fgetc(fd)


@_builtin("fputc", 2)
def _fputc(machine, char: int, fd: int) -> int:
    return machine.os.fputc(char, fd)


@_builtin("fputs", 2)
def _fputs(machine, address: int, fd: int) -> int:
    data = machine.read_cstring_bytes(address)
    # Empty strings never touch the fd, so a bad fd must not trap here.
    if not data:
        return 0
    return machine.os.fputc_bulk(fd, data)


@_builtin("fsize", 1)
def _fsize(machine, fd: int) -> int:
    return machine.os.fsize(fd)


@_builtin("rewindf", 1)
def _rewindf(machine, fd: int) -> int:
    return machine.os.rewind(fd)


@_builtin("malloc", 1)
def _malloc(machine, size: int) -> int:
    if size < 0:
        raise VMTrap(f"malloc of negative size {size}")
    return machine.heap_alloc(size)


@_builtin("free", 1)
def _free(machine, address: int) -> int:
    # Bump allocator: free is a deterministic no-op, as in many early
    # UNIX allocators. Memory pressure is not part of the experiments.
    return 0


@_builtin("exit", 1)
def _exit(machine, code: int) -> int:
    raise ExitSignal(code)


@_builtin("abort", 0)
def _abort(machine) -> int:
    raise VMTrap("abort() called")
