"""IL instruction set.

One uniform :class:`Instr` class covers every opcode; the fields each
opcode uses are documented in :class:`Opcode`. Register operands are
strings (virtual registers, renameable for inlining), immediate operands
are Python ints. Labels are strings local to a function.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Union

Operand = Union[str, int]


class Opcode(enum.IntEnum):
    """IL opcodes and the Instr fields they use.

    ======== ==========================================================
    opcode   fields
    ======== ==========================================================
    LABEL    label
    CONST    dst, a (int immediate)
    MOV      dst, a (register)
    BIN      dst, op2 (operator string), a, b
    UN       dst, op2 (operator string), a
    LOAD     dst, a (address operand), size (1 or 4)
    STORE    a (address operand), b (value operand), size
    FRAME    dst, name (frame-slot name; resolves to fp + offset)
    GADDR    dst, name (global name)
    FADDR    dst, name (function name; yields a function-pointer value)
    CALL     dst (or None), name (callee), args, site (call-site id)
    ICALL    dst (or None), a (function-pointer operand), args, site
    RET      a (operand or None)
    JUMP     label
    CJUMP    a (condition operand), label (true), label2 (false)
    SWITCH   a (operand), cases (list of (value,label)), label2 (default)
    ======== ==========================================================
    """

    LABEL = 0
    CONST = 1
    MOV = 2
    BIN = 3
    UN = 4
    LOAD = 5
    STORE = 6
    FRAME = 7
    GADDR = 8
    FADDR = 9
    CALL = 10
    ICALL = 11
    RET = 12
    JUMP = 13
    CJUMP = 14
    SWITCH = 15


#: Opcodes that transfer control, *excluding* call/return — the paper's
#: definition of a "control transfer" (Table 1 counts CTs "other than
#: function call/return").
CONTROL_TRANSFER_OPS = frozenset({Opcode.JUMP, Opcode.CJUMP, Opcode.SWITCH})

#: Opcodes counted as real instructions for code-size purposes.
#: Labels are positional markers, not instructions.
_PSEUDO_OPS = frozenset({Opcode.LABEL})


class Instr:
    """One IL instruction. See :class:`Opcode` for field usage."""

    __slots__ = ("op", "dst", "op2", "a", "b", "name", "args", "label", "label2", "cases", "size", "site")

    def __init__(
        self,
        op: Opcode,
        dst: Optional[str] = None,
        op2: Optional[str] = None,
        a: Optional[Operand] = None,
        b: Optional[Operand] = None,
        name: Optional[str] = None,
        args: Optional[list[Operand]] = None,
        label: Optional[str] = None,
        label2: Optional[str] = None,
        cases: Optional[list[tuple[int, str]]] = None,
        size: int = 4,
        site: int = -1,
    ):
        self.op = op
        self.dst = dst
        self.op2 = op2
        self.a = a
        self.b = b
        self.name = name
        self.args = args if args is not None else []
        self.label = label
        self.label2 = label2
        self.cases = cases if cases is not None else []
        self.size = size
        self.site = site

    def copy(self) -> "Instr":
        return Instr(
            self.op,
            self.dst,
            self.op2,
            self.a,
            self.b,
            self.name,
            list(self.args),
            self.label,
            self.label2,
            [tuple(c) for c in self.cases],
            self.size,
            self.site,
        )

    # ------------------------------------------------------------------
    # operand introspection, used by the verifier and optimizer

    def sources(self) -> Iterable[Operand]:
        """All value operands this instruction reads."""
        op = self.op
        if op is Opcode.CONST:
            return ()
        if op in (Opcode.MOV, Opcode.UN, Opcode.LOAD, Opcode.RET, Opcode.CJUMP, Opcode.SWITCH, Opcode.ICALL):
            base = [self.a] if self.a is not None else []
            if op is Opcode.ICALL:
                base.extend(self.args)
            return base
        if op in (Opcode.BIN, Opcode.STORE):
            return [x for x in (self.a, self.b) if x is not None]
        if op is Opcode.CALL:
            return list(self.args)
        return ()

    def source_regs(self) -> list[str]:
        return [s for s in self.sources() if isinstance(s, str)]

    def replace_regs(self, mapping: dict[str, str]) -> None:
        """Rename register operands (and dst) in place via ``mapping``."""
        if isinstance(self.a, str):
            self.a = mapping.get(self.a, self.a)
        if isinstance(self.b, str):
            self.b = mapping.get(self.b, self.b)
        if self.dst is not None:
            self.dst = mapping.get(self.dst, self.dst)
        if self.args:
            self.args = [
                mapping.get(arg, arg) if isinstance(arg, str) else arg
                for arg in self.args
            ]

    def labels_used(self) -> list[str]:
        """Labels this instruction may transfer control to."""
        result = []
        if self.op is Opcode.JUMP and self.label is not None:
            result.append(self.label)
        elif self.op is Opcode.CJUMP:
            if self.label is not None:
                result.append(self.label)
            if self.label2 is not None:
                result.append(self.label2)
        elif self.op is Opcode.SWITCH:
            result.extend(label for _, label in self.cases)
            if self.label2 is not None:
                result.append(self.label2)
        return result

    def retarget_labels(self, mapping: dict[str, str]) -> None:
        if self.label is not None:
            self.label = mapping.get(self.label, self.label)
        if self.label2 is not None:
            self.label2 = mapping.get(self.label2, self.label2)
        if self.cases:
            self.cases = [
                (value, mapping.get(label, label)) for value, label in self.cases
            ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.il.printer import format_instr

        return f"<Instr {format_instr(self)}>"


def is_real(instr: Instr) -> bool:
    """True when ``instr`` counts toward code size (i.e. not a label)."""
    return instr.op not in _PSEUDO_OPS


def is_control_transfer(instr: Instr) -> bool:
    """True for jumps/branches/switches (not call/return), per Table 1."""
    return instr.op in CONTROL_TRANSFER_OPS


def is_terminator(instr: Instr) -> bool:
    """True when control never falls through to the next instruction."""
    return instr.op in (Opcode.JUMP, Opcode.RET, Opcode.SWITCH) or (
        instr.op is Opcode.CJUMP and instr.label2 is not None
    )
