"""Structural verifier for IL modules.

Run after lowering, after every inline expansion, and — under
``--check`` — after every pipeline pass, to guarantee transformations
preserve IL well-formedness:

- every label referenced by a jump/branch/switch exists exactly once
  (duplicate labels are rejected),
- every frame slot referenced by FRAME exists in the function, and the
  frame layout is consistent (offsets assigned, aligned, non-overlapping,
  inside the declared frame size),
- every direct call targets a defined function or declared external,
- every GADDR names a known global, every FADDR a known function or
  external,
- call-site ids are unique program-wide,
- argument counts of direct calls to defined functions match,
- RET arity matches the function signature: a value function never
  returns without a value and a void function never returns one (the
  static face of the inliner's RETURN_MISMATCH hazard),
- the function ends with a terminator (cannot fall off the end),
- def-before-use of registers over the control-flow graph: reading a
  register that is *definitely unassigned* (unwritten along every path
  from entry) is rejected. This catches renaming bugs in inlining —
  e.g. a call destination left unwritten by a spliced valueless
  return — without flagging conditionally-initialized locals, which
  the zero-initializing VM defines.
"""

from __future__ import annotations

from repro.errors import ILError
from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode, is_terminator
from repro.il.module import ILModule


def verify_function_local(function: ILFunction) -> None:
    """The function-local subset of :func:`verify_function`.

    Everything that needs no enclosing module: label resolution and
    duplicate-label rejection, RET arity vs. the signature, frame-slot
    layout consistency, CFG def-before-use, and the trailing
    terminator. This is what the ``verify`` pass runs inside
    function-level pipelines (e.g. ``--passes 'fold,verify,dce'``).
    """
    labels = function.label_indices()  # raises on duplicate labels
    for instr in function.body:
        for label in instr.labels_used():
            if label not in labels:
                raise ILError(
                    f"{function.name}: jump to unknown label {label!r}"
                )
        if instr.op is Opcode.RET:
            if function.returns_value and instr.a is None:
                raise ILError(
                    f"{function.name}: valueless return in a value-returning"
                    " function"
                )
            if not function.returns_value and instr.a is not None:
                raise ILError(
                    f"{function.name}: value returned from a void function"
                )
    _verify_frame(function)
    _verify_def_before_use(function, labels)
    if not function.body or not is_terminator(function.body[-1]):
        raise ILError(f"{function.name}: function may fall off the end")


def verify_function(module: ILModule, function: ILFunction) -> None:
    verify_function_local(function)

    for instr in function.body:
        if instr.op is Opcode.FRAME:
            if instr.name not in function.slots:
                raise ILError(
                    f"{function.name}: FRAME references unknown slot {instr.name!r}"
                )
        elif instr.op is Opcode.GADDR:
            if instr.name not in module.globals:
                raise ILError(
                    f"{function.name}: GADDR references unknown global {instr.name!r}"
                )
        elif instr.op is Opcode.FADDR:
            if instr.name not in module.functions and instr.name not in module.externals:
                raise ILError(
                    f"{function.name}: FADDR references unknown function {instr.name!r}"
                )
        elif instr.op is Opcode.CALL:
            callee = module.functions.get(instr.name or "")
            if callee is None:
                if instr.name not in module.externals:
                    raise ILError(
                        f"{function.name}: call to unknown function {instr.name!r}"
                    )
            elif len(instr.args) != len(callee.params):
                raise ILError(
                    f"{function.name}: call to {instr.name} with {len(instr.args)}"
                    f" args, expected {len(callee.params)}"
                )
            if instr.site < 0:
                raise ILError(f"{function.name}: call without a site id")
        elif instr.op is Opcode.ICALL and instr.site < 0:
            raise ILError(f"{function.name}: indirect call without a site id")


def _verify_frame(function: ILFunction) -> None:
    """Frame-slot consistency: layout assigned, aligned, non-overlapping."""
    if not function.slots:
        return
    laid_out = sorted(function.slots.values(), key=lambda slot: slot.offset)
    end = 0
    for slot in laid_out:
        if slot.size < 1:
            raise ILError(
                f"{function.name}: frame slot {slot.name!r} has size {slot.size}"
            )
        if slot.offset < 0:
            raise ILError(
                f"{function.name}: frame slot {slot.name!r} has no offset"
                " (layout_frame never ran)"
            )
        align = max(slot.align, 1)
        if slot.offset % align:
            raise ILError(
                f"{function.name}: frame slot {slot.name!r} at offset"
                f" {slot.offset} violates alignment {align}"
            )
        if slot.offset < end:
            raise ILError(
                f"{function.name}: frame slot {slot.name!r} at offset"
                f" {slot.offset} overlaps the previous slot (ends at {end})"
            )
        end = slot.offset + slot.size
    if end > function.frame_size:
        raise ILError(
            f"{function.name}: frame slots end at {end} but frame_size is"
            f" {function.frame_size}"
        )


def _verify_def_before_use(
    function: ILFunction, labels: dict[str, int]
) -> None:
    """Reject reads of registers that are definitely unassigned.

    A forward dataflow over the CFG tracks the set of registers
    *definitely unassigned* (unwritten along every path from entry;
    meet = intersection). Reading one is an error: no execution could
    have produced a value, so the read is either a frontend bug or —
    the case this exists for — an inlining rename bug such as a call
    destination no spliced return ever wrote. Registers assigned on
    *some* path are accepted, because the VM zero-initializes registers
    and conditional initialization is therefore well-defined.
    """
    body = function.body
    if not body:
        return

    # --- registers never assigned anywhere (cheap global screen) ------
    assigned_anywhere = set(function.params)
    for instr in body:
        if instr.dst is not None:
            assigned_anywhere.add(instr.dst)
    for instr in body:
        for reg in instr.source_regs():
            if reg not in assigned_anywhere:
                raise ILError(
                    f"{function.name}: register {reg!r} read before written"
                    " (never assigned anywhere)"
                )

    # --- basic blocks --------------------------------------------------
    leaders = {0}
    for index, instr in enumerate(body):
        if instr.op is Opcode.LABEL:
            leaders.add(index)
        if (is_terminator(instr) or instr.labels_used()) and index + 1 < len(body):
            leaders.add(index + 1)
    starts = sorted(leaders)
    block_of_index = {}
    blocks: list[tuple[int, int]] = []
    for block_id, start in enumerate(starts):
        end = starts[block_id + 1] if block_id + 1 < len(starts) else len(body)
        blocks.append((start, end))
        block_of_index[start] = block_id

    def successors(block_id: int) -> list[int]:
        start, end = blocks[block_id]
        last = body[end - 1]
        result = [
            block_of_index[labels[label]]
            for label in last.labels_used()
            if label in labels
        ]
        if not is_terminator(last) and end < len(body):
            result.append(block_of_index[end])
        return result

    all_regs = frozenset(assigned_anywhere)
    entry_unassigned = all_regs - set(function.params)

    def transfer(block_id: int, unassigned: frozenset[str]) -> frozenset[str]:
        current = set(unassigned)
        start, end = blocks[block_id]
        for instr in body[start:end]:
            if instr.dst is not None:
                current.discard(instr.dst)
        return frozenset(current)

    # Forward fixpoint, meet = intersection over predecessors; blocks
    # not yet reached contribute nothing (top element = all registers).
    in_sets: dict[int, frozenset[str]] = {0: frozenset(entry_unassigned)}
    out_sets: dict[int, frozenset[str]] = {}
    work = [0]
    while work:
        block_id = work.pop()
        out = transfer(block_id, in_sets[block_id])
        if out_sets.get(block_id) == out:
            continue
        out_sets[block_id] = out
        for succ in successors(block_id):
            merged = out if succ not in in_sets else (in_sets[succ] & out)
            if in_sets.get(succ) != merged:
                in_sets[succ] = merged
                work.append(succ)

    # Final pass: report reads of definitely-unassigned registers.
    for block_id, unassigned in in_sets.items():
        current = set(unassigned)
        start, end = blocks[block_id]
        for instr in body[start:end]:
            for reg in instr.source_regs():
                if reg in current:
                    raise ILError(
                        f"{function.name}: register {reg!r} read before written"
                    )
            if instr.dst is not None:
                current.discard(instr.dst)


def verify_module(module: ILModule) -> None:
    """Verify the whole module; raises ILError on the first defect."""
    if module.entry not in module.functions:
        raise ILError(f"entry function {module.entry!r} is not defined")
    sites: set[int] = set()
    for function in module.functions.values():
        verify_function(module, function)
        for instr in function.body:
            if instr.op is Opcode.CALL or instr.op is Opcode.ICALL:
                if instr.site in sites:
                    raise ILError(
                        f"duplicate call-site id {instr.site} (in {function.name})"
                    )
                sites.add(instr.site)
    for name in module.address_taken:
        if name not in module.functions and name not in module.externals:
            raise ILError(f"address-taken function {name!r} does not exist")
