"""Structural verifier for IL modules.

Run after lowering and after every inline-expansion pass in tests to
guarantee the transformations preserve IL well-formedness:

- every label referenced by a jump/branch/switch exists exactly once,
- every frame slot referenced by FRAME exists in the function,
- every direct call targets a defined function or declared external,
- every GADDR names a known global, every FADDR a known function or
  external,
- call-site ids are unique program-wide,
- argument counts of direct calls to defined functions match,
- the function ends with a terminator (cannot fall off the end),
- registers are written before read on at least one path (a cheap
  forward scan, not full dataflow: catches renaming bugs in inlining).
"""

from __future__ import annotations

from repro.errors import ILError
from repro.il.function import ILFunction
from repro.il.instructions import Opcode, is_terminator
from repro.il.module import ILModule


def verify_function(module: ILModule, function: ILFunction) -> None:
    labels = function.label_indices()
    defined_regs = set(function.params)
    seen_branch_target = False

    for instr in function.body:
        for label in instr.labels_used():
            if label not in labels:
                raise ILError(
                    f"{function.name}: jump to unknown label {label!r}"
                )
        if instr.op is Opcode.FRAME:
            if instr.name not in function.slots:
                raise ILError(
                    f"{function.name}: FRAME references unknown slot {instr.name!r}"
                )
        elif instr.op is Opcode.GADDR:
            if instr.name not in module.globals:
                raise ILError(
                    f"{function.name}: GADDR references unknown global {instr.name!r}"
                )
        elif instr.op is Opcode.FADDR:
            if instr.name not in module.functions and instr.name not in module.externals:
                raise ILError(
                    f"{function.name}: FADDR references unknown function {instr.name!r}"
                )
        elif instr.op is Opcode.CALL:
            callee = module.functions.get(instr.name or "")
            if callee is None:
                if instr.name not in module.externals:
                    raise ILError(
                        f"{function.name}: call to unknown function {instr.name!r}"
                    )
            elif len(instr.args) != len(callee.params):
                raise ILError(
                    f"{function.name}: call to {instr.name} with {len(instr.args)}"
                    f" args, expected {len(callee.params)}"
                )
            if instr.site < 0:
                raise ILError(f"{function.name}: call without a site id")
        elif instr.op is Opcode.ICALL and instr.site < 0:
            raise ILError(f"{function.name}: indirect call without a site id")

        # Cheap def-before-use scan. Once a branch target has appeared,
        # linear order no longer implies execution order, so stop
        # enforcing (a full dominator analysis would be overkill here).
        if instr.op is Opcode.LABEL:
            seen_branch_target = True
        if not seen_branch_target:
            for reg in instr.source_regs():
                if reg not in defined_regs:
                    raise ILError(
                        f"{function.name}: register {reg!r} read before written"
                    )
        if instr.dst is not None:
            defined_regs.add(instr.dst)

    if not function.body or not is_terminator(function.body[-1]):
        raise ILError(f"{function.name}: function may fall off the end")


def verify_module(module: ILModule) -> None:
    """Verify the whole module; raises ILError on the first defect."""
    if module.entry not in module.functions:
        raise ILError(f"entry function {module.entry!r} is not defined")
    sites: set[int] = set()
    for function in module.functions.values():
        verify_function(module, function)
        for instr in function.body:
            if instr.op is Opcode.CALL or instr.op is Opcode.ICALL:
                if instr.site in sites:
                    raise ILError(
                        f"duplicate call-site id {instr.site} (in {function.name})"
                    )
                sites.add(instr.site)
    for name in module.address_taken:
        if name not in module.functions and name not in module.externals:
            raise ILError(f"address-taken function {name!r} does not exist")
