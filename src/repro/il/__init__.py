"""Three-address intermediate language (IL).

This is the system-independent intermediate code of the reproduction
(the paper's "intermediate instructions", §2.1): a flat list of
register-based instructions per function, with labels as
pseudo-instructions so that inline expansion can splice instruction
sequences textually.
"""

from repro.il.instructions import Instr, Opcode, is_control_transfer, is_real
from repro.il.function import FrameSlot, ILFunction
from repro.il.module import GlobalData, ILModule, InitItem
from repro.il.lowering import lower_unit
from repro.il.printer import format_function, format_module
from repro.il.verifier import verify_module

__all__ = [
    "FrameSlot",
    "GlobalData",
    "ILFunction",
    "ILModule",
    "InitItem",
    "Instr",
    "Opcode",
    "format_function",
    "format_module",
    "is_control_transfer",
    "is_real",
    "lower_unit",
    "verify_module",
]
