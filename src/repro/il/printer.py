"""Human-readable IL dumps, for debugging and golden tests."""

from __future__ import annotations

from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode
from repro.il.module import ILModule


def _operand(value: object) -> str:
    if value is None:
        return "_"
    if isinstance(value, int):
        return f"#{value}"
    return str(value)


def format_instr(instr: Instr) -> str:
    op = instr.op
    if op is Opcode.LABEL:
        return f"{instr.label}:"
    if op is Opcode.CONST:
        return f"  {instr.dst} = const {_operand(instr.a)}"
    if op is Opcode.MOV:
        return f"  {instr.dst} = {_operand(instr.a)}"
    if op is Opcode.BIN:
        return f"  {instr.dst} = {_operand(instr.a)} {instr.op2} {_operand(instr.b)}"
    if op is Opcode.UN:
        return f"  {instr.dst} = {instr.op2} {_operand(instr.a)}"
    if op is Opcode.LOAD:
        return f"  {instr.dst} = load{instr.size} [{_operand(instr.a)}]"
    if op is Opcode.STORE:
        return f"  store{instr.size} [{_operand(instr.a)}] = {_operand(instr.b)}"
    if op is Opcode.FRAME:
        return f"  {instr.dst} = frame {instr.name}"
    if op is Opcode.GADDR:
        return f"  {instr.dst} = gaddr {instr.name}"
    if op is Opcode.FADDR:
        return f"  {instr.dst} = faddr {instr.name}"
    if op is Opcode.CALL:
        args = ", ".join(_operand(a) for a in instr.args)
        prefix = f"{instr.dst} = " if instr.dst is not None else ""
        return f"  {prefix}call {instr.name}({args})  ; site {instr.site}"
    if op is Opcode.ICALL:
        args = ", ".join(_operand(a) for a in instr.args)
        prefix = f"{instr.dst} = " if instr.dst is not None else ""
        return f"  {prefix}icall {_operand(instr.a)}({args})  ; site {instr.site}"
    if op is Opcode.RET:
        return f"  ret {_operand(instr.a)}" if instr.a is not None else "  ret"
    if op is Opcode.JUMP:
        return f"  jump {instr.label}"
    if op is Opcode.CJUMP:
        return f"  cjump {_operand(instr.a)} ? {instr.label} : {instr.label2}"
    if op is Opcode.SWITCH:
        arms = ", ".join(f"{value}->{label}" for value, label in instr.cases)
        return f"  switch {_operand(instr.a)} [{arms}] default {instr.label2}"
    raise AssertionError(f"unknown opcode {op}")  # pragma: no cover


def format_function(function: ILFunction) -> str:
    header = f"func {function.name}({', '.join(function.params)})"
    if function.returns_value:
        header += " -> value"
    lines = [header]
    if function.slots:
        for slot in function.slots.values():
            lines.append(f"  .slot {slot.name} size={slot.size} offset={slot.offset}")
    lines.extend(format_instr(instr) for instr in function.body)
    return "\n".join(lines)


def format_module(module: ILModule) -> str:
    parts = []
    for name in sorted(module.externals):
        parts.append(f"extern {name}")
    for data in module.globals.values():
        parts.append(f"global {data.name} size={data.size}")
    for function in module.functions.values():
        parts.append(format_function(function))
    return "\n\n".join(parts) + "\n"
