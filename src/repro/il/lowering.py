"""Lowering from the typed AST to three-address IL.

Storage assignment: scalar locals and parameters whose address is never
taken live in virtual registers; address-taken scalars, arrays, and
structs get frame slots. Globals and string literals become module data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LoweringError
from repro.frontend import ast
from repro.frontend.constexpr import wrap32
from repro.frontend.sema import AnalyzedUnit, FunctionInfo
from repro.frontend.symbols import FunctionSymbol, VarSymbol
from repro.frontend.typesys import (
    ArrayType,
    CType,
    PointerType,
    StructType,
    decay,
)
from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode, Operand
from repro.il.module import GlobalData, ILModule, InitItem

_WORD = 4


@dataclass(frozen=True, slots=True)
class _Place:
    """An assignable location: a register or a memory address."""

    kind: str  # "reg" | "mem"
    reg: str = ""
    addr: Operand = 0
    size: int = _WORD
    ctype: CType | None = None


class _FunctionLowerer:
    """Lowers one function body."""

    def __init__(self, module: ILModule, info: FunctionInfo):
        self._module = module
        self._info = info
        definition = info.definition
        assert definition.signature is not None
        returns_value = not definition.signature.type.return_type.is_void
        self._fn = ILFunction(
            definition.name,
            [],
            returns_value,
            definition.inline_hint,
        )
        self._storage: dict[int, tuple[str, str]] = {}
        self._break_stack: list[str] = []
        self._continue_stack: list[str] = []

    # ------------------------------------------------------------------

    def lower(self) -> ILFunction:
        self._assign_storage()
        body = self._info.definition.body
        assert body is not None
        self._stmt(body)
        # Guarantee every path returns: append a fallback return.
        self._emit(Instr(Opcode.RET, a=0 if self._fn.returns_value else None))
        self._fn.layout_frame()
        return self._fn

    def _assign_storage(self) -> None:
        for symbol in self._info.params:
            reg = f"p.{symbol.name}.{symbol.uid}"
            self._fn.params.append(reg)
            if symbol.address_taken:
                slot_name = f"s.{symbol.name}.{symbol.uid}"
                ctype = symbol.ctype
                self._fn.add_slot(slot_name, ctype.size(), ctype.alignment())
                self._storage[id(symbol)] = ("slot", slot_name)
                # Spill the incoming parameter into its slot at entry.
                addr = self._fn.new_temp()
                self._emit(Instr(Opcode.FRAME, dst=addr, name=slot_name))
                self._emit(
                    Instr(Opcode.STORE, a=addr, b=reg, size=min(ctype.size(), _WORD))
                )
            else:
                self._storage[id(symbol)] = ("reg", reg)
        for symbol in self._info.locals:
            ctype = symbol.ctype
            needs_slot = (
                symbol.address_taken or ctype.is_array or ctype.is_struct
            )
            if needs_slot:
                slot_name = f"s.{symbol.name}.{symbol.uid}"
                self._fn.add_slot(slot_name, ctype.size(), ctype.alignment())
                self._storage[id(symbol)] = ("slot", slot_name)
            else:
                self._storage[id(symbol)] = ("reg", f"v.{symbol.name}.{symbol.uid}")

    # ------------------------------------------------------------------
    # emission helpers

    def _emit(self, instr: Instr) -> None:
        self._fn.body.append(instr)

    def _emit_label(self, label: str) -> None:
        self._emit(Instr(Opcode.LABEL, label=label))

    def _to_reg(self, operand: Operand) -> str:
        """Materialize an operand into a register when one is required."""
        if isinstance(operand, str):
            return operand
        temp = self._fn.new_temp()
        self._emit(Instr(Opcode.CONST, dst=temp, a=operand))
        return temp

    def _binary(self, op: str, a: Operand, b: Operand) -> str:
        dst = self._fn.new_temp()
        self._emit(Instr(Opcode.BIN, dst=dst, op2=op, a=a, b=b))
        return dst

    def _scale(self, index: Operand, element_size: int) -> Operand:
        if element_size == 1:
            return index
        if isinstance(index, int):
            return wrap32(index * element_size)
        return self._binary("*", index, element_size)

    # ------------------------------------------------------------------
    # statements

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for sub in stmt.statements:
                self._stmt(sub)
        elif isinstance(stmt, ast.DeclStmt):
            self._decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._break_stack:
                raise LoweringError("break outside loop/switch", stmt.location)
            self._emit(Instr(Opcode.JUMP, label=self._break_stack[-1]))
        elif isinstance(stmt, ast.Continue):
            if not self._continue_stack:
                raise LoweringError("continue outside loop", stmt.location)
            self._emit(Instr(Opcode.JUMP, label=self._continue_stack[-1]))
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._emit(Instr(Opcode.RET, a=None))
            else:
                self._emit(Instr(Opcode.RET, a=self._expr(stmt.value)))
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")

    def _decl(self, decl: ast.DeclStmt) -> None:
        symbol = decl.symbol
        assert isinstance(symbol, VarSymbol)
        if decl.init is None:
            return
        kind, name = self._storage[id(symbol)]
        if isinstance(decl.init, ast.InitList) or (
            isinstance(decl.init, ast.StringLiteral) and symbol.ctype.is_array
        ):
            assert kind == "slot"
            base = self._fn.new_temp()
            self._emit(Instr(Opcode.FRAME, dst=base, name=name))
            self._init_memory(base, 0, symbol.ctype, decl.init)
            return
        value = self._expr(decl.init)
        if kind == "reg":
            value = self._coerce_char(value, symbol.ctype)
            self._emit(Instr(Opcode.MOV, dst=name, a=self._to_reg(value)))
        else:
            addr = self._fn.new_temp()
            self._emit(Instr(Opcode.FRAME, dst=addr, name=name))
            self._emit(
                Instr(
                    Opcode.STORE,
                    a=addr,
                    b=value,
                    size=min(symbol.ctype.size(), _WORD),
                )
            )

    def _init_memory(
        self, base: str, offset: int, ctype: CType, init: ast.Initializer
    ) -> None:
        """Lower a brace/string initializer into stores at base+offset."""
        if isinstance(init, ast.StringLiteral) and isinstance(ctype, ArrayType):
            data = init.value.encode("latin-1", errors="replace") + b"\x00"
            for index, byte in enumerate(data):
                addr = self._binary("+", base, offset + index)
                self._emit(Instr(Opcode.STORE, a=addr, b=byte, size=1))
            return
        if isinstance(init, ast.InitList):
            if isinstance(ctype, ArrayType):
                element_size = ctype.element.size()
                for index, item in enumerate(init.items):
                    self._init_memory(
                        base, offset + index * element_size, ctype.element, item
                    )
                return
            if isinstance(ctype, StructType):
                for item, field_entry in zip(init.items, ctype.fields):
                    self._init_memory(
                        base, offset + field_entry.offset, field_entry.type, item
                    )
                return
            raise LoweringError(f"brace initializer for scalar {ctype}", init.location)
        value = self._expr(init)
        addr = self._binary("+", base, offset) if offset else base
        self._emit(
            Instr(Opcode.STORE, a=addr, b=value, size=min(ctype.size(), _WORD))
        )

    def _if(self, stmt: ast.If) -> None:
        then_label = self._fn.new_label()
        end_label = self._fn.new_label()
        else_label = self._fn.new_label() if stmt.otherwise is not None else end_label
        cond = self._expr(stmt.cond)
        self._emit(Instr(Opcode.CJUMP, a=cond, label=then_label, label2=else_label))
        self._emit_label(then_label)
        self._stmt(stmt.then)
        if stmt.otherwise is not None:
            self._emit(Instr(Opcode.JUMP, label=end_label))
            self._emit_label(else_label)
            self._stmt(stmt.otherwise)
        self._emit_label(end_label)

    def _while(self, stmt: ast.While) -> None:
        head = self._fn.new_label()
        body = self._fn.new_label()
        end = self._fn.new_label()
        self._emit_label(head)
        cond = self._expr(stmt.cond)
        self._emit(Instr(Opcode.CJUMP, a=cond, label=body, label2=end))
        self._emit_label(body)
        self._loop_body(stmt.body, break_to=end, continue_to=head)
        self._emit(Instr(Opcode.JUMP, label=head))
        self._emit_label(end)

    def _do_while(self, stmt: ast.DoWhile) -> None:
        body = self._fn.new_label()
        check = self._fn.new_label()
        end = self._fn.new_label()
        self._emit_label(body)
        self._loop_body(stmt.body, break_to=end, continue_to=check)
        self._emit_label(check)
        cond = self._expr(stmt.cond)
        self._emit(Instr(Opcode.CJUMP, a=cond, label=body, label2=end))
        self._emit_label(end)

    def _for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._stmt(stmt.init)
        head = self._fn.new_label()
        body = self._fn.new_label()
        step = self._fn.new_label()
        end = self._fn.new_label()
        self._emit_label(head)
        if stmt.cond is not None:
            cond = self._expr(stmt.cond)
            self._emit(Instr(Opcode.CJUMP, a=cond, label=body, label2=end))
        self._emit_label(body)
        self._loop_body(stmt.body, break_to=end, continue_to=step)
        self._emit_label(step)
        if stmt.step is not None:
            self._expr(stmt.step)
        self._emit(Instr(Opcode.JUMP, label=head))
        self._emit_label(end)

    def _loop_body(self, body: ast.Stmt | None, break_to: str, continue_to: str) -> None:
        self._break_stack.append(break_to)
        self._continue_stack.append(continue_to)
        if body is not None:
            self._stmt(body)
        self._continue_stack.pop()
        self._break_stack.pop()

    def _switch(self, stmt: ast.Switch) -> None:
        value = self._expr(stmt.scrutinee)
        end = self._fn.new_label()
        default_label = end
        cases: list[tuple[int, str]] = []
        case_labels: list[str] = []
        for case in stmt.cases:
            label = self._fn.new_label("C")
            case_labels.append(label)
            if case.value is None:
                default_label = label
            else:
                cases.append((case.value, label))
        self._emit(
            Instr(Opcode.SWITCH, a=value, cases=cases, label2=default_label)
        )
        self._break_stack.append(end)
        for case, label in zip(stmt.cases, case_labels):
            self._emit_label(label)
            for sub in case.body:
                self._stmt(sub)
        self._break_stack.pop()
        self._emit_label(end)

    # ------------------------------------------------------------------
    # expressions (rvalue)

    def _expr(self, expr: ast.Expr | None) -> Operand:
        assert expr is not None
        if isinstance(expr, ast.IntLiteral):
            return wrap32(expr.value)
        if isinstance(expr, ast.StringLiteral):
            name = self._module.intern_string(expr.value)
            dst = self._fn.new_temp()
            self._emit(Instr(Opcode.GADDR, dst=dst, name=name))
            return dst
        if isinstance(expr, ast.Identifier):
            return self._identifier_value(expr)
        if isinstance(expr, ast.Unary):
            return self._unary(expr)
        if isinstance(expr, ast.PostIncDec):
            return self._incdec(expr.operand, expr.op, post=True)
        if isinstance(expr, ast.Binary):
            return self._binary_expr(expr)
        if isinstance(expr, ast.Assign):
            return self._assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._conditional(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Index):
            return self._load_place(self._index_place(expr))
        if isinstance(expr, ast.Member):
            return self._load_place(self._member_place(expr))
        if isinstance(expr, ast.Cast):
            value = self._expr(expr.operand)
            return self._coerce_char(value, expr.target_type)
        if isinstance(expr, ast.SizeofType):
            assert expr.target_type is not None
            return expr.target_type.size()
        raise LoweringError(f"unhandled expression {type(expr).__name__}", expr.location)

    def _coerce_char(self, value: Operand, target: CType | None) -> Operand:
        """Truncate + sign-extend when converting to char."""
        if target is None or not (target.is_integer and target.size() == 1):
            return value
        if isinstance(value, int):
            byte = value & 0xFF
            return byte - 256 if byte > 127 else byte
        dst = self._fn.new_temp()
        self._emit(Instr(Opcode.UN, dst=dst, op2="sxt8", a=value))
        return dst

    def _identifier_value(self, expr: ast.Identifier) -> Operand:
        symbol = expr.symbol
        if isinstance(symbol, FunctionSymbol):
            dst = self._fn.new_temp()
            self._emit(Instr(Opcode.FADDR, dst=dst, name=symbol.name))
            return dst
        assert isinstance(symbol, VarSymbol)
        ctype = symbol.ctype
        if symbol.is_global:
            addr = self._fn.new_temp()
            self._emit(Instr(Opcode.GADDR, dst=addr, name=symbol.name))
            if ctype.is_array or ctype.is_struct:
                return addr
            dst = self._fn.new_temp()
            self._emit(Instr(Opcode.LOAD, dst=dst, a=addr, size=min(ctype.size(), _WORD)))
            return dst
        kind, name = self._storage[id(symbol)]
        if kind == "reg":
            return name
        addr = self._fn.new_temp()
        self._emit(Instr(Opcode.FRAME, dst=addr, name=name))
        if ctype.is_array or ctype.is_struct:
            return addr
        dst = self._fn.new_temp()
        self._emit(Instr(Opcode.LOAD, dst=dst, a=addr, size=min(ctype.size(), _WORD)))
        return dst

    def _unary(self, expr: ast.Unary) -> Operand:
        assert expr.operand is not None
        op = expr.op
        if op == "&":
            return self._address_of(expr.operand)
        if op == "*":
            pointee = expr.ctype
            assert pointee is not None
            address = self._expr(expr.operand)
            if pointee.is_array or pointee.is_struct:
                return address
            dst = self._fn.new_temp()
            self._emit(
                Instr(Opcode.LOAD, dst=dst, a=address, size=min(pointee.size(), _WORD))
            )
            return dst
        if op == "sizeof":
            operand_type = expr.operand.ctype
            assert operand_type is not None
            return operand_type.size()
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, post=False)
        value = self._expr(expr.operand)
        if isinstance(value, int):
            from repro.frontend.constexpr import apply_unary

            return apply_unary(op, value)
        dst = self._fn.new_temp()
        self._emit(Instr(Opcode.UN, dst=dst, op2=op, a=value))
        return dst

    def _address_of(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            if isinstance(symbol, FunctionSymbol):
                dst = self._fn.new_temp()
                self._emit(Instr(Opcode.FADDR, dst=dst, name=symbol.name))
                return dst
            assert isinstance(symbol, VarSymbol)
            if symbol.is_global:
                dst = self._fn.new_temp()
                self._emit(Instr(Opcode.GADDR, dst=dst, name=symbol.name))
                return dst
            kind, name = self._storage[id(symbol)]
            if kind != "slot":
                raise LoweringError(
                    f"address of register variable {symbol.name!r}", expr.location
                )
            dst = self._fn.new_temp()
            self._emit(Instr(Opcode.FRAME, dst=dst, name=name))
            return dst
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._expr(expr.operand)
        if isinstance(expr, ast.Index):
            return self._index_place(expr).addr
        if isinstance(expr, ast.Member):
            return self._member_place(expr).addr
        raise LoweringError("cannot take address of expression", expr.location)

    def _incdec(self, target: ast.Expr | None, op: str, post: bool) -> Operand:
        assert target is not None
        place = self._place(target)
        old = self._load_place(place)
        old_reg = self._to_reg(old)
        if post and place.kind == "reg":
            # For register places _load_place returns the live register
            # itself; snapshot it or the store below would clobber the
            # value a postfix expression must yield.
            snapshot = self._fn.new_temp()
            self._emit(Instr(Opcode.MOV, dst=snapshot, a=old_reg))
            old_reg = snapshot
        ctype = decay(target.ctype) if target.ctype is not None else None
        delta = 1
        if ctype is not None and isinstance(ctype, PointerType):
            delta = max(ctype.pointee.size(), 1)
        new = self._binary("+" if op == "++" else "-", old_reg, delta)
        new = self._to_reg(self._coerce_char(new, place.ctype))
        self._store_place(place, new)
        return old_reg if post else new

    def _binary_expr(self, expr: ast.Binary) -> Operand:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op == ",":
            self._expr(expr.left)
            return self._expr(expr.right)
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        left_type = decay(expr.left.ctype) if expr.left.ctype else None
        right_type = decay(expr.right.ctype) if expr.right.ctype else None
        left = self._expr(expr.left)
        right = self._expr(expr.right)
        # Pointer arithmetic scaling.
        if op in ("+", "-") and isinstance(left_type, PointerType) and (
            right_type is not None and right_type.is_integer
        ):
            right = self._scale(right, max(left_type.pointee.size(), 1))
        elif op == "+" and isinstance(right_type, PointerType) and (
            left_type is not None and left_type.is_integer
        ):
            left = self._scale(left, max(right_type.pointee.size(), 1))
        result = self._binary(op, left, right)
        if (
            op == "-"
            and isinstance(left_type, PointerType)
            and isinstance(right_type, PointerType)
        ):
            element = max(left_type.pointee.size(), 1)
            if element != 1:
                result = self._binary("/", result, element)
        return result

    def _short_circuit(self, expr: ast.Binary) -> Operand:
        """Lower && / || with control flow, as the paper's IL would."""
        result = self._fn.new_temp()
        right_label = self._fn.new_label()
        true_label = self._fn.new_label()
        false_label = self._fn.new_label()
        end = self._fn.new_label()
        left = self._expr(expr.left)
        if expr.op == "&&":
            self._emit(Instr(Opcode.CJUMP, a=left, label=right_label, label2=false_label))
        else:
            self._emit(Instr(Opcode.CJUMP, a=left, label=true_label, label2=right_label))
        self._emit_label(right_label)
        right = self._expr(expr.right)
        self._emit(Instr(Opcode.CJUMP, a=right, label=true_label, label2=false_label))
        self._emit_label(true_label)
        self._emit(Instr(Opcode.CONST, dst=result, a=1))
        self._emit(Instr(Opcode.JUMP, label=end))
        self._emit_label(false_label)
        self._emit(Instr(Opcode.CONST, dst=result, a=0))
        self._emit_label(end)
        return result

    def _conditional(self, expr: ast.Conditional) -> Operand:
        result = self._fn.new_temp()
        then_label = self._fn.new_label()
        else_label = self._fn.new_label()
        end = self._fn.new_label()
        cond = self._expr(expr.cond)
        self._emit(Instr(Opcode.CJUMP, a=cond, label=then_label, label2=else_label))
        self._emit_label(then_label)
        then_value = self._expr(expr.then)
        self._emit(Instr(Opcode.MOV, dst=result, a=self._to_reg(then_value)))
        self._emit(Instr(Opcode.JUMP, label=end))
        self._emit_label(else_label)
        else_value = self._expr(expr.otherwise)
        self._emit(Instr(Opcode.MOV, dst=result, a=self._to_reg(else_value)))
        self._emit_label(end)
        return result

    def _assign(self, expr: ast.Assign) -> Operand:
        assert expr.target is not None and expr.value is not None
        if expr.op == "=":
            target_type = expr.target.ctype
            if target_type is not None and target_type.is_struct:
                return self._struct_copy(expr)
            place = self._place(expr.target)
            value = self._expr(expr.value)
            value = self._coerce_char(value, place.ctype)
            self._store_place(place, value)
            return value
        # Compound assignment: read-modify-write.
        place = self._place(expr.target)
        old = self._to_reg(self._load_place(place))
        value = self._expr(expr.value)
        op = expr.op[:-1]
        target_type = decay(expr.target.ctype) if expr.target.ctype else None
        if (
            op in ("+", "-")
            and isinstance(target_type, PointerType)
            and expr.value.ctype is not None
            and decay(expr.value.ctype).is_integer
        ):
            value = self._scale(value, max(target_type.pointee.size(), 1))
        new = self._binary(op, old, value)
        new = self._to_reg(self._coerce_char(new, place.ctype))
        self._store_place(place, new)
        return new

    def _struct_copy(self, expr: ast.Assign) -> Operand:
        """Lower ``a = b`` for structs as a word-by-word copy."""
        assert expr.target is not None and expr.value is not None
        struct = expr.target.ctype
        assert isinstance(struct, StructType)
        dst_addr = self._to_reg(self._address_of(expr.target))
        src_addr = self._to_reg(self._expr(expr.value))
        offset = 0
        size = struct.size()
        while offset < size:
            chunk = _WORD if size - offset >= _WORD else 1
            src = self._binary("+", src_addr, offset) if offset else src_addr
            value = self._fn.new_temp()
            self._emit(Instr(Opcode.LOAD, dst=value, a=src, size=chunk))
            dst = self._binary("+", dst_addr, offset) if offset else dst_addr
            self._emit(Instr(Opcode.STORE, a=dst, b=value, size=chunk))
            offset += chunk
        return dst_addr

    def _call(self, expr: ast.Call) -> Operand:
        assert expr.callee is not None
        args: list[Operand] = [self._expr(arg) for arg in expr.args]
        returns_value = expr.ctype is not None and not expr.ctype.is_void
        dst = self._fn.new_temp() if returns_value else None
        callee = expr.callee
        direct_name: str | None = None
        if isinstance(callee, ast.Identifier) and isinstance(
            callee.symbol, FunctionSymbol
        ):
            direct_name = callee.symbol.name
        if direct_name is not None:
            self._emit(
                Instr(
                    Opcode.CALL,
                    dst=dst,
                    name=direct_name,
                    args=args,
                    site=self._module.new_site_id(),
                )
            )
        else:
            pointer = self._expr(callee)
            self._emit(
                Instr(
                    Opcode.ICALL,
                    dst=dst,
                    a=pointer,
                    args=args,
                    site=self._module.new_site_id(),
                )
            )
        return dst if dst is not None else 0

    # ------------------------------------------------------------------
    # places (lvalues)

    def _place(self, expr: ast.Expr) -> _Place:
        if isinstance(expr, ast.Identifier):
            symbol = expr.symbol
            assert isinstance(symbol, VarSymbol)
            ctype = symbol.ctype
            if symbol.is_global:
                addr = self._fn.new_temp()
                self._emit(Instr(Opcode.GADDR, dst=addr, name=symbol.name))
                return _Place("mem", addr=addr, size=min(ctype.size(), _WORD), ctype=ctype)
            kind, name = self._storage[id(symbol)]
            if kind == "reg":
                return _Place("reg", reg=name, ctype=ctype)
            addr = self._fn.new_temp()
            self._emit(Instr(Opcode.FRAME, dst=addr, name=name))
            return _Place("mem", addr=addr, size=min(ctype.size(), _WORD), ctype=ctype)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointee = expr.ctype
            assert pointee is not None
            addr = self._expr(expr.operand)
            return _Place("mem", addr=addr, size=min(pointee.size(), _WORD), ctype=pointee)
        if isinstance(expr, ast.Index):
            return self._index_place(expr)
        if isinstance(expr, ast.Member):
            return self._member_place(expr)
        raise LoweringError("expression is not assignable", expr.location)

    def _index_place(self, expr: ast.Index) -> _Place:
        assert expr.base is not None and expr.index is not None
        element = expr.ctype
        assert element is not None
        base = self._expr(expr.base)
        index = self._expr(expr.index)
        offset = self._scale(index, max(element.size(), 1))
        addr = self._binary("+", base, offset)
        return _Place("mem", addr=addr, size=min(element.size(), _WORD), ctype=element)

    def _member_place(self, expr: ast.Member) -> _Place:
        assert expr.base is not None
        if expr.arrow:
            base_type = decay(expr.base.ctype) if expr.base.ctype else None
            assert isinstance(base_type, PointerType)
            struct = base_type.pointee
            base = self._expr(expr.base)
        else:
            struct = expr.base.ctype
            base = self._address_of(expr.base)
        assert isinstance(struct, StructType)
        field_entry = struct.field(expr.name)
        addr = (
            self._binary("+", self._to_reg(base), field_entry.offset)
            if field_entry.offset
            else base
        )
        return _Place(
            "mem",
            addr=addr,
            size=min(field_entry.type.size(), _WORD),
            ctype=field_entry.type,
        )

    def _load_place(self, place: _Place) -> Operand:
        if place.kind == "reg":
            return place.reg
        ctype = place.ctype
        if ctype is not None and (ctype.is_array or ctype.is_struct):
            return place.addr
        dst = self._fn.new_temp()
        self._emit(Instr(Opcode.LOAD, dst=dst, a=place.addr, size=place.size))
        return dst

    def _store_place(self, place: _Place, value: Operand) -> None:
        if place.kind == "reg":
            self._emit(Instr(Opcode.MOV, dst=place.reg, a=self._to_reg(value)))
        else:
            self._emit(Instr(Opcode.STORE, a=place.addr, b=value, size=place.size))


# ----------------------------------------------------------------------
# globals


def _lower_global_init(
    module: ILModule,
    items: list[InitItem],
    offset: int,
    ctype: CType,
    init: ast.Initializer,
) -> None:
    if isinstance(init, ast.StringLiteral):
        if isinstance(ctype, ArrayType):
            data = init.value.encode("latin-1", errors="replace") + b"\x00"
            items.append(InitItem(offset, "bytes", data=data))
            return
        name = module.intern_string(init.value)
        items.append(InitItem(offset, "gaddr", symbol=name))
        return
    if isinstance(init, ast.InitList):
        if isinstance(ctype, ArrayType):
            element_size = ctype.element.size()
            for index, item in enumerate(init.items):
                _lower_global_init(
                    module, items, offset + index * element_size, ctype.element, item
                )
            return
        if isinstance(ctype, StructType):
            for item, field_entry in zip(init.items, ctype.fields):
                _lower_global_init(
                    module, items, offset + field_entry.offset, field_entry.type, item
                )
            return
        raise LoweringError(f"brace initializer for scalar {ctype}", init.location)
    # Scalar initializer: a constant, an address of a global, or a
    # function name (building the paper's call-through-pointer tables).
    if isinstance(init, ast.Identifier) and isinstance(init.symbol, FunctionSymbol):
        items.append(InitItem(offset, "faddr", symbol=init.symbol.name))
        return
    if isinstance(init, ast.Unary) and init.op == "&":
        operand = init.operand
        if isinstance(operand, ast.Identifier):
            if isinstance(operand.symbol, FunctionSymbol):
                items.append(InitItem(offset, "faddr", symbol=operand.symbol.name))
                return
            if isinstance(operand.symbol, VarSymbol) and operand.symbol.is_global:
                items.append(InitItem(offset, "gaddr", symbol=operand.symbol.name))
                return
        raise LoweringError("unsupported address in global initializer", init.location)
    if isinstance(init, ast.Identifier) and isinstance(init.symbol, VarSymbol):
        if init.symbol.is_global and init.symbol.ctype.is_array:
            items.append(InitItem(offset, "gaddr", symbol=init.symbol.name))
            return
    from repro.frontend.constexpr import eval_const_expr

    value = eval_const_expr(init)
    items.append(InitItem(offset, "int", value=value, size=min(ctype.size(), _WORD)))


def lower_unit(analyzed: AnalyzedUnit, entry: str = "main") -> ILModule:
    """Lower an analyzed translation unit to an IL module."""
    module = ILModule(entry)
    for decl in analyzed.unit.globals:
        assert decl.var_type is not None
        items: list[InitItem] = []
        if decl.init is not None:
            _lower_global_init(module, items, 0, decl.var_type, decl.init)
        module.add_global(
            GlobalData(decl.name, decl.var_type.size(), decl.var_type.alignment(), items)
        )
    for name, symbol in analyzed.functions.items():
        if symbol.is_external:
            module.declare_external(name)
        if symbol.address_taken:
            module.address_taken.add(name)
    for name, info in analyzed.function_info.items():
        module.add_function(_FunctionLowerer(module, info).lower())
    return module
