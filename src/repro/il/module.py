"""IL modules: functions, global data, and external declarations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ILError
from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode


@dataclass(frozen=True, slots=True)
class InitItem:
    """One initialization record for a global data object.

    ``kind`` is ``"int"`` (store ``value`` of ``size`` bytes at
    ``offset``), ``"gaddr"`` (store the address of global ``symbol``),
    ``"faddr"`` (store the function-pointer value of ``symbol``), or
    ``"bytes"`` (store ``data`` verbatim, used for string literals).
    """

    offset: int
    kind: str
    value: int = 0
    size: int = 4
    symbol: str = ""
    data: bytes = b""


@dataclass(slots=True)
class GlobalData:
    """One global data object (named variable or string literal)."""

    name: str
    size: int
    align: int = 4
    init: list[InitItem] = field(default_factory=list)


class ILModule:
    """A linked program in IL form."""

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self.functions: dict[str, ILFunction] = {}
        self.globals: dict[str, GlobalData] = {}
        #: Declared-but-undefined functions: the paper's external
        #: functions (system calls, unavailable library bodies).
        self.externals: set[str] = set()
        #: Functions whose address is used in computation — the callee
        #: set of the ### call-through-pointer node (§2.5).
        self.address_taken: set[str] = set()
        self._next_site = 0
        self._next_string = 0

    # ------------------------------------------------------------------

    def add_function(self, function: ILFunction) -> None:
        if function.name in self.functions:
            raise ILError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        self.externals.discard(function.name)

    def add_global(self, data: GlobalData) -> None:
        if data.name in self.globals:
            raise ILError(f"duplicate global {data.name!r}")
        self.globals[data.name] = data

    def declare_external(self, name: str) -> None:
        if name not in self.functions:
            self.externals.add(name)

    def new_site_id(self) -> int:
        """Allocate a unique static call-site id (the paper's arc id)."""
        site = self._next_site
        self._next_site += 1
        return site

    def intern_string(self, value: str) -> str:
        """Create an anonymous global holding a NUL-terminated string."""
        data = value.encode("latin-1", errors="replace") + b"\x00"
        for existing in self.globals.values():
            if (
                existing.name.startswith(".str")
                and len(existing.init) == 1
                and existing.init[0].kind == "bytes"
                and existing.init[0].data == data
            ):
                return existing.name
        name = f".str{self._next_string}"
        self._next_string += 1
        self.add_global(
            GlobalData(name, len(data), 1, [InitItem(0, "bytes", data=data)])
        )
        return name

    # ------------------------------------------------------------------
    # queries

    def call_sites(self) -> list[tuple[str, Instr]]:
        """All (caller name, call instruction) pairs, direct and indirect."""
        result = []
        for function in self.functions.values():
            for instr in function.body:
                if instr.op is Opcode.CALL or instr.op is Opcode.ICALL:
                    result.append((function.name, instr))
        return result

    def total_code_size(self) -> int:
        """Program code size: total real IL instructions (§2.3.1)."""
        return sum(fn.code_size() for fn in self.functions.values())

    def clone(self) -> "ILModule":
        """Deep-copy the module (the inliner transforms a copy)."""
        copy = ILModule(self.entry)
        for name, function in self.functions.items():
            copy.functions[name] = function.clone()
        for name, data in self.globals.items():
            copy.globals[name] = GlobalData(
                data.name, data.size, data.align, list(data.init)
            )
        copy.externals = set(self.externals)
        copy.address_taken = set(self.address_taken)
        copy._next_site = self._next_site
        copy._next_string = self._next_string
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ILModule {len(self.functions)} functions,"
            f" {len(self.globals)} globals, entry={self.entry!r}>"
        )
