"""IL functions and stack-frame layout."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ILError
from repro.il.instructions import Instr, is_real

#: Fixed per-call control-stack overhead, in bytes: return address,
#: saved frame pointer, and callee-saved register spill area. Mirrors
#: the paper's §2.3.2 list (parameter passing, register saving, local
#: declarations, returned value passing); parameters are added per call.
CALL_OVERHEAD_BYTES = 32
PARAM_WORD_BYTES = 4


@dataclass(slots=True)
class FrameSlot:
    """A named region in a function's stack frame.

    Slots hold address-taken scalars, arrays, and structs. ``offset`` is
    assigned by :meth:`ILFunction.layout_frame`.
    """

    name: str
    size: int
    align: int = 4
    offset: int = -1


class ILFunction:
    """One function in IL form.

    ``params`` are the virtual registers that receive arguments, in
    order. ``body`` is a flat instruction list (labels included).
    """

    def __init__(
        self,
        name: str,
        params: list[str],
        returns_value: bool,
        inline_hint: bool = False,
    ):
        self.name = name
        self.params = list(params)
        self.returns_value = returns_value
        self.inline_hint = inline_hint
        self.body: list[Instr] = []
        self.slots: dict[str, FrameSlot] = {}
        self.frame_size = 0
        #: Monotonic counters for fresh names, preserved across inlining
        #: so freshly generated names never collide.
        self.next_temp = 0
        self.next_label = 0

    # ------------------------------------------------------------------
    # naming

    def new_temp(self, prefix: str = "t") -> str:
        name = f"{prefix}{self.next_temp}"
        self.next_temp += 1
        return name

    def new_label(self, prefix: str = "L") -> str:
        name = f"{prefix}{self.next_label}"
        self.next_label += 1
        return name

    # ------------------------------------------------------------------
    # frame management

    def add_slot(self, name: str, size: int, align: int = 4) -> FrameSlot:
        if name in self.slots:
            raise ILError(f"duplicate frame slot {name!r} in {self.name}")
        slot = FrameSlot(name, max(size, 1), align)
        self.slots[name] = slot
        return slot

    def layout_frame(self) -> int:
        """Assign slot offsets and return the total frame size in bytes.

        Called after lowering and again after each inline expansion, as
        the paper requires ("function stack frame sizes ... are updated
        after each expansion", §5).
        """
        offset = 0
        for slot in self.slots.values():
            align = max(slot.align, 1)
            offset = (offset + align - 1) // align * align
            slot.offset = offset
            offset += slot.size
        self.frame_size = (offset + 3) // 4 * 4
        return self.frame_size

    def stack_usage(self) -> int:
        """Control-stack bytes one activation of this function consumes."""
        return CALL_OVERHEAD_BYTES + self.frame_size + PARAM_WORD_BYTES * len(self.params)

    # ------------------------------------------------------------------
    # metrics

    def code_size(self) -> int:
        """Number of real (non-label) IL instructions — the paper's
        per-function code size metric, re-evaluated during selection."""
        return sum(1 for instr in self.body if is_real(instr))

    def label_indices(self) -> dict[str, int]:
        """Map each label name to its instruction index."""
        result: dict[str, int] = {}
        for index, instr in enumerate(self.body):
            if instr.label is not None and instr.op == 0:  # Opcode.LABEL
                if instr.label in result:
                    raise ILError(f"duplicate label {instr.label!r} in {self.name}")
                result[instr.label] = index
        return result

    def clone(self) -> "ILFunction":
        """Deep-copy this function (used to duplicate callees, §2.4)."""
        copy = ILFunction(self.name, self.params, self.returns_value, self.inline_hint)
        copy.body = [instr.copy() for instr in self.body]
        copy.slots = {
            name: FrameSlot(slot.name, slot.size, slot.align, slot.offset)
            for name, slot in self.slots.items()
        }
        copy.frame_size = self.frame_size
        copy.next_temp = self.next_temp
        copy.next_label = self.next_label
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ILFunction {self.name} ({self.code_size()} instrs)>"
