"""Differential-correctness harness for the inline expander.

Two complementary attacks on the same question — *is inlining a
semantic no-op, and does the cost model's arithmetic match physical
expansion?*:

- :mod:`repro.verify.differential` runs original and inlined modules
  in lockstep over real benchmark inputs, comparing every output
  channel and checking the calls-eliminated and size-reconciliation
  invariants.
- :mod:`repro.verify.fuzz` generates random programs in the supported
  C subset and pushes them through compile → optimize → inline →
  optimize with a differential execution after every stage.

Both report findings as data (:class:`DifferentialReport` /
:class:`FuzzReport`) rather than raising, so the CLI's ``check``
subcommand and CI can print everything that went wrong in one run.
"""

from repro.verify.differential import (
    DifferentialReport,
    verify_benchmark,
    verify_inlining,
    verify_suite,
)
from repro.verify.fuzz import (
    FUZZ_PARAMS,
    FuzzFailure,
    FuzzReport,
    check_program,
    generate_program,
    run_fuzz,
)

__all__ = [
    "DifferentialReport",
    "FUZZ_PARAMS",
    "FuzzFailure",
    "FuzzReport",
    "check_program",
    "generate_program",
    "run_fuzz",
    "verify_benchmark",
    "verify_inlining",
    "verify_suite",
]
