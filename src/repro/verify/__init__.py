"""Differential-correctness harness for the inline expander.

Two complementary attacks on the same question — *is inlining a
semantic no-op, and does the cost model's arithmetic match physical
expansion?*:

- :mod:`repro.verify.differential` runs original and inlined modules
  in lockstep over real benchmark inputs, comparing every output
  channel and checking the calls-eliminated and size-reconciliation
  invariants.
- :mod:`repro.verify.fuzz` generates random programs in the supported
  C subset and pushes them through compile → optimize → inline →
  optimize with a differential execution after every stage.

A third oracle, :mod:`repro.verify.engines`, answers an orthogonal
question — *is the fast execution tier observationally identical to
the reference counting interpreter?* — by running the same module
under both engines and diffing outputs and every counter channel.

Both report findings as data (:class:`DifferentialReport` /
:class:`FuzzReport`) rather than raising, so the CLI's ``check``
subcommand and CI can print everything that went wrong in one run.
"""

from repro.verify.differential import (
    DifferentialReport,
    verify_benchmark,
    verify_inlining,
    verify_suite,
)
from repro.verify.engines import (
    EngineDiffReport,
    diff_engines,
    diff_engines_benchmark,
    diff_engines_suite,
    replay_fuzz_corpus,
)
from repro.verify.fuzz import (
    FUZZ_PARAMS,
    FuzzFailure,
    FuzzReport,
    check_program,
    generate_program,
    run_fuzz,
)

__all__ = [
    "DifferentialReport",
    "EngineDiffReport",
    "FUZZ_PARAMS",
    "FuzzFailure",
    "FuzzReport",
    "check_program",
    "diff_engines",
    "diff_engines_benchmark",
    "diff_engines_suite",
    "generate_program",
    "replay_fuzz_corpus",
    "run_fuzz",
    "verify_benchmark",
    "verify_inlining",
    "verify_suite",
]
