"""The engine-equivalence oracle.

The fast tier (:mod:`repro.vm.fast`) is only admissible if it is
*observationally identical* to the reference counting interpreter — not
just same outputs, but the same exact integer profile: dynamic IL
instructions, control transfers, calls, returns, per-site and
per-function counts, and (when collected) per-branch taken/not-taken
splits. This module runs the same module under both engines over the
same inputs and diffs every one of those channels.

Two entry points mirror the differential oracle's shape:

- :func:`diff_engines_suite` sweeps the benchmark suite (or a named
  subset) at a given scale;
- :func:`replay_fuzz_corpus` regenerates the seeded fuzz corpus and
  replays every program that compiles under both engines, so the fast
  tier is exercised on shapes the hand-written suite never produces.

Both report findings as data (:class:`EngineDiffReport`), matching the
``check`` subcommand's print-everything-then-exit-nonzero contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.observability import Observability, resolve
from repro.profiler.profile import RunSpec, run_once
from repro.vm.machine import ENGINES
from repro.workloads.suite import Benchmark, benchmark_names, benchmark_suite


@dataclass
class EngineDiffReport:
    """What the oracle observed for one program under both engines."""

    name: str
    runs: int = 0
    #: Per-input, per-channel differences (empty means the fast tier is
    #: observationally identical to the counting interpreter).
    divergences: list[str] = field(default_factory=list)
    #: Total dynamic IL instructions (identical across engines when ok).
    il: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        """One status line, the shape the CLI prints per program."""
        status = "ok" if self.ok else "FAIL"
        line = f"{self.name}: {status} ({self.runs} inputs, {self.il} il)"
        for problem in self.divergences:
            line += f"\n  - {problem}"
        return line


def _counter_dicts(counters) -> dict[str, object]:
    """Every counter channel as a plain comparable dict."""
    return {
        "il": counters.il,
        "ct": counters.ct,
        "calls": counters.calls,
        "returns": counters.returns,
        "site_counts": dict(counters.site_counts),
        "func_counts": dict(counters.func_counts),
        "branch_counts": dict(counters.branch_counts),
    }


def _compare_run(label: str, reference, fast) -> list[str]:
    """Describe every channel on which the two engines differ."""
    problems: list[str] = []
    if reference.exit_code != fast.exit_code:
        problems.append(
            f"{label}: exit code {reference.exit_code} (counting)"
            f" != {fast.exit_code} (fast)"
        )
    out_a, out_b = bytes(reference.os.stdout), bytes(fast.os.stdout)
    if out_a != out_b:
        offset = next(
            (i for i, (a, b) in enumerate(zip(out_a, out_b)) if a != b),
            min(len(out_a), len(out_b)),
        )
        problems.append(
            f"{label}: stdout differs at byte {offset}"
            f" (lengths {len(out_a)} vs {len(out_b)})"
        )
    if bytes(reference.os.stderr) != bytes(fast.os.stderr):
        problems.append(f"{label}: stderr differs")
    if reference.os.written_files != fast.os.written_files:
        paths = sorted(
            set(reference.os.written_files) | set(fast.os.written_files)
        )
        differing = [
            path
            for path in paths
            if reference.os.written_files.get(path)
            != fast.os.written_files.get(path)
        ]
        problems.append(f"{label}: written files differ: {', '.join(differing)}")
    ref_counts = _counter_dicts(reference.counters)
    fast_counts = _counter_dicts(fast.counters)
    for channel, ref_value in ref_counts.items():
        fast_value = fast_counts[channel]
        if ref_value == fast_value:
            continue
        if isinstance(ref_value, dict):
            keys = sorted(
                k
                for k in set(ref_value) | set(fast_value)
                if ref_value.get(k) != fast_value.get(k)
            )
            shown = ", ".join(str(k) for k in keys[:5])
            more = f" (+{len(keys) - 5} more)" if len(keys) > 5 else ""
            problems.append(
                f"{label}: {channel} differ at {shown}{more}"
            )
        else:
            problems.append(
                f"{label}: {channel} {ref_value} (counting)"
                f" != {fast_value} (fast)"
            )
    return problems


def diff_engines(
    module,
    specs: list[RunSpec],
    name: str = "module",
    collect_branches: bool = True,
    obs: Observability | None = None,
) -> EngineDiffReport:
    """Run ``module`` under both engines over ``specs`` and diff them.

    Compares, per input: exit code, stdout bytes, stderr bytes, written
    files, and the full counter state — ``il``/``ct``/``calls``/
    ``returns`` plus the per-site, per-function, and (with
    ``collect_branches``) per-branch dictionaries. Never raises on a
    divergence; everything lands in the returned report.
    """
    obs = resolve(obs)
    report = EngineDiffReport(name=name, runs=len(specs))
    with obs.tracer.span("verify.engines", name=name) as attrs:
        for index, spec in enumerate(specs):
            label = spec.label or f"input {index}"
            reference = run_once(
                module,
                spec,
                collect_branches=collect_branches,
                obs=obs,
                engine="counting",
            )
            fast = run_once(
                module,
                spec,
                collect_branches=collect_branches,
                obs=obs,
                engine="fast",
            )
            report.il += reference.counters.il
            report.divergences.extend(_compare_run(label, reference, fast))
        attrs["ok"] = report.ok
        attrs["il"] = report.il
    if obs.metrics.enabled:
        obs.metrics.inc("verify.engine_programs")
        if report.divergences:
            obs.metrics.inc(
                "verify.engine_divergences", len(report.divergences)
            )
    return report


def diff_engines_benchmark(
    benchmark: Benchmark,
    scale: str = "small",
    collect_branches: bool = True,
    obs: Observability | None = None,
) -> EngineDiffReport:
    """Compile one suite benchmark and diff the engines on it."""
    obs = resolve(obs)
    module = benchmark.compile(obs=obs)
    return diff_engines(
        module,
        benchmark.make_runs(scale),
        name=benchmark.name,
        collect_branches=collect_branches,
        obs=obs,
    )


def diff_engines_suite(
    names: list[str] | None = None,
    scale: str = "small",
    collect_branches: bool = True,
    obs: Observability | None = None,
) -> list[EngineDiffReport]:
    """Diff the engines over every suite benchmark (or a subset)."""
    if names is not None:
        unknown = sorted(set(names) - set(benchmark_names()))
        if unknown:
            raise ValueError(
                f"unknown benchmark name(s): {', '.join(unknown)};"
                f" known: {', '.join(benchmark_names())}"
            )
    return [
        diff_engines_benchmark(
            benchmark, scale, collect_branches=collect_branches, obs=obs
        )
        for benchmark in benchmark_suite()
        if names is None or benchmark.name in names
    ]


def replay_fuzz_corpus(
    count: int,
    seed: int = 0,
    obs: Observability | None = None,
) -> list[EngineDiffReport]:
    """Replay the seeded fuzz corpus under both engines.

    Regenerates the same deterministic programs :func:`run_fuzz` would
    (same seed arithmetic), compiles each, and diffs the engines on the
    result. Programs that fail to compile are skipped — the fuzz
    campaign itself owns compile-stage findings — but an execution-side
    :class:`~repro.errors.ReproError` under either engine is reported
    as a divergence, since both engines must trap identically.
    """
    from repro.compiler import compile_program
    from repro.verify.fuzz import generate_program

    obs = resolve(obs)
    reports: list[EngineDiffReport] = []
    for index in range(count):
        program_seed = seed + index
        source = generate_program(program_seed)
        name = f"fuzz-{index}"
        try:
            module = compile_program(
                source, filename=f"fuzz{index}.c", obs=obs
            )
        except ReproError:
            continue
        try:
            reports.append(
                diff_engines(module, [RunSpec(label=name)], name=name, obs=obs)
            )
        except ReproError as error:
            report = EngineDiffReport(name=name, runs=1)
            report.divergences.append(f"engine raised: {error}")
            reports.append(report)
    return reports


__all__ = [
    "ENGINES",
    "EngineDiffReport",
    "diff_engines",
    "diff_engines_benchmark",
    "diff_engines_suite",
    "replay_fuzz_corpus",
]
