"""The differential-equivalence oracle.

Inline expansion must be a *semantic no-op*: for every input, the
inlined program produces exactly the outputs of the original. This
module proves that claim empirically by running both modules in
lockstep over the same inputs and asserting, per input, identical exit
codes, identical stdout bytes, and identical written files — and, over
the whole input set, two quantitative invariants tying the inliner's
bookkeeping to physical reality:

- **calls-eliminated floor**: the dynamic calls removed by inlining
  (original total minus inlined total, from the VM's exact integer
  counters) are at least the sum of the selected arcs' dynamic counts
  under the measured profile. Expansion deletes exactly those call
  executions; copied sites inside spliced bodies keep executing, so
  the floor is tight in a deterministic VM.
- **size reconciliation**: the cost model's projected program size
  equals the measured post-expansion code size, exactly (no epsilon).
  :class:`~repro.inliner.manager.InlineExpander` asserts the same
  identity internally; the oracle re-checks and *reports* it so a
  drift shows up as data, not just a raised exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.inliner.manager import InlineResult, inline_module
from repro.inliner.params import InlineParameters
from repro.observability import Observability, resolve
from repro.opt import optimize_module
from repro.profiler.profile import ProfileData, RunSpec, profile_module, run_once
from repro.workloads.suite import Benchmark, benchmark_names, benchmark_suite


@dataclass
class DifferentialReport:
    """What the oracle observed for one program."""

    name: str
    runs: int = 0
    expansions: int = 0
    #: Per-input behavioral differences (empty means equivalent).
    divergences: list[str] = field(default_factory=list)
    #: Broken quantitative invariants (empty means reconciled).
    invariant_failures: list[str] = field(default_factory=list)
    calls_before: int = 0
    calls_after: int = 0
    #: Sum of the selected arcs' integer dynamic counts — the minimum
    #: number of dynamic calls expansion must have eliminated.
    eliminated_floor: int = 0
    projected_size: int = 0
    measured_size: int = 0

    @property
    def calls_eliminated(self) -> int:
        return self.calls_before - self.calls_after

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.invariant_failures

    def summary(self) -> str:
        """One status line, the shape the CLI prints per program."""
        status = "ok" if self.ok else "FAIL"
        line = (
            f"{self.name}: {status} ({self.runs} inputs,"
            f" {self.expansions} expansions,"
            f" {self.calls_eliminated} calls eliminated"
            f" >= floor {self.eliminated_floor},"
            f" size {self.projected_size} == {self.measured_size})"
        )
        for problem in self.divergences + self.invariant_failures:
            line += f"\n  - {problem}"
        return line


def _compare_run(label: str, original, inlined) -> list[str]:
    """Describe every channel on which two runs of one input differ."""
    problems: list[str] = []
    if original.exit_code != inlined.exit_code:
        problems.append(
            f"{label}: exit code {original.exit_code} != {inlined.exit_code}"
        )
    out_a, out_b = bytes(original.os.stdout), bytes(inlined.os.stdout)
    if out_a != out_b:
        offset = next(
            (i for i, (a, b) in enumerate(zip(out_a, out_b)) if a != b),
            min(len(out_a), len(out_b)),
        )
        problems.append(
            f"{label}: stdout differs at byte {offset}"
            f" (lengths {len(out_a)} vs {len(out_b)})"
        )
    if original.os.written_files != inlined.os.written_files:
        paths = sorted(
            set(original.os.written_files) | set(inlined.os.written_files)
        )
        differing = [
            path
            for path in paths
            if original.os.written_files.get(path)
            != inlined.os.written_files.get(path)
        ]
        problems.append(f"{label}: written files differ: {', '.join(differing)}")
    return problems


def verify_inlining(
    module,
    specs: list[RunSpec],
    params: InlineParameters | None = None,
    seed: int = 0,
    name: str = "module",
    profile: ProfileData | None = None,
    obs: Observability | None = None,
    engine: str = "counting",
) -> DifferentialReport:
    """Run the differential oracle on one compiled module.

    Profiles the original over ``specs`` (unless a matching ``profile``
    is supplied), inlines under it with the per-pass IL checker enabled,
    then executes original and inlined modules in lockstep over every
    input. Never raises on a divergence — everything the oracle finds
    lands in the returned :class:`DifferentialReport`. All executions
    use ``engine`` (both tiers produce identical counters, so the
    oracle's verdict is engine-independent; ``fast`` just gets there
    sooner).
    """
    params = params or InlineParameters()
    obs = resolve(obs)
    report = DifferentialReport(name=name, runs=len(specs))
    with obs.tracer.span("verify.differential", name=name) as attrs:
        if profile is None:
            profile = profile_module(module, specs, obs=obs, engine=engine)
        result: InlineResult = inline_module(
            module, profile, params, seed=seed, check=True, obs=obs
        )
        report.expansions = len(result.records)
        report.projected_size = result.selection.projected_size
        report.measured_size = result.pre_cleanup_size
        if report.projected_size != report.measured_size:
            report.invariant_failures.append(
                f"projected size {report.projected_size} != measured"
                f" post-expansion size {report.measured_size}"
            )

        site_counts = profile.total.site_counts
        report.eliminated_floor = sum(
            site_counts.get(arc.site, 0) for arc in result.selection.selected
        )
        for index, spec in enumerate(specs):
            label = spec.label or f"input {index}"
            original = run_once(module, spec, obs=obs, engine=engine)
            inlined = run_once(result.module, spec, obs=obs, engine=engine)
            report.calls_before += original.counters.calls
            report.calls_after += inlined.counters.calls
            report.divergences.extend(_compare_run(label, original, inlined))
        if report.calls_eliminated < report.eliminated_floor:
            report.invariant_failures.append(
                f"only {report.calls_eliminated} dynamic calls eliminated,"
                f" but the {len(result.selection.selected)} selected arcs"
                f" executed {report.eliminated_floor} times under the profile"
            )
        attrs["ok"] = report.ok
        attrs["expansions"] = report.expansions
    if obs.metrics.enabled:
        obs.metrics.inc("verify.programs")
        if report.divergences:
            obs.metrics.inc("verify.divergences", len(report.divergences))
        if report.invariant_failures:
            obs.metrics.inc(
                "verify.invariant_failures", len(report.invariant_failures)
            )
    return report


def verify_benchmark(
    benchmark: Benchmark,
    scale: str = "small",
    params: InlineParameters | None = None,
    pre_optimize: bool = True,
    seed: int = 0,
    obs: Observability | None = None,
    engine: str = "counting",
) -> DifferentialReport:
    """Compile one suite benchmark and run the oracle on it."""
    obs = resolve(obs)
    module = benchmark.compile(obs=obs)
    if pre_optimize:
        optimize_module(module, obs=obs)
    return verify_inlining(
        module,
        benchmark.make_runs(scale),
        params,
        seed=seed,
        name=benchmark.name,
        obs=obs,
        engine=engine,
    )


def verify_suite(
    names: list[str] | None = None,
    scale: str = "small",
    params: InlineParameters | None = None,
    pre_optimize: bool = True,
    seed: int = 0,
    obs: Observability | None = None,
    engine: str = "counting",
) -> list[DifferentialReport]:
    """Run the oracle over every suite benchmark (or a named subset)."""
    if names is not None:
        unknown = sorted(set(names) - set(benchmark_names()))
        if unknown:
            raise ValueError(
                f"unknown benchmark name(s): {', '.join(unknown)};"
                f" known: {', '.join(benchmark_names())}"
            )
    return [
        verify_benchmark(
            benchmark,
            scale,
            params,
            pre_optimize,
            seed=seed,
            obs=obs,
            engine=engine,
        )
        for benchmark in benchmark_suite()
        if names is None or benchmark.name in names
    ]
