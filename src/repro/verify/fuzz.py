"""Property-based fuzzing of the full compile → inline pipeline.

Generates small random C programs inside the supported subset and
pushes each through the real pipeline stage by stage — compile, run the
baseline, optimize, inline under a measured profile, optimize again —
differentially executing after every stage against the baseline
outputs. Any divergence, verifier rejection, or broken inliner
invariant is a finding.

Generated programs are deterministic for a given seed (``random.Random``
only), always terminate (loops are counted, bounded, and strictly
increasing), never divide by anything that can be zero (divisors are
nonzero constants), and always produce output (``print_int`` of live
results), so a silent miscompile cannot hide. Call structure is
acyclic — each function calls only earlier-defined functions — and
``main`` drives every root often enough to clear the inliner's weight
threshold, so the inline stage actually exercises expansion rather
than vacuously selecting nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.compiler import compile_program
from repro.errors import ReproError
from repro.il.verifier import verify_module
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.observability import Observability, resolve
from repro.opt import optimize_module
from repro.profiler.profile import RunSpec, profile_module, run_once
from repro.verify.differential import DifferentialReport, verify_inlining

#: Inliner knobs the fuzz stage runs under: a low threshold and a
#: generous growth budget so small random programs still expand.
FUZZ_PARAMS = InlineParameters(weight_threshold=4.0, size_limit_factor=3.0)


@dataclass
class FuzzFailure:
    """One program that broke a pipeline stage."""

    index: int
    seed: int
    stage: str
    detail: str
    source: str


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    count: int
    seed: int
    failures: list[FuzzFailure] = field(default_factory=list)
    expansions: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


class _ProgramBuilder:
    """Generates one random program in the supported C subset."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.globals: list[str] = []
        #: name -> (param count, returns value)
        self.functions: list[tuple[str, int, bool]] = []

    # -- expressions ---------------------------------------------------

    def _operand(self, scope: list[str]) -> str:
        choices = scope + self.globals
        if choices and self.rng.random() < 0.7:
            return self.rng.choice(choices)
        return str(self.rng.randint(0, 9))

    def _expr(self, scope: list[str]) -> str:
        kind = self.rng.random()
        if kind < 0.35:
            return self._operand(scope)
        left, right = self._operand(scope), self._operand(scope)
        if kind < 0.8:
            op = self.rng.choice(["+", "-", "*"])
            return f"{left} {op} {right}"
        # Division and modulo only by a nonzero constant: the generated
        # program must be defined on every path.
        op = self.rng.choice(["/", "%"])
        return f"{left} {op} {self.rng.randint(1, 7)}"

    def _condition(self, scope: list[str]) -> str:
        op = self.rng.choice(["<", ">", "<=", ">=", "==", "!="])
        return f"{self._operand(scope)} {op} {self._operand(scope)}"

    def _call(self, scope: list[str]) -> str | None:
        callable_fns = [fn for fn in self.functions if fn[2]]
        if not callable_fns:
            return None
        name, arity, _ = self.rng.choice(callable_fns)
        args = ", ".join(self._operand(scope) for _ in range(arity))
        return f"{name}({args})"

    # -- statements ----------------------------------------------------

    def _statement(self, scope: list[str], lines: list[str], indent: str) -> None:
        kind = self.rng.random()
        target = self.rng.choice(scope + self.globals)
        if kind < 0.45:
            lines.append(f"{indent}{target} = {self._expr(scope)};")
        elif kind < 0.7:
            call = self._call(scope)
            if call is None:
                lines.append(f"{indent}{target} = {self._expr(scope)};")
            else:
                lines.append(f"{indent}{target} = {target} + {call};")
        elif kind < 0.85:
            lines.append(f"{indent}if ({self._condition(scope)}) {{")
            lines.append(f"{indent}    {target} = {self._expr(scope)};")
            if self.rng.random() < 0.5:
                lines.append(f"{indent}}} else {{")
                other = self.rng.choice(scope + self.globals)
                lines.append(f"{indent}    {other} = {self._expr(scope)};")
            lines.append(f"{indent}}}")
        else:
            void_fns = [fn for fn in self.functions if not fn[2]]
            if void_fns:
                name, arity, _ = self.rng.choice(void_fns)
                args = ", ".join(self._operand(scope) for _ in range(arity))
                lines.append(f"{indent}{name}({args});")
            else:
                lines.append(f"{indent}{target} = {self._expr(scope)};")

    def _loop(self, scope: list[str], lines: list[str], counter: str) -> None:
        bound = self.rng.randint(2, 6)
        lines.append(f"    {counter} = 0;")
        lines.append(f"    while ({counter} < {bound}) {{")
        for _ in range(self.rng.randint(1, 2)):
            self._statement(scope, lines, "        ")
        lines.append(f"        {counter} = {counter} + 1;")
        lines.append("    }")

    # -- declarations --------------------------------------------------

    def _function(self, index: int) -> str:
        returns_value = self.rng.random() < 0.75
        arity = self.rng.randint(0, 2)
        name = f"fn{index}"
        params = [f"p{i}" for i in range(arity)]
        signature = ", ".join(f"int {p}" for p in params) or "void"
        return_type = "int" if returns_value else "void"
        lines = [f"{return_type} {name}({signature})", "{"]
        locals_ = [f"v{i}" for i in range(self.rng.randint(1, 3))]
        for local in locals_:
            lines.append(f"    int {local} = {self._operand(params)};")
        use_loop = self.rng.random() < 0.5
        if use_loop:
            # Declarations stay at the top of the block (C89 style).
            lines.append(f"    int loop{index} = 0;")
        scope = params + locals_
        for _ in range(self.rng.randint(1, 4)):
            self._statement(scope, lines, "    ")
        if use_loop:
            self._loop(scope, lines, f"loop{index}")
        if returns_value:
            lines.append(f"    return {self._expr(scope)};")
        elif self.globals:
            # Void functions earn their keep by mutating a global —
            # otherwise optimization could legally delete every call.
            target = self.rng.choice(self.globals)
            lines.append(f"    {target} = {target} + {self._expr(scope)};")
        lines.append("}")
        self.functions.append((name, arity, returns_value))
        return "\n".join(lines)

    def _main(self) -> str:
        lines = ["int main(void)", "{", "    int acc = 0;", "    int i = 0;"]
        # Drive the call graph hard enough that hot arcs clear the
        # fuzzing weight threshold and inlining really happens.
        iterations = self.rng.randint(8, 20)
        lines.append(f"    while (i < {iterations}) {{")
        for name, arity, returns_value in self.functions:
            args = ", ".join(
                str(self.rng.randint(0, 9)) for _ in range(arity)
            )
            if returns_value:
                lines.append(f"        acc = acc + {name}({args});")
            else:
                lines.append(f"        {name}({args});")
        lines.append("        i = i + 1;")
        lines.append("    }")
        lines.append("    print_int(acc);")
        lines.append("    putchar('\\n');")
        for name in self.globals:
            lines.append(f"    print_int({name});")
            lines.append("    putchar('\\n');")
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines)

    def build(self) -> str:
        pieces = ["#include <sys.h>", ""]
        for index in range(self.rng.randint(1, 3)):
            name = f"g{index}"
            self.globals.append(name)
            pieces.append(f"int {name} = {self.rng.randint(0, 9)};")
        pieces.append("")
        for index in range(self.rng.randint(2, 5)):
            pieces.append(self._function(index))
            pieces.append("")
        pieces.append(self._main())
        return "\n".join(pieces)


def generate_program(seed: int) -> str:
    """One deterministic random program for ``seed``."""
    return _ProgramBuilder(random.Random(seed)).build()


def _behavior(result) -> tuple[int, bytes]:
    return result.exit_code, bytes(result.os.stdout)


def check_program(
    source: str,
    index: int,
    seed: int,
    params: InlineParameters | None = None,
    obs: Observability | None = None,
    engine: str = "counting",
) -> tuple[list[FuzzFailure], DifferentialReport | None]:
    """Push one program through every stage, differentially.

    Stage order: compile (hardened verifier runs inside), baseline run,
    optimize + re-verify + re-run, differential inline oracle on the
    optimized module, optimize-after-inlining + re-verify + re-run.
    Every stage's behavior is compared against the baseline. All
    executions use ``engine``.
    """
    params = params or FUZZ_PARAMS
    obs = resolve(obs)
    spec = RunSpec(label=f"fuzz-{index}")

    def fail(stage: str, detail: str) -> FuzzFailure:
        return FuzzFailure(index, seed, stage, detail, source)

    try:
        module = compile_program(source, filename=f"fuzz{index}.c", obs=obs)
    except ReproError as error:
        return [fail("compile", str(error))], None
    baseline = run_once(module, spec, obs=obs, engine=engine)
    expected = _behavior(baseline)
    if baseline.exit_code != 0:
        return [fail("baseline", f"exit code {baseline.exit_code}")], None

    optimized = module.clone()
    try:
        optimize_module(optimized, obs=obs)
        verify_module(optimized)
    except ReproError as error:
        return [fail("optimize", str(error))], None
    if _behavior(run_once(optimized, spec, obs=obs, engine=engine)) != expected:
        return [fail("optimize", "behavior diverged from baseline")], None

    try:
        report = verify_inlining(
            optimized,
            [spec],
            params,
            seed=seed,
            name=f"fuzz-{index}",
            obs=obs,
            engine=engine,
        )
    except ReproError as error:
        return [fail("inline", str(error))], None
    failures = [
        fail("inline", problem)
        for problem in report.divergences + report.invariant_failures
    ]

    inlined = optimized.clone()
    try:
        # Re-inline on a clone so the post-inline optimizer has a module
        # to mutate (the oracle keeps its own result internal).
        profile = profile_module(inlined, [spec], obs=obs, engine=engine)
        result = inline_module(
            inlined, profile, params, seed=seed, check=True, obs=obs
        )
        optimize_module(result.module, obs=obs)
        verify_module(result.module)
    except ReproError as error:
        failures.append(fail("optimize-after-inline", str(error)))
        return failures, report
    if _behavior(run_once(result.module, spec, obs=obs, engine=engine)) != expected:
        failures.append(
            fail("optimize-after-inline", "behavior diverged from baseline")
        )
    return failures, report


def run_fuzz(
    count: int,
    seed: int = 0,
    params: InlineParameters | None = None,
    obs: Observability | None = None,
    engine: str = "counting",
) -> FuzzReport:
    """Run a fuzzing campaign of ``count`` programs from ``seed``."""
    obs = resolve(obs)
    report = FuzzReport(count=count, seed=seed)
    with obs.tracer.span("verify.fuzz", count=count, seed=seed) as attrs:
        for index in range(count):
            program_seed = seed + index
            source = generate_program(program_seed)
            failures, differential = check_program(
                source, index, program_seed, params, obs=obs, engine=engine
            )
            report.failures.extend(failures)
            if differential is not None:
                report.expansions += differential.expansions
        attrs["failures"] = len(report.failures)
        attrs["expansions"] = report.expansions
    if obs.metrics.enabled:
        obs.metrics.inc("verify.fuzz_programs", count)
        if report.failures:
            obs.metrics.inc("verify.fuzz_failures", len(report.failures))
    return report
