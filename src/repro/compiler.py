"""End-to-end compilation driver: C source text to a linked IL module.

>>> from repro.compiler import compile_program
>>> module = compile_program('''
... #include <sys.h>
... int main(void) { putchar('h'); putchar('i'); return 0; }
... ''')
>>> from repro.vm import Machine
>>> Machine(module).run().stdout
'hi'
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.parser import parse_translation_unit
from repro.frontend.preprocessor import Preprocessor
from repro.frontend.sema import AnalyzedUnit, analyze
from repro.il.lowering import lower_unit
from repro.il.module import ILModule
from repro.il.verifier import verify_module
from repro.runtime import LIBC_SOURCE, standard_headers


@dataclass
class CompileResult:
    """Module plus the analysis facts some tools want to inspect."""

    module: ILModule
    analysis: AnalyzedUnit


def compile_to_analysis(
    source: str,
    filename: str = "<input>",
    headers: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    link_libc: bool = True,
) -> AnalyzedUnit:
    """Preprocess, parse, and semantically analyze a program.

    With ``link_libc`` (the default) the C-subset libc source is
    prepended as part of the same translation unit, so its functions
    have visible bodies. Without it, libc calls resolve against header
    prototypes only and become external functions.
    """
    all_headers = standard_headers()
    if headers:
        all_headers.update(headers)
    preprocessor = Preprocessor(all_headers, defines)
    pieces = []
    if link_libc:
        pieces.append(preprocessor.process(LIBC_SOURCE, "<libc>"))
    pieces.append(preprocessor.process(source, filename))
    unit = parse_translation_unit("\n".join(pieces), filename)
    return analyze(unit)


def compile_program(
    source: str,
    filename: str = "<input>",
    headers: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    link_libc: bool = True,
    entry: str = "main",
    verify: bool = True,
) -> ILModule:
    """Compile C-subset source text into a verified, linked IL module."""
    analysis = compile_to_analysis(source, filename, headers, defines, link_libc)
    module = lower_unit(analysis, entry)
    if verify:
        verify_module(module)
    return module


def compile_with_analysis(
    source: str,
    filename: str = "<input>",
    headers: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    link_libc: bool = True,
    entry: str = "main",
) -> CompileResult:
    """Like :func:`compile_program` but also returns the analysis."""
    analysis = compile_to_analysis(source, filename, headers, defines, link_libc)
    module = lower_unit(analysis, entry)
    verify_module(module)
    return CompileResult(module, analysis)
