"""End-to-end compilation driver: C source text to a linked IL module.

>>> from repro.compiler import compile_program
>>> module = compile_program('''
... #include <sys.h>
... int main(void) { putchar('h'); putchar('i'); return 0; }
... ''')
>>> from repro.vm import Machine
>>> Machine(module).run().stdout
'hi'
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.parser import parse_translation_unit
from repro.frontend.preprocessor import Preprocessor
from repro.frontend.sema import AnalyzedUnit, analyze
from repro.il.lowering import lower_unit
from repro.il.module import ILModule
from repro.il.verifier import verify_module
from repro.observability import Observability, resolve
from repro.runtime import LIBC_SOURCE, standard_headers


@dataclass
class CompileResult:
    """Module plus the analysis facts some tools want to inspect."""

    module: ILModule
    analysis: AnalyzedUnit


def compile_to_analysis(
    source: str,
    filename: str = "<input>",
    headers: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    link_libc: bool = True,
    obs: Observability | None = None,
) -> AnalyzedUnit:
    """Preprocess, parse, and semantically analyze a program.

    With ``link_libc`` (the default) the C-subset libc source is
    prepended as part of the same translation unit, so its functions
    have visible bodies. Without it, libc calls resolve against header
    prototypes only and become external functions.
    """
    obs = resolve(obs)
    all_headers = standard_headers()
    if headers:
        all_headers.update(headers)
    preprocessor = Preprocessor(all_headers, defines)
    with obs.tracer.span("frontend.preprocess"):
        pieces = []
        if link_libc:
            pieces.append(preprocessor.process(LIBC_SOURCE, "<libc>"))
        pieces.append(preprocessor.process(source, filename))
    with obs.tracer.span("frontend.parse"):
        unit = parse_translation_unit("\n".join(pieces), filename, obs=obs)
    with obs.tracer.span("frontend.analyze"):
        return analyze(unit)


def compile_program(
    source: str,
    filename: str = "<input>",
    headers: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    link_libc: bool = True,
    entry: str = "main",
    verify: bool = True,
    obs: Observability | None = None,
) -> ILModule:
    """Compile C-subset source text into a verified, linked IL module."""
    return compile_with_analysis(
        source, filename, headers, defines, link_libc, entry, verify, obs=obs
    ).module


def compile_with_analysis(
    source: str,
    filename: str = "<input>",
    headers: dict[str, str] | None = None,
    defines: dict[str, str] | None = None,
    link_libc: bool = True,
    entry: str = "main",
    verify: bool = True,
    obs: Observability | None = None,
) -> CompileResult:
    """Like :func:`compile_program` but also returns the analysis.

    Both drivers route through the same ``frontend.*`` spans and
    metrics, so tools using the analysis-returning form are just as
    visible to tracing.
    """
    obs = resolve(obs)
    with obs.tracer.span("frontend.compile", file=filename):
        analysis = compile_to_analysis(
            source, filename, headers, defines, link_libc, obs=obs
        )
        with obs.tracer.span("frontend.lower"):
            module = lower_unit(analysis, entry)
        if verify:
            with obs.tracer.span("frontend.verify"):
                verify_module(module)
    if obs.metrics.enabled:
        obs.metrics.inc("frontend.modules_compiled")
        obs.metrics.inc("frontend.functions_lowered", len(module.functions))
        obs.metrics.inc("frontend.il_instructions_emitted", module.total_code_size())
    return CompileResult(module, analysis)
