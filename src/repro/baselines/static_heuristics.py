"""Static inlining heuristics (no profile).

Each heuristic is a predicate over candidate call sites; the shared
driver orders functions callee-before-caller (topological order on the
acyclic condensation of the static call graph), selects sites under the
same program-size cap as the profile-guided expander, and reuses the
same physical expansion code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.loops import call_sites_in_loops
from repro.callgraph.cycles import find_sccs
from repro.il.function import ILFunction
from repro.il.instructions import Opcode
from repro.il.module import ILModule
from repro.il.verifier import verify_module
from repro.inliner.expand import ExpansionRecord, expand_call_site
from repro.inliner.linearize import _direct_call_graph
from repro.inliner.params import InlineParameters


@dataclass
class _Candidate:
    site: int
    caller: str
    callee: str
    in_loop: bool


@dataclass
class StaticInlineResult:
    """Outcome of one static-heuristic run."""

    module: ILModule
    heuristic: str
    records: list[ExpansionRecord] = field(default_factory=list)
    original_size: int = 0
    final_size: int = 0

    @property
    def code_increase(self) -> float:
        if self.original_size == 0:
            return 0.0
        return (self.final_size - self.original_size) / self.original_size


def _candidates(module: ILModule) -> list[_Candidate]:
    result = []
    for caller_name, function in module.functions.items():
        loop_sites = call_sites_in_loops(function)
        for instr in function.body:
            if instr.op is not Opcode.CALL:
                continue
            if instr.name not in module.functions:
                continue  # external: no body to duplicate
            result.append(
                _Candidate(
                    instr.site, caller_name, instr.name, instr.site in loop_sites
                )
            )
    return result


def _is_leaf(function: ILFunction) -> bool:
    return not any(
        instr.op in (Opcode.CALL, Opcode.ICALL) for instr in function.body
    )


def _callee_first_order(module: ILModule) -> list[str]:
    """Functions ordered callees-before-callers (SCC condensation).

    Built over *direct* arcs only — the worst-case ``$$$``/``###``
    closure would merge every external-calling function into one cycle
    and destroy the ordering (see repro.inliner.linearize).
    """
    graph = _direct_call_graph(module)
    order: list[str] = []
    for component in find_sccs(graph):  # already reverse topological
        for name in component:
            if name in module.functions:
                order.append(name)
    return order


def run_static_heuristic(
    module: ILModule,
    name: str,
    predicate: Callable[[_Candidate, ILModule], bool],
    params: InlineParameters | None = None,
) -> StaticInlineResult:
    """Apply ``predicate`` to every candidate site and expand matches.

    Recursion safety: a site is only expandable when the callee precedes
    the caller in callee-first order, which excludes every cycle (the
    same guarantee the paper gets from its linear sequence).
    """
    params = params or InlineParameters()
    working = module.clone()
    original_size = working.total_code_size()
    limit = params.size_limit(original_size)
    sequence = _callee_first_order(working)
    position = {fn: i for i, fn in enumerate(sequence)}

    # Without a profile the best static priority is structural: loop
    # sites first, then cheaper callees — the same budget the
    # profile-guided expander gets, spent as wisely as a static
    # heuristic can.
    candidates = _candidates(working)
    candidates.sort(
        key=lambda c: (
            not c.in_loop,
            working.functions[c.callee].code_size(),
        )
    )
    selected: list[_Candidate] = []
    projected = original_size
    for candidate in candidates:
        caller_pos = position.get(candidate.caller)
        callee_pos = position.get(candidate.callee)
        if caller_pos is None or callee_pos is None or callee_pos >= caller_pos:
            continue
        if not predicate(candidate, working):
            continue
        callee_size = working.functions[candidate.callee].code_size()
        if projected + callee_size > limit:
            continue
        projected += callee_size
        selected.append(candidate)

    by_caller: dict[str, list[_Candidate]] = {}
    for candidate in selected:
        by_caller.setdefault(candidate.caller, []).append(candidate)
    records = []
    for fn_name in sequence:
        for candidate in by_caller.get(fn_name, ()):
            records.append(expand_call_site(working, candidate.caller, candidate.site))
    verify_module(working)
    return StaticInlineResult(
        module=working,
        heuristic=name,
        records=records,
        original_size=original_size,
        final_size=working.total_code_size(),
    )


def leaf_inline(
    module: ILModule, params: InlineParameters | None = None
) -> StaticInlineResult:
    """IBM PL.8 style: inline every call to a leaf-level procedure."""

    def predicate(candidate: _Candidate, working: ILModule) -> bool:
        return _is_leaf(working.functions[candidate.callee])

    return run_static_heuristic(module, "leaf", predicate, params)


def loop_inline(
    module: ILModule, params: InlineParameters | None = None
) -> StaticInlineResult:
    """MIPS style: inline call sites that sit inside loops."""

    def predicate(candidate: _Candidate, working: ILModule) -> bool:
        return candidate.in_loop

    return run_static_heuristic(module, "loop", predicate, params)


def size_threshold_inline(
    module: ILModule,
    max_callee_size: int = 25,
    params: InlineParameters | None = None,
) -> StaticInlineResult:
    """Inline every call whose callee is small (≤ N IL instructions)."""

    def predicate(candidate: _Candidate, working: ILModule) -> bool:
        return working.functions[candidate.callee].code_size() <= max_callee_size

    return run_static_heuristic(module, f"size<={max_callee_size}", predicate, params)


def hint_inline(
    module: ILModule, params: InlineParameters | None = None
) -> StaticInlineResult:
    """GNU C style: inline calls to functions marked ``inline``."""

    def predicate(candidate: _Candidate, working: ILModule) -> bool:
        return working.functions[candidate.callee].inline_hint

    return run_static_heuristic(module, "hint", predicate, params)
