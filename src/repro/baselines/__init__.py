"""Baseline inlining heuristics that use no profile information.

The paper (§1.2) surveys contemporaries: the IBM PL.8 compiler inlines
all leaf-level procedures; the MIPS C compiler examines code structure
(e.g. loops); GNU C trusts the programmer's ``inline`` keyword. These
are implemented here as comparators for the ablation benchmarks, all
sharing the same physical expansion machinery as the profile-guided
expander.
"""

from repro.baselines.static_heuristics import (
    StaticInlineResult,
    hint_inline,
    leaf_inline,
    loop_inline,
    run_static_heuristic,
    size_threshold_inline,
)

__all__ = [
    "StaticInlineResult",
    "hint_inline",
    "leaf_inline",
    "loop_inline",
    "run_static_heuristic",
    "size_threshold_inline",
]
