"""Profiling: run a program over representative inputs, average counts.

Mirrors the IMPACT-I profiler-to-compiler interface (§3.1): "the
profiler accumulates the average run-time statistics over many runs of
a program", from which node weights (function execution counts) and arc
weights (call-site invocation counts) are inferred.
"""

from repro.profiler.profile import ProfileData, RunSpec, profile_module, run_once
from repro.profiler.serialize import dump_profile, load_profile, module_fingerprint
from repro.profiler.static_estimate import estimate_profile

__all__ = [
    "ProfileData",
    "RunSpec",
    "dump_profile",
    "estimate_profile",
    "load_profile",
    "module_fingerprint",
    "profile_module",
    "run_once",
]
