"""Profile persistence — the profiler-to-compiler interface.

The paper's §1.2: "The IMPACT-I Profiler to C Compiler interface allows
the profile information to be automatically used by the IMPACT-I C
Compiler." In a real toolchain that interface is a file; this module
provides the JSON round trip, with a content fingerprint so a stale
profile is rejected rather than silently misapplied to changed code.
"""

from __future__ import annotations

import hashlib
import json

from repro.il.module import ILModule
from repro.profiler.profile import ProfileData
from repro.vm.counters import Counters

FORMAT_VERSION = 1


def module_fingerprint(module: ILModule) -> str:
    """A stable hash of the module's call-site structure.

    Covers what the profile is keyed by: function names and the
    (caller, site id, callee) triples. Code edits that renumber or move
    call sites invalidate the profile; pure body edits do not.
    """
    digest = hashlib.sha256()
    for name in sorted(module.functions):
        digest.update(name.encode())
        digest.update(b"\x00")
    for caller, instr in sorted(
        module.call_sites(), key=lambda pair: pair[1].site
    ):
        callee = instr.name if instr.name else "<indirect>"
        digest.update(f"{caller}:{instr.site}:{callee};".encode())
    return digest.hexdigest()[:16]


def dump_profile(profile: ProfileData, module: ILModule | None = None) -> str:
    """Serialize a profile (optionally bound to a module fingerprint)."""
    payload = {
        "format": FORMAT_VERSION,
        "runs": profile.runs,
        "totals": {
            "il": profile.total.il,
            "ct": profile.total.ct,
            "calls": profile.total.calls,
            "returns": profile.total.returns,
        },
        "node_weights": profile.node_weights,
        "arc_weights": {str(site): w for site, w in profile.arc_weights.items()},
    }
    if module is not None:
        payload["fingerprint"] = module_fingerprint(module)
    return json.dumps(payload, indent=2, sort_keys=True)


def load_profile(text: str, module: ILModule | None = None) -> ProfileData:
    """Deserialize; raises ValueError on version/fingerprint mismatch."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile format {payload.get('format')!r}"
        )
    if module is not None and "fingerprint" in payload:
        expected = module_fingerprint(module)
        if payload["fingerprint"] != expected:
            raise ValueError(
                "profile fingerprint mismatch: the program's call sites"
                " changed since this profile was collected"
            )
    totals = payload.get("totals", {})
    counters = Counters(
        il=int(totals.get("il", 0)),
        ct=int(totals.get("ct", 0)),
        calls=int(totals.get("calls", 0)),
        returns=int(totals.get("returns", 0)),
    )
    profile = ProfileData(runs=int(payload["runs"]), total=counters)
    profile.node_weights = {
        str(name): float(w) for name, w in payload["node_weights"].items()
    }
    profile.arc_weights = {
        int(site): float(w) for site, w in payload["arc_weights"].items()
    }
    return profile
