"""Structure-analysis weight estimation (no profiling).

The paper (§2.2): "The node weights and arc weights may be determined
either by program structure analysis or by profiling", and §4.2 leaves
open "whether or not inline expansion decisions based on program
structure analysis without profile information are sufficient". This
module implements the structure-analysis alternative so the ablation
harness can answer that question on the benchmark suite:

- every call site is weighted by its loop-nesting depth
  (``LOOP_FACTOR ** depth``), the classic static heuristic,
- weights propagate through the acyclic condensation of the direct
  call graph from ``main`` outward; members of a recursive clique share
  their component's incoming weight once (no fixpoint blow-up).

The result is an ordinary :class:`~repro.profiler.profile.ProfileData`,
so the whole inline pipeline runs unchanged on estimated weights.
"""

from __future__ import annotations

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import natural_loops
from repro.callgraph.cycles import find_sccs
from repro.il.instructions import Opcode
from repro.il.module import ILModule
from repro.inliner.linearize import _direct_call_graph
from repro.profiler.profile import ProfileData
from repro.vm.counters import Counters

LOOP_FACTOR = 10.0


def _site_depths(module: ILModule) -> dict[int, tuple[str, str | None, int]]:
    """site id -> (caller, callee-or-None, loop-nesting depth)."""
    result: dict[int, tuple[str, str | None, int]] = {}
    for name, function in module.functions.items():
        cfg = build_cfg(function)
        loops = natural_loops(cfg)
        depth_of_block: dict[int, int] = {}
        for loop in loops:
            for block_index in loop.body:
                depth_of_block[block_index] = depth_of_block.get(block_index, 0) + 1
        for block in cfg.blocks:
            depth = depth_of_block.get(block.index, 0)
            for instr in block.instructions(function):
                if instr.op is Opcode.CALL:
                    callee = instr.name if instr.name in module.functions else None
                    result[instr.site] = (name, callee, depth)
                elif instr.op is Opcode.ICALL:
                    result[instr.site] = (name, None, depth)
    return result


def estimate_profile(module: ILModule) -> ProfileData:
    """Estimate node and arc weights by structure analysis alone."""
    sites = _site_depths(module)
    graph = _direct_call_graph(module)
    # find_sccs emits callees first; reverse for caller-first traversal.
    components = list(reversed(find_sccs(graph)))

    component_of: dict[str, int] = {}
    for index, component in enumerate(components):
        for name in component:
            component_of[name] = index

    node_weights: dict[str, float] = {name: 0.0 for name in module.functions}
    if module.entry in node_weights:
        node_weights[module.entry] = 1.0
    arc_weights: dict[int, float] = {}

    sites_by_caller: dict[str, list[int]] = {}
    for site, (caller, _, _) in sites.items():
        sites_by_caller.setdefault(caller, []).append(site)

    for index, component in enumerate(components):
        members = [name for name in component if name in module.functions]
        for caller in members:
            caller_weight = node_weights.get(caller, 0.0)
            for site in sites_by_caller.get(caller, ()):
                _, callee, depth = sites[site]
                weight = caller_weight * (LOOP_FACTOR ** depth)
                arc_weights[site] = weight
                if callee is None:
                    continue
                # Within a recursive clique, do not re-feed the cycle.
                if component_of.get(callee) == index:
                    continue
                node_weights[callee] = node_weights.get(callee, 0.0) + weight

    profile = ProfileData(runs=1, total=Counters())
    profile.node_weights = node_weights
    profile.arc_weights = arc_weights
    return profile
