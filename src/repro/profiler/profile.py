"""Multi-run profiling of IL modules."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.il.module import ILModule
from repro.observability import Observability, resolve
from repro.vm.counters import Counters
from repro.vm.machine import Machine, RunResult
from repro.vm.os import VirtualOS


@dataclass
class RunSpec:
    """One profiling input: stdin bytes, a file system, and argv."""

    stdin: bytes = b""
    files: dict[str, bytes] = field(default_factory=dict)
    argv: list[str] = field(default_factory=list)
    #: Free-form tag, used in experiment logs.
    label: str = ""

    def make_os(self) -> VirtualOS:
        return VirtualOS(stdin=self.stdin, files=dict(self.files), argv=list(self.argv))


@dataclass
class ProfileData:
    """Averaged dynamic statistics over a set of runs.

    ``node_weights`` maps function names to expected execution counts
    per typical run; ``arc_weights`` maps static call-site ids to
    expected invocation counts — exactly the weighted-call-graph inputs
    of §2.2. Totals over all runs are kept in ``total``.
    """

    runs: int
    total: Counters
    node_weights: dict[str, float] = field(default_factory=dict)
    arc_weights: dict[int, float] = field(default_factory=dict)

    @property
    def avg_il(self) -> float:
        return self.total.il / self.runs if self.runs else 0.0

    @property
    def avg_ct(self) -> float:
        return self.total.ct / self.runs if self.runs else 0.0

    @property
    def avg_calls(self) -> float:
        return self.total.calls / self.runs if self.runs else 0.0

    def node_weight(self, name: str) -> float:
        return self.node_weights.get(name, 0.0)

    def arc_weight(self, site: int) -> float:
        return self.arc_weights.get(site, 0.0)

    @classmethod
    def from_counters(cls, total: Counters, runs: int) -> "ProfileData":
        profile = cls(runs=runs, total=total)
        divisor = runs if runs else 1
        profile.node_weights = {
            name: count / divisor for name, count in total.func_counts.items()
        }
        profile.arc_weights = {
            site: count / divisor for site, count in total.site_counts.items()
        }
        return profile


def run_once(
    module: ILModule,
    spec: RunSpec | None = None,
    fuel: int = 2_000_000_000,
    collect_branches: bool = False,
    obs: Observability | None = None,
    engine: str = "counting",
) -> RunResult:
    """Execute ``module`` once under ``spec`` and return the result."""
    obs = resolve(obs)
    os = spec.make_os() if spec is not None else VirtualOS()
    machine = Machine(
        module,
        os,
        fuel=fuel,
        collect_branches=collect_branches,
        metrics=obs.metrics if obs.metrics.enabled else None,
        engine=engine,
    )
    return machine.run()


def profile_module(
    module: ILModule,
    specs: list[RunSpec],
    fuel: int = 2_000_000_000,
    check_exit: bool = True,
    obs: Observability | None = None,
    engine: str = "counting",
) -> ProfileData:
    """Profile ``module`` over every input in ``specs``.

    Raises RuntimeError when a run exits non-zero and ``check_exit`` is
    set, because a crashed run would silently poison the weights.
    """
    if not specs:
        raise ValueError("profiling requires at least one input")
    obs = resolve(obs)
    total = Counters()
    with obs.tracer.span("profile.module", runs=len(specs)):
        for index, spec in enumerate(specs):
            label = spec.label or f"run {index}"
            with obs.tracer.span("profile.run", label=label) as attrs:
                result = run_once(
                    module, spec, fuel=fuel, obs=obs, engine=engine
                )
                attrs["exit_code"] = result.exit_code
                attrs["il"] = result.counters.il
                attrs["calls"] = result.counters.calls
            if check_exit and result.exit_code != 0:
                raise RuntimeError(
                    f"profiling input {label!r} exited with {result.exit_code};"
                    f" stderr: {result.os.stderr_text()[:200]!r}"
                )
            total.merge(result.counters)
    if obs.metrics.enabled:
        obs.metrics.inc("profiler.runs", len(specs))
    return ProfileData.from_counters(total, len(specs))
