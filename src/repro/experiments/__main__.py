"""``python -m repro.experiments`` — regenerate the paper's tables.

Usage::

    python -m repro.experiments [table1|table2|table3|table4|breakdown|
                                 all|ablations] [--scale small|full]
                                [--jobs N] [--executor thread|process]
                                [--cache-dir [DIR]]
                                [--passes SPEC] [--bench-out FILE]
                                [--summary]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ablations import (
    baseline_comparison,
    growth_limit_sweep,
    linearization_comparison,
    render_points,
    threshold_sweep,
)
from repro.experiments.pipeline import run_suite
from repro.pipeline.parallel import jobs_argument
from repro.experiments.tables import (
    all_tables,
    post_inline_breakdown,
    table1,
    table2,
    table3,
    table4,
)

_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "breakdown": post_inline_breakdown,
    "all": all_tables,
}


def _run_extensions(scale: str) -> None:
    """The extension experiments: icache, placement, regalloc, LICM."""
    from repro.icache import icache_experiment
    from repro.layout import placement_experiment
    from repro.regalloc import pressure_experiment
    from repro.workloads import benchmark_by_name

    benchmark = benchmark_by_name("compress")
    module = benchmark.compile()
    specs = benchmark.make_runs(scale)[:2]

    print("I-cache miss ratios before/after inlining (compress, scattered):")
    for point in icache_experiment(module, specs):
        print(
            f"  {point.size_bytes:5d}B {point.associativity}-way:"
            f" {point.miss_before:.4f} -> {point.miss_after:.4f}"
            f" ({point.improvement:+.0%})"
        )
    print()
    print("Placement vs. inlining (compress):")
    for p in placement_experiment(module, specs):
        print(
            f"  {p.size_bytes:5d}B {p.associativity}-way: scattered"
            f" {p.miss_scattered:.4f}, placed {p.miss_placed:.4f}"
            f" ({p.placement_improvement:+.0%}), inlined"
            f" {p.miss_inlined_scattered:.4f} ({p.inlining_improvement:+.0%})"
        )
    print()
    print("Register memory traffic before/after inlining (compress):")
    for k, before, after in pressure_experiment(module, specs, ks=(4, 8, 16)):
        print(
            f"  K={k:2d}: save/restore {before.save_restore_events:.0f} ->"
            f" {after.save_restore_events:.0f}; spills"
            f" {before.spill_events:.0f} -> {after.spill_events:.0f}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables of Hwu & Chang (PLDI 1989).",
    )
    parser.add_argument(
        "what",
        nargs="?",
        default="all",
        choices=[*_TABLES, "ablations", "extensions"],
        help="which table to regenerate (default: all)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=["small", "full"],
        help="input scale: 'small' is quick, 'full' mirrors Table 1's run counts",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict to named benchmarks",
    )
    parser.add_argument(
        "--jobs",
        type=jobs_argument,
        default=1,
        metavar="N",
        help="run benchmarks on N workers (deterministic order; default"
        " 1 = serial; must be >= 1)",
    )
    parser.add_argument(
        "--executor",
        default="thread",
        choices=["thread", "process"],
        help="worker pool backend for --jobs: 'thread' is cheap to start"
        " but GIL-bound (best when the cache absorbs most work);"
        " 'process' runs CPU-heavy compile/profile/inline work truly in"
        " parallel at the cost of pickling artifacts between processes",
    )
    parser.add_argument(
        "--cache-dir",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help="serve repeat compiles/profiles from a content-addressed"
        " on-disk cache (default DIR: .repro-cache)",
    )
    parser.add_argument(
        "--engine",
        default="counting",
        choices=["counting", "fast"],
        help="VM execution tier for profiling runs: 'counting' is the"
        " reference interpreter, 'fast' the closure-compiled tier"
        " (identical counters, several times the throughput)",
    )
    parser.add_argument(
        "--passes",
        default=None,
        metavar="SPEC",
        help="pre-optimization pass spec, e.g. 'fold,copyprop,cse,jumpopt,dce'",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-verify IL well-formedness after every inline phase",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL trace (spans, events, inline decisions)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a JSON metrics snapshot",
    )
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print the metrics text summary to stderr",
    )
    parser.add_argument(
        "--bench-out",
        default=None,
        metavar="FILE",
        help="write a schema-versioned bench telemetry record of the"
        " suite run (table modes only)",
    )
    args = parser.parse_args(argv)

    obs = None
    if args.trace or args.metrics_out or args.summary or args.bench_out:
        from repro.observability import Observability

        obs = Observability.create()

    if args.what == "extensions":
        _run_extensions(args.scale)
        return 0

    if args.what == "ablations":
        print(
            render_points(
                "Ablation A: weight threshold T.",
                threshold_sweep(
                    args.scale,
                    jobs=args.jobs,
                    executor=args.executor,
                    engine=args.engine,
                ),
            )
        )
        print()
        print(
            render_points(
                "Ablation B: profile-guided vs. static heuristics.",
                baseline_comparison(
                    args.scale,
                    jobs=args.jobs,
                    executor=args.executor,
                    engine=args.engine,
                ),
            )
        )
        print()
        print(
            render_points(
                "Ablation C: code-growth limit.",
                growth_limit_sweep(
                    args.scale,
                    jobs=args.jobs,
                    executor=args.executor,
                    engine=args.engine,
                ),
            )
        )
        print()
        print(
            render_points(
                "Ablation D: linearization order.",
                linearization_comparison(
                    args.scale,
                    jobs=args.jobs,
                    executor=args.executor,
                    engine=args.engine,
                ),
            )
        )
        return 0

    session = None
    if args.cache_dir:
        from repro.pipeline.session import CompilationSession

        session = CompilationSession(cache_dir=args.cache_dir)

    start = time.perf_counter()
    results = run_suite(
        args.scale,
        names=args.benchmarks,
        progress=True,
        obs=obs,
        jobs=args.jobs,
        session=session,
        pass_spec=args.passes,
        check=args.check,
        executor=args.executor,
        engine=args.engine,
    )
    wall = time.perf_counter() - start
    print(_TABLES[args.what](results))
    if obs is not None:
        from repro.observability.export import (
            render_metrics_summary,
            write_metrics,
            write_trace,
        )

        if args.trace:
            write_trace(obs.tracer, args.trace)
            print(f"wrote trace to {args.trace}", file=sys.stderr)
        if args.metrics_out:
            write_metrics(obs.metrics, args.metrics_out)
            print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)
        if args.summary:
            print(render_metrics_summary(obs.metrics), file=sys.stderr)
        if args.bench_out:
            from repro.observability.bench import record_from_results

            record = record_from_results(
                results,
                obs,
                config={
                    "name": "experiments",
                    "scale": args.scale,
                    "benchmarks": args.benchmarks,
                    "jobs": args.jobs,
                    "executor": args.executor,
                    "pass_spec": args.passes,
                    "engine": args.engine,
                },
                wall_seconds=wall,
            )
            record.write(args.bench_out)
            print(f"wrote bench record to {args.bench_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
