"""Experiment harness: regenerates every table of the paper's §4.

- Table 1 — benchmark characteristics,
- Table 2 — static call-site classification,
- Table 3 — dynamic call behaviour,
- Table 4 — inline expansion results (code inc, call dec, ILs/call,
  CTs/call, AVG, SD),
- §4.4 — post-inline dynamic call breakdown,
- plus the reproduction's own ablations (threshold, growth limit,
  profile-guided vs. static heuristics).
"""

from repro.experiments.pipeline import BenchmarkResult, run_benchmark, run_suite
from repro.experiments.tables import (
    post_inline_breakdown,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "BenchmarkResult",
    "post_inline_breakdown",
    "run_benchmark",
    "run_suite",
    "table1",
    "table2",
    "table3",
    "table4",
]
