"""Table builders: one function per table/figure of the paper's §4."""

from __future__ import annotations

import statistics

from repro.experiments.pipeline import (
    BenchmarkResult,
    aggregate_dynamic_breakdown,
)
from repro.experiments.report import fixed, pct, render_table
from repro.inliner.classify import SiteClass


def table1(results: list[BenchmarkResult]) -> str:
    """Table 1: benchmark characteristics."""
    rows = []
    for result in results:
        rows.append(
            [
                result.name,
                str(result.c_lines),
                str(result.runs),
                f"{result.avg_il_thousands:.0f}K",
                f"{result.avg_ct_thousands:.1f}K",
                result.input_description,
            ]
        )
    return render_table(
        "Table 1. Benchmark characteristics.",
        ["benchmark", "C lines", "runs", "IL's", "control", "input description"],
        rows,
    )


def table2(results: list[BenchmarkResult]) -> str:
    """Table 2: static function call characteristics."""
    rows = []
    for result in results:
        classified = result.classified
        rows.append(
            [
                result.name,
                str(classified.total_static),
                pct(classified.static_fraction(SiteClass.EXTERNAL)),
                pct(classified.static_fraction(SiteClass.POINTER)),
                pct(classified.static_fraction(SiteClass.UNSAFE)),
                pct(classified.static_fraction(SiteClass.SAFE)),
            ]
        )
    averages = _column_averages(
        results,
        lambda r: [
            r.classified.static_fraction(SiteClass.EXTERNAL),
            r.classified.static_fraction(SiteClass.POINTER),
            r.classified.static_fraction(SiteClass.UNSAFE),
            r.classified.static_fraction(SiteClass.SAFE),
        ],
    )
    rows.append(["AVG", "", *[pct(v) for v in averages]])
    return render_table(
        "Table 2. Static function call characteristics.",
        ["benchmark", "total", "external", "pointer", "unsafe", "safe"],
        rows,
    )


def table3(results: list[BenchmarkResult]) -> str:
    """Table 3: dynamic function call behaviour."""
    rows = []
    for result in results:
        classified = result.classified
        rows.append(
            [
                result.name,
                f"{classified.total_dynamic:.0f}",
                pct(classified.dynamic_fraction(SiteClass.EXTERNAL)),
                pct(classified.dynamic_fraction(SiteClass.POINTER)),
                pct(classified.dynamic_fraction(SiteClass.UNSAFE)),
                pct(classified.dynamic_fraction(SiteClass.SAFE)),
            ]
        )
    averages = _column_averages(
        results,
        lambda r: [
            r.classified.dynamic_fraction(SiteClass.EXTERNAL),
            r.classified.dynamic_fraction(SiteClass.POINTER),
            r.classified.dynamic_fraction(SiteClass.UNSAFE),
            r.classified.dynamic_fraction(SiteClass.SAFE),
        ],
    )
    rows.append(["AVG", "", *[pct(v) for v in averages]])
    return render_table(
        "Table 3. Dynamic function call behavior (calls per run).",
        ["benchmark", "calls", "external", "pointer", "unsafe", "safe"],
        rows,
    )


def table4(results: list[BenchmarkResult]) -> str:
    """Table 4: inline expansion results, with AVG and SD rows."""
    rows = []
    for result in results:
        rows.append(
            [
                result.name,
                pct(result.code_increase, 0),
                pct(result.call_decrease, 0),
                fixed(result.ils_per_call),
                fixed(result.cts_per_call),
            ]
        )
    code = [result.code_increase for result in results]
    calls = [result.call_decrease for result in results]
    ils = [result.ils_per_call for result in results]
    cts = [result.cts_per_call for result in results]
    rows.append(
        [
            "AVG",
            pct(statistics.fmean(code)),
            pct(statistics.fmean(calls)),
            fixed(statistics.fmean(ils)),
            fixed(statistics.fmean(cts)),
        ]
    )
    if len(results) > 1:
        rows.append(
            [
                "SD",
                pct(statistics.stdev(code)),
                pct(statistics.stdev(calls)),
                fixed(statistics.stdev(ils)),
                fixed(statistics.stdev(cts)),
            ]
        )
    return render_table(
        "Table 4. Inline expansion results.",
        ["benchmark", "code inc", "call dec", "IL's per call", "CT's per call"],
        rows,
    )


def post_inline_breakdown(results: list[BenchmarkResult]) -> str:
    """§4.4: what the remaining dynamic calls are, after expansion.

    The paper reports external 56.1%, pointer 2.8%, unsafe 18.0%,
    safe 23.1% across the suite.
    """
    mix = aggregate_dynamic_breakdown(results)
    rows = [
        [
            "all benchmarks",
            pct(mix[SiteClass.EXTERNAL]),
            pct(mix[SiteClass.POINTER]),
            pct(mix[SiteClass.UNSAFE]),
            pct(mix[SiteClass.SAFE]),
        ]
    ]
    return render_table(
        "Post-inline dynamic call breakdown (paper 4.4: 56.1/2.8/18.0/23.1).",
        ["scope", "external", "pointer", "unsafe", "safe"],
        rows,
    )


def _column_averages(results, extractor) -> list[float]:
    columns = [extractor(result) for result in results]
    return [statistics.fmean(values) for values in zip(*columns)]


def all_tables(results: list[BenchmarkResult]) -> str:
    parts = [
        table1(results),
        table2(results),
        table3(results),
        table4(results),
        post_inline_breakdown(results),
    ]
    mismatches = [r.name for r in results if not r.outputs_match]
    if mismatches:
        parts.append(
            "WARNING: inlined output mismatch for: " + ", ".join(mismatches)
        )
    else:
        parts.append(
            "All inlined binaries produced byte-identical outputs on every input."
        )
    return "\n\n".join(parts)
