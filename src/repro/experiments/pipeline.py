"""The per-benchmark experiment pipeline.

For each benchmark: compile, pre-optimize (constant folding and jump
optimization, which the paper applies *before* inline expansion — §4.4),
profile over the input set, classify call sites, inline, re-profile the
inlined program over the same inputs, and check output equivalence
between the original and inlined binaries on every input.

Every stage is instrumented: pass an
:class:`~repro.observability.Observability` as ``obs`` to collect a
structured trace (phase spans, inline-decision audit records) and a
metrics snapshot. The default (``obs=None``) is a true no-op and leaves
all outputs byte-identical.
"""

from __future__ import annotations

import functools
import logging
from dataclasses import dataclass, field

from repro.inliner.classify import ClassifiedSites, SiteClass, classify_sites
from repro.inliner.manager import InlineExpander, InlineResult
from repro.inliner.params import InlineParameters
from repro.observability import Observability, enable_console_logging, resolve
from repro.opt import optimize_module
from repro.pipeline.parallel import parallel_map, validate_executor, validate_jobs
from repro.pipeline.session import CompilationSession
from repro.profiler.profile import ProfileData, RunSpec, profile_module, run_once
from repro.callgraph.build import build_call_graph
from repro.workloads.suite import (
    Benchmark,
    benchmark_by_name,
    benchmark_names,
    benchmark_suite,
)

_LOG = logging.getLogger("repro.experiments")


@dataclass
class BenchmarkResult:
    """Everything the four tables need for one benchmark."""

    name: str
    c_lines: int
    runs: int
    input_description: str
    profile: ProfileData
    classified: ClassifiedSites
    inline: InlineResult
    post_profile: ProfileData
    post_classified: ClassifiedSites
    outputs_match: bool
    params: InlineParameters = field(default_factory=InlineParameters)
    #: Human-readable description of every input whose outputs diverged
    #: between the original and inlined binaries (empty when they match).
    output_divergences: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Table 1 quantities

    @property
    def avg_il_thousands(self) -> float:
        return self.profile.avg_il / 1000.0

    @property
    def avg_ct_thousands(self) -> float:
        return self.profile.avg_ct / 1000.0

    # ------------------------------------------------------------------
    # Table 4 quantities

    @property
    def code_increase(self) -> float:
        return self.inline.code_increase

    @property
    def call_decrease(self) -> float:
        before = self.profile.avg_calls
        after = self.post_profile.avg_calls
        if before <= 0:
            return 0.0
        return max(0.0, 1.0 - after / before)

    @property
    def ils_per_call(self) -> float:
        calls = self.post_profile.avg_calls
        return self.post_profile.avg_il / calls if calls else float("inf")

    @property
    def cts_per_call(self) -> float:
        calls = self.post_profile.avg_calls
        return self.post_profile.avg_ct / calls if calls else float("inf")


@dataclass
class OutputComparison:
    """Outcome of comparing two modules' outputs over an input set."""

    matches: bool
    #: One entry per diverging input: which spec, and what differed
    #: (exit code vs. stdout vs. written files).
    divergences: list[str] = field(default_factory=list)


def run_benchmark(
    benchmark: Benchmark,
    scale: str = "small",
    params: InlineParameters | None = None,
    pre_optimize: bool = True,
    check_outputs: bool = True,
    obs: Observability | None = None,
    session: CompilationSession | None = None,
    pass_spec: str | None = None,
    check: bool = False,
    engine: str = "counting",
) -> BenchmarkResult:
    """Run the full experiment pipeline for one benchmark.

    With a :class:`~repro.pipeline.session.CompilationSession`, the
    compile (including pre-optimization) and both profiling stages are
    served content-addressed from its cache when possible; without one
    every stage runs from scratch, exactly as before. ``pass_spec``
    selects a custom pre-optimization pipeline (default: the full
    five-pass set). ``check`` re-verifies IL well-formedness after
    every inline phase (the ``--check`` mode).
    """
    params = params or InlineParameters()
    obs = resolve(obs)
    tracer = obs.tracer
    # Mint a per-benchmark trace id (unless the caller already bound
    # one, e.g. a service request): every span/event/decision this run
    # emits then carries it, so one grep isolates one benchmark even in
    # an interleaved parallel trace.
    scoped: dict = {}
    if tracer.enabled and "trace_id" not in tracer.bound_context():
        from repro.observability.context import new_trace_id

        scoped["trace_id"] = new_trace_id()
    with tracer.context(**scoped), tracer.span(
        "benchmark", name=benchmark.name, scale=scale
    ) as attrs:
        if session is not None:
            with tracer.span("benchmark.compile", name=benchmark.name):
                module = session.compile_benchmark(
                    benchmark,
                    pre_optimize=pre_optimize,
                    pass_spec=pass_spec,
                    obs=obs,
                )
        else:
            with tracer.span("benchmark.compile", name=benchmark.name):
                module = benchmark.compile(obs=obs)
            if pre_optimize:
                with tracer.span("benchmark.pre_optimize", name=benchmark.name):
                    optimize_module(module, obs=obs, pass_spec=pass_spec)
        specs = benchmark.make_runs(scale)
        with tracer.span("benchmark.profile", name=benchmark.name):
            if session is not None:
                profile = session.profile(
                    module, specs, scale=scale, params=params, obs=obs,
                    engine=engine,
                )
            else:
                profile = profile_module(module, specs, obs=obs, engine=engine)

        with tracer.span("benchmark.inline", name=benchmark.name):
            expander = InlineExpander(
                module, profile, params, check=check, obs=obs
            )
            inline_result = expander.run()
        if tracer.enabled:
            for decision in inline_result.decisions:
                record = decision.to_record()
                record["benchmark"] = benchmark.name
                tracer.record(record)
        with tracer.span("benchmark.post_profile", name=benchmark.name):
            if session is not None:
                post_profile = session.profile(
                    inline_result.module, specs, scale=scale, params=params,
                    obs=obs, engine=engine,
                )
            else:
                post_profile = profile_module(
                    inline_result.module, specs, obs=obs, engine=engine
                )

        comparison = OutputComparison(matches=True)
        if check_outputs:
            with tracer.span("benchmark.check_outputs", name=benchmark.name):
                comparison = compare_outputs(
                    module, inline_result.module, specs, engine=engine
                )
            for divergence in comparison.divergences:
                tracer.event(
                    "output_divergence", benchmark=benchmark.name, detail=divergence
                )
                _LOG.warning("[%s] output divergence: %s", benchmark.name, divergence)

        with tracer.span("benchmark.post_classify", name=benchmark.name):
            post_graph = build_call_graph(inline_result.module, post_profile, obs=obs)
            post_classified = classify_sites(
                inline_result.module, post_graph, post_profile, params
            )
        attrs["outputs_match"] = comparison.matches
        attrs["expansions"] = len(inline_result.records)
    if obs.metrics.enabled:
        obs.metrics.inc("pipeline.benchmarks")
        if not comparison.matches:
            obs.metrics.inc("pipeline.output_divergences", len(comparison.divergences))
    return BenchmarkResult(
        name=benchmark.name,
        c_lines=benchmark.c_lines,
        runs=len(specs),
        input_description=benchmark.input_description,
        profile=profile,
        classified=inline_result.classified,
        inline=inline_result,
        post_profile=post_profile,
        post_classified=post_classified,
        outputs_match=comparison.matches,
        params=params,
        output_divergences=comparison.divergences,
    )


def compare_outputs(
    module_a, module_b, specs: list[RunSpec], engine: str = "counting"
) -> OutputComparison:
    """Run both modules over every spec and describe any divergence.

    Each divergence names the input (label or index) and the channels
    that differed: exit code, stdout (with the first differing byte
    offset), or written files (missing/extra/different per file).
    """
    divergences: list[str] = []
    for index, spec in enumerate(specs):
        result_a = run_once(module_a, spec, engine=engine)
        result_b = run_once(module_b, spec, engine=engine)
        label = spec.label or f"input {index}"
        problems: list[str] = []
        if result_a.exit_code != result_b.exit_code:
            problems.append(
                f"exit code {result_a.exit_code} != {result_b.exit_code}"
            )
        stdout_a = bytes(result_a.os.stdout)
        stdout_b = bytes(result_b.os.stdout)
        if stdout_a != stdout_b:
            problems.append(
                "stdout differs at byte"
                f" {_first_mismatch(stdout_a, stdout_b)}"
                f" (lengths {len(stdout_a)} vs {len(stdout_b)})"
            )
        if result_a.os.written_files != result_b.os.written_files:
            problems.append(
                "written files differ: "
                + _describe_file_diff(
                    result_a.os.written_files, result_b.os.written_files
                )
            )
        if problems:
            divergences.append(f"{label}: " + "; ".join(problems))
    return OutputComparison(matches=not divergences, divergences=divergences)


def _first_mismatch(a: bytes, b: bytes) -> int:
    for index, (byte_a, byte_b) in enumerate(zip(a, b)):
        if byte_a != byte_b:
            return index
    return min(len(a), len(b))


def _describe_file_diff(
    files_a: dict[str, bytes], files_b: dict[str, bytes]
) -> str:
    parts: list[str] = []
    for path in sorted(set(files_a) | set(files_b)):
        if path not in files_b:
            parts.append(f"{path} missing after inlining")
        elif path not in files_a:
            parts.append(f"{path} only written after inlining")
        elif files_a[path] != files_b[path]:
            parts.append(
                f"{path} content differs at byte"
                f" {_first_mismatch(files_a[path], files_b[path])}"
            )
    return ", ".join(parts)


#: Per-process registry of sessions opened from a spec, so one worker
#: process reuses its in-memory cache across the tasks it executes
#: (the disk store is shared between processes regardless).
_WORKER_SESSIONS: dict[tuple, CompilationSession] = {}


def _session_from_spec(spec: dict | None) -> CompilationSession | None:
    if spec is None:
        return None
    key = tuple(sorted(spec.items()))
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        session = CompilationSession.from_spec(spec)
        _WORKER_SESSIONS[key] = session
    return session


def _benchmark_task(
    name: str,
    obs: Observability,
    *,
    scale: str,
    params: InlineParameters | None,
    pre_optimize: bool,
    check_outputs: bool,
    session_spec: dict | None,
    pass_spec: str | None,
    check: bool,
    engine: str,
) -> BenchmarkResult:
    """One suite item, addressed by benchmark name so it pickles.

    Process workers re-open the shared disk cache from ``session_spec``;
    thread workers and the serial path pass the live session directly
    and never reach this function.
    """
    _LOG.info("[%s] running ...", name)
    return run_benchmark(
        benchmark_by_name(name),
        scale,
        params,
        pre_optimize,
        check_outputs,
        obs=obs,
        session=_session_from_spec(session_spec),
        pass_spec=pass_spec,
        check=check,
        engine=engine,
    )


def run_suite(
    scale: str = "small",
    params: InlineParameters | None = None,
    names: list[str] | None = None,
    pre_optimize: bool = True,
    check_outputs: bool = True,
    progress: bool = False,
    obs: Observability | None = None,
    jobs: int = 1,
    session: CompilationSession | None = None,
    pass_spec: str | None = None,
    check: bool = False,
    executor: str = "thread",
    engine: str = "counting",
) -> list[BenchmarkResult]:
    """Run the pipeline for every benchmark (or a named subset).

    ``names`` must all be known benchmark names; unknown names raise
    :class:`ValueError` rather than being silently skipped. With
    ``jobs > 1`` the benchmarks run on a worker pool — results keep
    suite order and per-worker trace/metric records are merged into the
    parent ``obs`` — while ``jobs=1`` is the plain serial loop,
    byte-identical to the historical behavior. ``executor`` selects the
    pool: ``"thread"`` shares the live ``session`` in memory but
    serializes CPU work on the GIL; ``"process"`` gives true CPU
    parallelism — workers share the session's *disk* store (each
    process re-opens it from :meth:`CompilationSession.spec`) and
    return their results and telemetry by pickling. A shared
    ``session`` serves compiles and profiles from its
    content-addressed cache either way.

    Progress goes through the ``repro.experiments`` logger; with
    ``progress=True`` a stderr handler is attached (once) so the
    messages stay visible from the CLI, while library users configure
    or silence the ``repro`` logger themselves.
    """
    validate_jobs(jobs)
    validate_executor(executor)
    if progress:
        enable_console_logging()
    obs = resolve(obs)
    if names is not None:
        unknown = sorted(set(names) - set(benchmark_names()))
        if unknown:
            raise ValueError(
                f"unknown benchmark name(s): {', '.join(unknown)};"
                f" known: {', '.join(benchmark_names())}"
            )
    selected = [
        benchmark
        for benchmark in benchmark_suite()
        if names is None or benchmark.name in names
    ]
    with obs.tracer.span("suite", scale=scale) as attrs:
        if jobs <= 1:
            results = []
            for benchmark in selected:
                _LOG.info("[%s] running ...", benchmark.name)
                results.append(
                    run_benchmark(
                        benchmark,
                        scale,
                        params,
                        pre_optimize,
                        check_outputs,
                        obs=obs,
                        session=session,
                        pass_spec=pass_spec,
                        check=check,
                        engine=engine,
                    )
                )
        else:
            if executor == "process":
                # Ship the session as its picklable spec; the live
                # object holds locks and caches that cannot cross the
                # process boundary.
                task = functools.partial(
                    _benchmark_task,
                    scale=scale,
                    params=params,
                    pre_optimize=pre_optimize,
                    check_outputs=check_outputs,
                    session_spec=session.spec() if session else None,
                    pass_spec=pass_spec,
                    check=check,
                    engine=engine,
                )
            else:

                def task(name: str, child_obs) -> BenchmarkResult:
                    _LOG.info("[%s] running ...", name)
                    return run_benchmark(
                        benchmark_by_name(name),
                        scale,
                        params,
                        pre_optimize,
                        check_outputs,
                        obs=child_obs,
                        session=session,
                        pass_spec=pass_spec,
                        check=check,
                        engine=engine,
                    )

            results = parallel_map(
                task,
                [benchmark.name for benchmark in selected],
                jobs,
                obs=obs,
                worker_label="suite",
                executor=executor,
            )
        attrs["benchmarks"] = len(results)
    return results


def aggregate_dynamic_breakdown(
    results: list[BenchmarkResult],
) -> dict[SiteClass, float]:
    """Suite-wide post-inline dynamic call mix (the §4.4 percentages)."""
    totals = {site_class: 0.0 for site_class in SiteClass}
    for result in results:
        for site_class in SiteClass:
            totals[site_class] += result.post_classified.dynamic.get(
                site_class, 0.0
            )
    grand = sum(totals.values())
    if grand == 0:
        return {site_class: 0.0 for site_class in SiteClass}
    return {site_class: value / grand for site_class, value in totals.items()}
