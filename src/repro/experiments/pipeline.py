"""The per-benchmark experiment pipeline.

For each benchmark: compile, pre-optimize (constant folding and jump
optimization, which the paper applies *before* inline expansion — §4.4),
profile over the input set, classify call sites, inline, re-profile the
inlined program over the same inputs, and check output equivalence
between the original and inlined binaries on every input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.inliner.classify import ClassifiedSites, SiteClass, classify_sites
from repro.inliner.manager import InlineExpander, InlineResult
from repro.inliner.params import InlineParameters
from repro.opt import optimize_module
from repro.profiler.profile import ProfileData, RunSpec, profile_module, run_once
from repro.callgraph.build import build_call_graph
from repro.workloads.suite import Benchmark, benchmark_suite


@dataclass
class BenchmarkResult:
    """Everything the four tables need for one benchmark."""

    name: str
    c_lines: int
    runs: int
    input_description: str
    profile: ProfileData
    classified: ClassifiedSites
    inline: InlineResult
    post_profile: ProfileData
    post_classified: ClassifiedSites
    outputs_match: bool
    params: InlineParameters = field(default_factory=InlineParameters)

    # ------------------------------------------------------------------
    # Table 1 quantities

    @property
    def avg_il_thousands(self) -> float:
        return self.profile.avg_il / 1000.0

    @property
    def avg_ct_thousands(self) -> float:
        return self.profile.avg_ct / 1000.0

    # ------------------------------------------------------------------
    # Table 4 quantities

    @property
    def code_increase(self) -> float:
        return self.inline.code_increase

    @property
    def call_decrease(self) -> float:
        before = self.profile.avg_calls
        after = self.post_profile.avg_calls
        if before <= 0:
            return 0.0
        return max(0.0, 1.0 - after / before)

    @property
    def ils_per_call(self) -> float:
        calls = self.post_profile.avg_calls
        return self.post_profile.avg_il / calls if calls else float("inf")

    @property
    def cts_per_call(self) -> float:
        calls = self.post_profile.avg_calls
        return self.post_profile.avg_ct / calls if calls else float("inf")


def run_benchmark(
    benchmark: Benchmark,
    scale: str = "small",
    params: InlineParameters | None = None,
    pre_optimize: bool = True,
    check_outputs: bool = True,
) -> BenchmarkResult:
    """Run the full experiment pipeline for one benchmark."""
    params = params or InlineParameters()
    module = benchmark.compile()
    if pre_optimize:
        optimize_module(module)
    specs = benchmark.make_runs(scale)
    profile = profile_module(module, specs)

    expander = InlineExpander(module, profile, params)
    inline_result = expander.run()
    post_profile = profile_module(inline_result.module, specs)

    outputs_match = True
    if check_outputs:
        outputs_match = _outputs_equal(module, inline_result.module, specs)

    post_graph = build_call_graph(inline_result.module, post_profile)
    post_classified = classify_sites(
        inline_result.module, post_graph, post_profile, params
    )
    return BenchmarkResult(
        name=benchmark.name,
        c_lines=benchmark.c_lines,
        runs=len(specs),
        input_description=benchmark.input_description,
        profile=profile,
        classified=inline_result.classified,
        inline=inline_result,
        post_profile=post_profile,
        post_classified=post_classified,
        outputs_match=outputs_match,
        params=params,
    )


def _outputs_equal(module_a, module_b, specs: list[RunSpec]) -> bool:
    for spec in specs:
        result_a = run_once(module_a, spec)
        result_b = run_once(module_b, spec)
        if (
            result_a.exit_code != result_b.exit_code
            or bytes(result_a.os.stdout) != bytes(result_b.os.stdout)
            or result_a.os.written_files != result_b.os.written_files
        ):
            return False
    return True


def run_suite(
    scale: str = "small",
    params: InlineParameters | None = None,
    names: list[str] | None = None,
    pre_optimize: bool = True,
    check_outputs: bool = True,
    progress: bool = False,
) -> list[BenchmarkResult]:
    """Run the pipeline for every benchmark (or a named subset)."""
    results = []
    for benchmark in benchmark_suite():
        if names is not None and benchmark.name not in names:
            continue
        if progress:
            print(f"[{benchmark.name}] running ...", flush=True)
        results.append(
            run_benchmark(benchmark, scale, params, pre_optimize, check_outputs)
        )
    return results


def aggregate_dynamic_breakdown(
    results: list[BenchmarkResult],
) -> dict[SiteClass, float]:
    """Suite-wide post-inline dynamic call mix (the §4.4 percentages)."""
    totals = {site_class: 0.0 for site_class in SiteClass}
    for result in results:
        for site_class in SiteClass:
            totals[site_class] += result.post_classified.dynamic.get(
                site_class, 0.0
            )
    grand = sum(totals.values())
    if grand == 0:
        return {site_class: 0.0 for site_class in SiteClass}
    return {site_class: value / grand for site_class, value in totals.items()}
