"""Ablation studies on the design choices DESIGN.md calls out.

A — weight threshold T (§2.3.3's ``weight(Ai) < T`` guard),
B — profile-guided selection vs. the no-profile baselines of §1.2,
C — code-growth limit (§2.3.1's program-size cap),
D — linearization order (paper's weight heuristic vs. hybrid).

Every sweep fans out over the suite via
:func:`~repro.pipeline.parallel.parallel_map`; the measurement tasks
are module-level functions parameterized with :func:`functools.partial`
so they run unchanged on either the thread or the process executor
(``executor="process"`` requires picklable tasks).
"""

from __future__ import annotations

import functools
import statistics
from dataclasses import dataclass

from repro.baselines import (
    hint_inline,
    leaf_inline,
    loop_inline,
    size_threshold_inline,
)
from repro.experiments.report import pct, render_table
from repro.inliner.manager import InlineExpander
from repro.inliner.params import InlineParameters
from repro.opt import optimize_module
from repro.pipeline.parallel import parallel_map
from repro.profiler.profile import profile_module
from repro.workloads.suite import benchmark_by_name, benchmark_names, benchmark_suite


@dataclass
class AblationPoint:
    label: str
    code_increase: float
    call_decrease: float


def _prepare(benchmark, scale, engine="counting"):
    module = benchmark.compile()
    optimize_module(module)
    specs = benchmark.make_runs(scale)
    profile = profile_module(module, specs, engine=engine)
    return module, specs, profile


def _prepare_task(name, _obs, *, scale, engine="counting"):
    """Compile+pre-optimize+profile one benchmark, addressed by name."""
    return _prepare(benchmark_by_name(name), scale, engine)


def _prepare_suite(scale, jobs=1, executor="thread", engine="counting"):
    """Compile+pre-optimize+profile every benchmark (optionally parallel)."""
    return parallel_map(
        functools.partial(_prepare_task, scale=scale, engine=engine),
        benchmark_names(),
        jobs,
        worker_label="ablation-prepare",
        executor=executor,
    )


def _measure_all(prepared, one, jobs=1, executor="thread"):
    """Apply ``one(module, specs, profile)`` to every prepared benchmark."""
    return parallel_map(
        one,
        prepared,
        jobs,
        worker_label="ablation-measure",
        executor=executor,
    )


def _measure(
    module, inlined_module, specs, profile, engine="counting"
) -> tuple[float, float]:
    before = profile.avg_calls
    after_profile = profile_module(inlined_module, specs, engine=engine)
    after = after_profile.avg_calls
    decrease = max(0.0, 1.0 - after / before) if before else 0.0
    original = module.total_code_size()
    increase = (inlined_module.total_code_size() - original) / original
    return increase, decrease


def _expander_task(
    entry, _obs, *, params=None, linearize_method=None, engine="counting"
):
    """Inline one prepared benchmark with the paper's expander."""
    module, specs, profile = entry
    if linearize_method is not None:
        result = InlineExpander(
            module, profile, params, linearize_method=linearize_method
        ).run()
    else:
        result = InlineExpander(module, profile, params).run()
    return _measure(module, result.module, specs, profile, engine)


def _mean_point(label, pairs) -> AblationPoint:
    incs = [inc for inc, _ in pairs]
    decs = [dec for _, dec in pairs]
    return AblationPoint(label, statistics.fmean(incs), statistics.fmean(decs))


def threshold_sweep(
    scale: str = "small",
    thresholds: tuple[float, ...] = (1, 10, 100, 1000),
    jobs: int = 1,
    executor: str = "thread",
    engine: str = "counting",
) -> list[AblationPoint]:
    """Ablation A: sweep the arc-weight threshold T."""
    points = []
    prepared = _prepare_suite(scale, jobs, executor, engine)
    for threshold in thresholds:
        one = functools.partial(
            _expander_task,
            params=InlineParameters(weight_threshold=threshold),
            engine=engine,
        )
        pairs = _measure_all(prepared, one, jobs, executor)
        points.append(_mean_point(f"T={threshold:g}", pairs))
    return points


def growth_limit_sweep(
    scale: str = "small",
    factors: tuple[float, ...] = (1.0, 1.1, 1.25, 1.5, 2.0),
    jobs: int = 1,
    executor: str = "thread",
    engine: str = "counting",
) -> list[AblationPoint]:
    """Ablation C: sweep the program-size cap."""
    points = []
    prepared = _prepare_suite(scale, jobs, executor, engine)
    for factor in factors:
        one = functools.partial(
            _expander_task,
            params=InlineParameters(size_limit_factor=factor),
            engine=engine,
        )
        pairs = _measure_all(prepared, one, jobs, executor)
        points.append(_mean_point(f"limit={factor:g}x", pairs))
    return points


def linearization_comparison(
    scale: str = "small",
    jobs: int = 1,
    executor: str = "thread",
    engine: str = "counting",
) -> list[AblationPoint]:
    """Ablation D: the paper's pure-weight order vs. the hybrid order."""
    points = []
    prepared = _prepare_suite(scale, jobs, executor, engine)
    for method in ("weight", "hybrid"):
        one = functools.partial(
            _expander_task, linearize_method=method, engine=engine
        )
        pairs = _measure_all(prepared, one, jobs, executor)
        points.append(_mean_point(method, pairs))
    return points


def _size25_inline(module, params):
    return size_threshold_inline(module, 25, params)


def _baseline_task(entry, _obs, *, label, engine="counting"):
    """Inline one prepared benchmark with the named baseline heuristic."""
    module, specs, profile = entry
    params = InlineParameters()
    heuristic = dict(_BASELINES)[label]
    if heuristic is None:
        inlined = InlineExpander(module, profile, params).run().module
    elif heuristic == "static-estimate":
        # §4.2's open question: run the same expander on weights
        # estimated by structure analysis instead of profiling.
        from repro.profiler.static_estimate import estimate_profile

        estimated = estimate_profile(module)
        inlined = InlineExpander(module, estimated, params).run().module
    else:
        inlined = heuristic(module, params).module
    return _measure(module, inlined, specs, profile, engine)


_BASELINES = (
    ("profile-guided", None),
    ("static-estimate", "static-estimate"),
    ("leaf (PL.8)", leaf_inline),
    ("loop (MIPS)", loop_inline),
    ("size<=25", _size25_inline),
    ("hint (GNU)", hint_inline),
)


def baseline_comparison(
    scale: str = "small",
    jobs: int = 1,
    executor: str = "thread",
    engine: str = "counting",
) -> list[AblationPoint]:
    """Ablation B: profile-guided vs. static heuristics, same size cap."""
    points = []
    prepared = _prepare_suite(scale, jobs, executor, engine)
    for label, _heuristic in _BASELINES:
        one = functools.partial(_baseline_task, label=label, engine=engine)
        pairs = _measure_all(prepared, one, jobs, executor)
        points.append(_mean_point(label, pairs))
    return points


def heldout_input_check(
    scale: str = "small", engine: str = "counting"
) -> list[AblationPoint]:
    """Ablation E: profile on half the inputs, evaluate on the rest.

    The paper's methodology hinges on representative inputs (§1.2,
    §4: "representative inputs for each benchmark are applied to
    establish reliable profile information"). If profiles generalize,
    the call decrease measured on held-out inputs should track the
    trained-inputs number closely.
    """
    points = []
    for subset in ("train-inputs", "held-out-inputs"):
        incs, decs = [], []
        for benchmark in benchmark_suite():
            module = benchmark.compile()
            optimize_module(module)
            specs = benchmark.make_runs(scale)
            if len(specs) < 2:
                continue
            train = specs[0::2]
            test = specs[1::2]
            profile = profile_module(module, train, engine=engine)
            inlined = InlineExpander(module, profile).run().module
            evaluate = train if subset == "train-inputs" else test
            base = profile_module(module, evaluate, engine=engine)
            after = profile_module(inlined, evaluate, engine=engine)
            decs.append(
                max(0.0, 1.0 - after.avg_calls / base.avg_calls)
                if base.avg_calls
                else 0.0
            )
            original = module.total_code_size()
            incs.append((inlined.total_code_size() - original) / original)
        points.append(
            AblationPoint(subset, statistics.fmean(incs), statistics.fmean(decs))
        )
    return points


def render_points(title: str, points: list[AblationPoint]) -> str:
    rows = [
        [point.label, pct(point.code_increase), pct(point.call_decrease)]
        for point in points
    ]
    return render_table(title, ["configuration", "code inc", "call dec"], rows)
