"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations


def render_table(
    title: str, headers: list[str], rows: list[list[str]]
) -> str:
    """Render an aligned ASCII table with a title line."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title]
    lines.append(
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def pct(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def fixed(value: float, digits: int = 0) -> str:
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"
