"""Interference graphs from instruction-level liveness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.liveness import liveness
from repro.il.function import ILFunction
from repro.il.instructions import Opcode


@dataclass
class InterferenceGraph:
    """Registers as nodes; an edge means simultaneous liveness."""

    nodes: set[str] = field(default_factory=set)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: Static use/def counts, the spill-cost numerator.
    use_counts: dict[str, int] = field(default_factory=dict)
    #: Register pairs joined by a MOV (coalescing candidates).
    move_pairs: set[tuple[str, str]] = field(default_factory=set)

    def add_node(self, reg: str) -> None:
        self.nodes.add(reg)
        self.edges.setdefault(reg, set())

    def add_edge(self, a: str, b: str) -> None:
        if a == b:
            return
        self.add_node(a)
        self.add_node(b)
        self.edges[a].add(b)
        self.edges[b].add(a)

    def degree(self, reg: str) -> int:
        return len(self.edges.get(reg, ()))

    def neighbors(self, reg: str) -> set[str]:
        return self.edges.get(reg, set())


def build_interference(function: ILFunction) -> InterferenceGraph:
    """Backward per-block walk seeded with block live-out sets.

    Standard rule: at a definition, the defined register interferes
    with everything live after the instruction (minus the source of a
    MOV, enabling coalescing).
    """
    graph = InterferenceGraph()
    result = liveness(function)
    cfg = result.cfg

    for reg in function.params:
        graph.add_node(reg)

    for block in cfg.blocks:
        live = set(result.live_out[block.index])
        for instr in reversed(block.instructions(function)):
            dst = instr.dst
            sources = instr.source_regs()
            if dst is not None:
                graph.add_node(dst)
                graph.use_counts[dst] = graph.use_counts.get(dst, 0) + 1
                excluded = None
                if instr.op is Opcode.MOV and isinstance(instr.a, str):
                    excluded = instr.a
                    graph.move_pairs.add(tuple(sorted((dst, instr.a))))
                for other in live:
                    if other != dst and other != excluded:
                        graph.add_edge(dst, other)
                live.discard(dst)
            for reg in sources:
                graph.add_node(reg)
                graph.use_counts[reg] = graph.use_counts.get(reg, 0) + 1
                live.add(reg)
    return graph
