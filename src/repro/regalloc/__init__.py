"""Register allocation over the IL.

The paper's first motivation (§1) is that function invocation disrupts
register allocation, and §1.1 surveys hardware (register windows, stack
buffers) and software (inter-procedural allocation, Wall's link-time
allocation) remedies that inline expansion makes unnecessary. This
package provides the allocator those arguments are about:

- interference construction from instruction-level liveness,
- a Chaitin-style graph-coloring allocator with spilling,
- a pressure/spill metric used by the register-pressure experiment:
  after inlining, the *calls* disappear but the merged live ranges
  compete for the same K registers — the classic trade the paper's
  evaluation implies.
"""

from repro.regalloc.interference import InterferenceGraph, build_interference
from repro.regalloc.coloring import AllocationResult, allocate_function, allocate_module
from repro.regalloc.pressure import PressureReport, pressure_experiment

__all__ = [
    "AllocationResult",
    "InterferenceGraph",
    "PressureReport",
    "allocate_function",
    "allocate_module",
    "build_interference",
    "pressure_experiment",
]
