"""Chaitin-style graph-coloring register allocation.

Simplify/select with optimistic coloring (Briggs): repeatedly remove a
node of degree < K; if none exists, remove the cheapest spill candidate
optimistically. During select, nodes that cannot be colored are marked
spilled. No rewrite of the IL is performed — the VM executes virtual
registers directly — but the assignment and spill set quantify exactly
what a K-register machine would do, which is what the paper's
register-window discussion needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.il.function import ILFunction
from repro.il.module import ILModule
from repro.regalloc.interference import InterferenceGraph, build_interference


@dataclass
class AllocationResult:
    """Coloring of one function's registers."""

    function: str
    k: int
    assignment: dict[str, int] = field(default_factory=dict)
    spilled: set[str] = field(default_factory=set)
    graph: InterferenceGraph | None = None

    @property
    def registers_used(self) -> int:
        return len(set(self.assignment.values())) if self.assignment else 0

    @property
    def spill_count(self) -> int:
        return len(self.spilled)

    def spill_cost(self) -> int:
        """Static use/def count of spilled registers: each such event
        would become a memory access on a K-register machine."""
        if self.graph is None:
            return 0
        return sum(self.graph.use_counts.get(reg, 0) for reg in self.spilled)

    def verify(self) -> bool:
        """No two interfering registers share a color."""
        if self.graph is None:
            return True
        for reg, color in self.assignment.items():
            for neighbor in self.graph.neighbors(reg):
                if self.assignment.get(neighbor) == color:
                    return False
        return True


def allocate_function(
    function: ILFunction, k: int = 16
) -> AllocationResult:
    """Color ``function``'s virtual registers with K colors."""
    graph = build_interference(function)
    result = AllocationResult(function.name, k, graph=graph)

    degrees = {reg: graph.degree(reg) for reg in graph.nodes}
    removed: set[str] = set()
    stack: list[str] = []

    def current_degree(reg: str) -> int:
        return sum(1 for n in graph.neighbors(reg) if n not in removed)

    worklist = set(graph.nodes)
    while worklist:
        candidate = None
        for reg in sorted(worklist, key=lambda r: (degrees.get(r, 0), r)):
            if current_degree(reg) < k:
                candidate = reg
                break
        if candidate is None:
            # Optimistic spill choice: cheapest use-count per degree.
            candidate = min(
                worklist,
                key=lambda r: (
                    graph.use_counts.get(r, 0) / (current_degree(r) + 1),
                    r,
                ),
            )
        worklist.discard(candidate)
        removed.add(candidate)
        stack.append(candidate)

    # Select phase.
    for reg in reversed(stack):
        taken = {
            result.assignment[n]
            for n in graph.neighbors(reg)
            if n in result.assignment
        }
        color = next((c for c in range(k) if c not in taken), None)
        if color is None:
            result.spilled.add(reg)
        else:
            result.assignment[reg] = color
    return result


def allocate_module(module: ILModule, k: int = 16) -> dict[str, AllocationResult]:
    """Allocate every function; returns results by function name."""
    return {
        name: allocate_function(function, k)
        for name, function in module.functions.items()
    }
