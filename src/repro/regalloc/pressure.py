"""The register-pressure experiment.

Quantifies the §1.1 trade: before inlining, every dynamic call would
save/restore registers at the boundary (the cost register windows
attack); after inlining the calls are gone but merged live ranges raise
the pressure inside the caller. The report weights both effects by the
profile:

- ``save_restore_events``: dynamic calls × the registers a convention
  would save (bounded by the callee's coloring),
- ``spill_events``: per-function static spill costs × execution counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.il.module import ILModule
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.opt import optimize_module
from repro.profiler.profile import ProfileData, RunSpec, profile_module
from repro.regalloc.coloring import allocate_module


@dataclass
class PressureReport:
    """Pressure numbers for one module under a K-register machine."""

    k: int
    total_spilled_registers: int = 0
    #: Profile-weighted spill events (memory accesses from spills).
    spill_events: float = 0.0
    #: Profile-weighted save/restore traffic at call boundaries.
    save_restore_events: float = 0.0
    per_function_spills: dict[str, int] = field(default_factory=dict)

    @property
    def total_memory_events(self) -> float:
        return self.spill_events + self.save_restore_events


def measure_pressure(
    module: ILModule, profile: ProfileData, k: int = 16
) -> PressureReport:
    """Allocate every function and weight the outcome by the profile."""
    report = PressureReport(k)
    allocations = allocate_module(module, k)
    for name, allocation in allocations.items():
        report.total_spilled_registers += allocation.spill_count
        report.per_function_spills[name] = allocation.spill_count
        weight = profile.node_weight(name)
        report.spill_events += weight * allocation.spill_cost()
    # Save/restore: per dynamic call, the convention moves
    # min(K, registers the callee actually uses) registers to memory
    # and back (callee-saved discipline).
    for name, allocation in allocations.items():
        calls_into = profile.node_weight(name)
        report.save_restore_events += (
            2 * calls_into * min(k, allocation.registers_used)
        )
    return report


def pressure_experiment(
    module: ILModule,
    specs: list[RunSpec],
    ks: tuple[int, ...] = (8, 16, 32),
    params: InlineParameters | None = None,
) -> list[tuple[int, PressureReport, PressureReport]]:
    """(K, before, after) pressure reports across register-file sizes.

    Expected shape: inlining trades save/restore traffic (large before,
    tiny after) for extra spills (small before, moderate after), with a
    large net win for realistic K — the software counterpart of the
    paper's "register windows become unnecessary" claim.
    """
    working = module.clone()
    optimize_module(working)
    profile = profile_module(working, specs, check_exit=False)
    inlined = inline_module(working, profile, params).module
    optimize_module(inlined)
    inlined_profile = profile_module(inlined, specs, check_exit=False)

    results = []
    for k in ks:
        before = measure_pressure(working, profile, k)
        after = measure_pressure(inlined, inlined_profile, k)
        results.append((k, before, after))
    return results
