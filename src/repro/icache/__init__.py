"""Instruction-cache simulation.

The paper's conclusion (§5) reports that inline expansion "greatly
reduces the mapping conflict in instruction caches with small
set-associativities" (detailed in the authors' ISCA 1989 companion
paper). This package provides the substrate to measure that claim on
the reproduction: a set-associative instruction cache simulator fed by
the VM's dynamic instruction stream.
"""

from repro.icache.cache import CacheStats, InstructionCache
from repro.icache.experiment import CachePoint, icache_experiment

__all__ = ["CachePoint", "CacheStats", "InstructionCache", "icache_experiment"]
