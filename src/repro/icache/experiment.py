"""The instruction-cache experiment (paper §5 / the ISCA'89 companion).

Measures the instruction-cache miss ratio of a benchmark before and
after profile-guided inline expansion, over a sweep of small cache
configurations. The paper's claim: although inlining grows static code,
it removes the call/return ping-pong between caller and callee lines,
reducing mapping conflicts in caches with small set-associativities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.icache.cache import InstructionCache
from repro.il.module import ILModule
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.opt import optimize_module
from repro.profiler.profile import RunSpec, profile_module
from repro.vm.machine import Machine


@dataclass
class CachePoint:
    """Miss ratios for one cache configuration."""

    size_bytes: int
    line_bytes: int
    associativity: int
    miss_before: float
    miss_after: float

    @property
    def improvement(self) -> float:
        """Relative miss-ratio reduction from inlining (can be < 0)."""
        if self.miss_before == 0:
            return 0.0
        return 1.0 - self.miss_after / self.miss_before


def _traced_miss_ratio(
    module: ILModule,
    specs: list[RunSpec],
    size_bytes: int,
    line_bytes: int,
    associativity: int,
    layout: str = "sequential",
    seeds: tuple[int, ...] = (0,),
) -> float:
    """Average miss ratio over the given layout seeds."""
    total = 0.0
    for seed in seeds:
        cache = InstructionCache(size_bytes, line_bytes, associativity)
        for spec in specs:
            machine = Machine(
                module,
                spec.make_os(),
                icache=cache,
                code_layout=layout,
                layout_seed=seed,
            )
            machine.run()
        total += cache.stats.miss_ratio
    return total / len(seeds)


def icache_experiment(
    module: ILModule,
    specs: list[RunSpec],
    configs: list[tuple[int, int, int]] | None = None,
    params: InlineParameters | None = None,
    layout: str = "scattered",
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> list[CachePoint]:
    """Compare miss ratios before/after inlining over ``configs``.

    ``configs`` entries are (size_bytes, line_bytes, associativity);
    the defaults span the small caches of the paper's era. ``layout``
    chooses the simulated code placement: "scattered" (default) models
    a linker that separates related functions — the mapping-conflict
    regime where the paper's companion study found inlining helps most;
    "sequential" packs functions contiguously (a best-case pre-inline
    layout where inlining's duplication can instead cost misses).
    """
    if configs is None:
        configs = [
            (512, 16, 1),
            (1024, 16, 1),
            (2048, 16, 1),
            (1024, 16, 2),
            (4096, 32, 1),
        ]
    working = module.clone()
    optimize_module(working)
    profile = profile_module(working, specs, check_exit=False)
    inlined = inline_module(working, profile, params).module
    optimize_module(inlined)

    points = []
    for size_bytes, line_bytes, associativity in configs:
        before = _traced_miss_ratio(
            working, specs, size_bytes, line_bytes, associativity, layout, seeds
        )
        after = _traced_miss_ratio(
            inlined, specs, size_bytes, line_bytes, associativity, layout, seeds
        )
        points.append(
            CachePoint(size_bytes, line_bytes, associativity, before, after)
        )
    return points
