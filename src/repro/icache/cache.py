"""A set-associative instruction cache with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class InstructionCache:
    """LRU set-associative cache over instruction addresses.

    One IL instruction occupies 4 bytes of the simulated address space
    (functions are laid out contiguously by the VM's linker), matching
    the paper's practice of measuring in intermediate instructions.
    """

    def __init__(
        self,
        size_bytes: int = 1024,
        line_bytes: int = 16,
        associativity: int = 1,
    ):
        if size_bytes % (line_bytes * associativity) != 0:
            raise ValueError("cache size must be a multiple of line*ways")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        self._line_shift = line_bytes.bit_length() - 1
        if 1 << self._line_shift != line_bytes:
            raise ValueError("line size must be a power of two")
        #: Per-set list of resident line tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit."""
        line = address >> self._line_shift
        index = line % self.num_sets
        ways = self._sets[index]
        self.stats.accesses += 1
        if line in ways:
            if ways[-1] != line:
                ways.remove(line)
                ways.append(line)
            return True
        self.stats.misses += 1
        ways.append(line)
        if len(ways) > self.associativity:
            ways.pop(0)
        return False

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ICache {self.size_bytes}B/{self.line_bytes}B"
            f" {self.associativity}-way, miss={self.stats.miss_ratio:.3f}>"
        )
