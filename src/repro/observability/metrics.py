"""Named counters, gauges, and histograms for the pipeline.

Counters accumulate (``inc``), gauges hold the last value set
(``gauge``), histograms keep count/total/min/max summaries plus a
bounded sample reservoir for p50/p90/p99 percentiles (``observe``).
:meth:`MetricsRegistry.snapshot` returns one plain dict suitable for
JSON export; :class:`NullMetrics` discards everything.

**Reservoir bound.** Each histogram keeps at most ``max_samples``
observations (default :data:`DEFAULT_MAX_SAMPLES` = 4096, a
constructor knob on :class:`MetricsRegistry`). Beyond the bound the
count/total/min/max summary stays exact, but percentiles are computed
over the first ``max_samples`` values only — fine for the steady-state
latency distributions this registry tracks, and it keeps ``observe``
O(1) with a hard memory cap.

**Labels.** A metric name may embed Prometheus-style labels in a
canonical suffix, e.g. ``service.op_seconds{op=inline}`` (build one
with :func:`labeled`, parse with :func:`split_labels`). The registry
itself treats the whole string as an opaque name — labeled variants
are independent series — while the Prometheus renderer in
:mod:`repro.observability.export` turns the suffix into real labels.
"""

from __future__ import annotations

import json

#: Default per-histogram sample cap (see the module docstring).
DEFAULT_MAX_SAMPLES = 4096

#: Backwards-compatible alias for the historical constant name.
_MAX_SAMPLES = DEFAULT_MAX_SAMPLES


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a sample list (q in 0..100).

    Degenerate inputs do not raise: an empty list yields ``0.0`` and a
    single sample is every percentile of itself.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def labeled(name: str, **labels) -> str:
    """The canonical labeled-series name: ``name{k1=v1,k2=v2}``.

    Keys are sorted so the same label set always produces the same
    series name; values are stringified with the reserved characters
    (``{``, ``}``, ``,``, ``=``, ``"``) replaced to keep the form
    parseable.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        for reserved in '{},="':
            value = value.replace(reserved, "_")
        parts.append(f"{key}={value}")
    return f"{name}{{{','.join(parts)}}}"


def split_labels(name: str) -> tuple[str, dict]:
    """Split a canonical labeled name back into (base, labels).

    Names without a well-formed ``{...}`` suffix come back whole with
    empty labels, so the parser never raises on foreign metric names.
    """
    if not name.endswith("}"):
        return name, {}
    brace = name.find("{")
    if brace <= 0:
        return name, {}
    base = name[:brace]
    labels: dict = {}
    body = name[brace + 1 : -1]
    if not body:
        return base, {}
    for part in body.split(","):
        key, sep, value = part.partition("=")
        if not sep or not key:
            return name, {}
        labels[key] = value
    return base, labels


class MetricsRegistry:
    """Accumulates named metrics reported by pipeline stages."""

    enabled = True

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES):
        self.max_samples = max(1, int(max_samples))
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}  # [count, total, min, max]
        self._samples: dict[str, list[float]] = {}

    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stats = self._histograms.get(name)
        if stats is None:
            self._histograms[name] = [1, value, value, value]
            self._samples[name] = [value]
        else:
            stats[0] += 1
            stats[1] += value
            stats[2] = min(stats[2], value)
            stats[3] = max(stats[3], value)
            samples = self._samples[name]
            if len(samples) < self.max_samples:
                samples.append(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges take the
        other's value, histogram summaries and samples combine (the
        combined reservoir keeps this registry's ``max_samples`` cap)."""
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, stats in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = list(stats)
            else:
                mine[0] += stats[0]
                mine[1] += stats[1]
                mine[2] = min(mine[2], stats[2])
                mine[3] = max(mine[3], stats[3])
            theirs = other._samples.get(name, [])
            combined = self._samples.setdefault(name, [])
            combined.extend(theirs[: self.max_samples - len(combined)])

    # ------------------------------------------------------------------

    def histogram(self, name: str) -> dict | None:
        stats = self._histograms.get(name)
        if stats is None:
            return None
        count, total, low, high = stats
        samples = self._samples.get(name, [])
        summary = {
            "count": count,
            "total": total,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
        }
        if samples:
            summary["p50"] = percentile(samples, 50)
            summary["p90"] = percentile(samples, 90)
            summary["p99"] = percentile(samples, 99)
        return summary

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histogram(name) for name in sorted(self._histograms)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


class NullMetrics(MetricsRegistry):
    """Discards everything; safe to call from hot paths."""

    enabled = False

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(self, other: "MetricsRegistry") -> None:
        pass
