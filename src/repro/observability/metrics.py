"""Named counters, gauges, and histograms for the pipeline.

Counters accumulate (``inc``), gauges hold the last value set
(``gauge``), histograms keep count/total/min/max summaries plus a
bounded sample reservoir for p50/p90/p99 percentiles (``observe``).
:meth:`MetricsRegistry.snapshot` returns one plain dict suitable for
JSON export; :class:`NullMetrics` discards everything.
"""

from __future__ import annotations

import json

#: Per-histogram sample cap. Beyond it the summary stays exact but
#: percentiles are computed over the first ``_MAX_SAMPLES`` values.
_MAX_SAMPLES = 4096


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list (q in 0..100)."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class MetricsRegistry:
    """Accumulates named metrics reported by pipeline stages."""

    enabled = True

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}  # [count, total, min, max]
        self._samples: dict[str, list[float]] = {}

    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stats = self._histograms.get(name)
        if stats is None:
            self._histograms[name] = [1, value, value, value]
            self._samples[name] = [value]
        else:
            stats[0] += 1
            stats[1] += value
            stats[2] = min(stats[2], value)
            stats[3] = max(stats[3], value)
            samples = self._samples[name]
            if len(samples) < _MAX_SAMPLES:
                samples.append(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges take the
        other's value, histogram summaries and samples combine."""
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, stats in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = list(stats)
            else:
                mine[0] += stats[0]
                mine[1] += stats[1]
                mine[2] = min(mine[2], stats[2])
                mine[3] = max(mine[3], stats[3])
            theirs = other._samples.get(name, [])
            combined = self._samples.setdefault(name, [])
            combined.extend(theirs[: _MAX_SAMPLES - len(combined)])

    # ------------------------------------------------------------------

    def histogram(self, name: str) -> dict | None:
        stats = self._histograms.get(name)
        if stats is None:
            return None
        count, total, low, high = stats
        samples = self._samples.get(name, [])
        summary = {
            "count": count,
            "total": total,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
        }
        if samples:
            summary["p50"] = percentile(samples, 50)
            summary["p90"] = percentile(samples, 90)
            summary["p99"] = percentile(samples, 99)
        return summary

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histogram(name) for name in sorted(self._histograms)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


class NullMetrics(MetricsRegistry):
    """Discards everything; safe to call from hot paths."""

    enabled = False

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(self, other: "MetricsRegistry") -> None:
        pass
