"""Named counters, gauges, and histograms for the pipeline.

Counters accumulate (``inc``), gauges hold the last value set
(``gauge``), histograms keep count/total/min/max summaries
(``observe``). :meth:`MetricsRegistry.snapshot` returns one plain dict
suitable for JSON export; :class:`NullMetrics` discards everything.
"""

from __future__ import annotations

import json


class MetricsRegistry:
    """Accumulates named metrics reported by pipeline stages."""

    enabled = True

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}  # [count, total, min, max]

    # ------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stats = self._histograms.get(name)
        if stats is None:
            self._histograms[name] = [1, value, value, value]
        else:
            stats[0] += 1
            stats[1] += value
            stats[2] = min(stats[2], value)
            stats[3] = max(stats[3], value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, gauges take the
        other's value, histogram summaries combine."""
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, stats in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = list(stats)
            else:
                mine[0] += stats[0]
                mine[1] += stats[1]
                mine[2] = min(mine[2], stats[2])
                mine[3] = max(mine[3], stats[3])

    # ------------------------------------------------------------------

    def histogram(self, name: str) -> dict | None:
        stats = self._histograms.get(name)
        if stats is None:
            return None
        count, total, low, high = stats
        return {
            "count": count,
            "total": total,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
        }

    def snapshot(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histogram(name) for name in sorted(self._histograms)
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


class NullMetrics(MetricsRegistry):
    """Discards everything; safe to call from hot paths."""

    enabled = False

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge(self, other: "MetricsRegistry") -> None:
        pass
