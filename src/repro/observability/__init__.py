"""Pipeline-wide observability: tracing, metrics, and the inline audit log.

Three cooperating pieces, all with zero-overhead no-op defaults:

- :class:`Tracer` — structured JSONL span/event records (phase start and
  end, wall time, free-form attributes),
- :class:`MetricsRegistry` — named counters, gauges, and histograms that
  every pipeline stage reports into,
- :mod:`repro.observability.audit` — the inline-decision audit log: one
  record per call-graph arc the selector considers, carrying the §2.3.3
  cost inputs and an accept/reject reason code.

Every instrumented function takes an optional ``obs`` argument. Passing
``None`` (the default) resolves to :data:`NULL_OBS`, whose tracer and
metrics discard everything, so un-instrumented callers pay nothing and
pipeline outputs are unchanged.
"""

from __future__ import annotations

import logging
import sys
from dataclasses import dataclass

from repro.observability.audit import (
    DecisionReason,
    InlineDecision,
    summarize_decisions,
)
from repro.observability.bench import (
    BENCH_SCHEMA_VERSION,
    BenchComparison,
    BenchRecord,
    BenchRecorder,
    MetricDelta,
    compare,
    load_record,
    record_from_results,
)
from repro.observability.context import (
    TraceContext,
    new_request_id,
    new_trace_id,
)
from repro.observability.metrics import (
    DEFAULT_MAX_SAMPLES,
    MetricsRegistry,
    NullMetrics,
    labeled,
    split_labels,
)
from repro.observability.tracer import NullTracer, Tracer


@dataclass
class Observability:
    """A tracer/metrics pair handed through the pipeline as one unit."""

    tracer: Tracer
    metrics: MetricsRegistry

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def create(cls) -> "Observability":
        """A live observability context recording spans and metrics."""
        return cls(tracer=Tracer(), metrics=MetricsRegistry())

    def absorb(self, child: "Observability", **attrs) -> None:
        """Merge a worker's trace records and metrics into this context.

        ``attrs`` (typically ``worker=<label>``) are stamped onto every
        absorbed trace record so parallel records stay attributable.
        """
        self.tracer.absorb(child.tracer, **attrs)
        self.metrics.merge(child.metrics)


#: The shared no-op context every instrumented function falls back to.
NULL_OBS = Observability(tracer=NullTracer(), metrics=NullMetrics())


def resolve(obs: Observability | None) -> Observability:
    """Map ``None`` to the shared no-op context."""
    return obs if obs is not None else NULL_OBS


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    return logging.getLogger(f"repro.{name}")


def enable_console_logging(
    level: int = logging.INFO, stream=None
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger (idempotent).

    Library users who configure logging themselves never need this; the
    CLI calls it so progress messages stay visible by default.
    """
    logger = logging.getLogger("repro")
    if not logger.handlers:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
    logger.setLevel(level)
    return logger


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "BenchRecord",
    "BenchRecorder",
    "DEFAULT_MAX_SAMPLES",
    "DecisionReason",
    "InlineDecision",
    "MetricDelta",
    "MetricsRegistry",
    "TraceContext",
    "compare",
    "labeled",
    "load_record",
    "new_request_id",
    "new_trace_id",
    "record_from_results",
    "NULL_OBS",
    "NullMetrics",
    "NullTracer",
    "Observability",
    "Tracer",
    "enable_console_logging",
    "get_logger",
    "resolve",
    "split_labels",
    "summarize_decisions",
]
