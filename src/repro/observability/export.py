"""Exporters: JSONL trace file, JSON metrics snapshot, summary table."""

from __future__ import annotations

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer


def write_trace(tracer: Tracer, path: str) -> None:
    """Write the full trace as JSONL, one record per line."""
    tracer.write(path)


def write_metrics(metrics: MetricsRegistry, path: str) -> None:
    """Write the metrics snapshot as a JSON document."""
    metrics.write(path)


def render_metrics_summary(metrics: MetricsRegistry) -> str:
    """Human-readable summary of every counter, gauge, and histogram."""
    snapshot = metrics.snapshot()
    rows: list[tuple[str, str, str]] = []
    for name, value in snapshot["counters"].items():
        rows.append((name, "counter", _number(value)))
    for name, value in snapshot["gauges"].items():
        rows.append((name, "gauge", _number(value)))
    for name, stats in snapshot["histograms"].items():
        detail = (
            f"n={stats['count']} mean={_number(stats['mean'])}"
            f" min={_number(stats['min'])} max={_number(stats['max'])}"
        )
        if "p50" in stats:
            detail += (
                f" p50={_number(stats['p50'])} p90={_number(stats['p90'])}"
                f" p99={_number(stats['p99'])}"
            )
        rows.append((name, "histogram", detail))
    if not rows:
        return "metrics: (empty)"
    name_width = max(len(row[0]) for row in rows)
    kind_width = max(len(row[1]) for row in rows)
    lines = ["metrics:"]
    for name, kind, value in rows:
        lines.append(f"  {name:<{name_width}}  {kind:<{kind_width}}  {value}")
    return "\n".join(lines)


def _number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))
