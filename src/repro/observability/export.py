"""Exporters: JSONL trace, JSON metrics, summary table, Prometheus text.

Three render paths over one :class:`MetricsRegistry` snapshot:

- :func:`render_metrics_summary` — the human-readable table the CLI
  prints with ``--summary``;
- :func:`write_metrics` — the JSON snapshot (``--metrics-out``);
- :func:`render_prometheus` — Prometheus text exposition format
  (version 0.0.4), served by the service's ``metrics`` admin op and
  written periodically by ``impact-inline serve --prom-out``.

Prometheus naming is stable and mechanical: a dotted metric name maps
to ``repro_<name with non-alphanumerics as underscores>``; counters
gain a ``_total`` suffix; histograms render as summaries with
``quantile`` labels (0.5/0.9/0.99 from the bounded reservoir) plus
``_sum``/``_count``. Canonical embedded labels
(``service.op_seconds{op=inline}``, see
:func:`repro.observability.metrics.labeled`) become real Prometheus
labels.

This module also owns the **slow-request/error log** schema: one JSON
object per line, appended by the service for every request slower than
its threshold and for every failed request (see
:func:`slow_request_record`).
"""

from __future__ import annotations

import json
import time

from repro.observability.metrics import MetricsRegistry, split_labels
from repro.observability.tracer import Tracer

#: The content type a real scrape endpoint would declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Schema version stamped on every slow-request/error log record.
SLOW_LOG_SCHEMA_VERSION = 1

#: The reservoir quantiles rendered on Prometheus summaries.
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def write_trace(tracer: Tracer, path: str) -> None:
    """Write the full trace as JSONL, one record per line."""
    tracer.write(path)


def write_metrics(metrics: MetricsRegistry, path: str) -> None:
    """Write the metrics snapshot as a JSON document."""
    metrics.write(path)


def render_metrics_summary(metrics: MetricsRegistry) -> str:
    """Human-readable summary of every counter, gauge, and histogram."""
    snapshot = metrics.snapshot()
    rows: list[tuple[str, str, str]] = []
    for name, value in snapshot["counters"].items():
        rows.append((name, "counter", _number(value)))
    for name, value in snapshot["gauges"].items():
        rows.append((name, "gauge", _number(value)))
    for name, stats in snapshot["histograms"].items():
        detail = (
            f"n={stats['count']} mean={_number(stats['mean'])}"
            f" min={_number(stats['min'])} max={_number(stats['max'])}"
        )
        if "p50" in stats:
            detail += (
                f" p50={_number(stats['p50'])} p90={_number(stats['p90'])}"
                f" p99={_number(stats['p99'])}"
            )
        rows.append((name, "histogram", detail))
    if not rows:
        return "metrics: (empty)"
    name_width = max(len(row[0]) for row in rows)
    kind_width = max(len(row[1]) for row in rows)
    lines = ["metrics:"]
    for name, kind, value in rows:
        lines.append(f"  {name:<{name_width}}  {kind:<{kind_width}}  {value}")
    return "\n".join(lines)


def _number(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


# ----------------------------------------------------------------------
# Prometheus text exposition


def prometheus_name(name: str) -> str:
    """The stable Prometheus family name for a dotted metric name."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{sanitized}"


def _label_string(labels: dict, **extra) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        value = (
            str(merged[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def _prom_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def render_prometheus(metrics: MetricsRegistry) -> str:
    """Render the registry in Prometheus text exposition format.

    Counters become ``<name>_total`` counter families, gauges stay
    gauges, histograms become summaries (``quantile`` labels from the
    reservoir percentiles, plus ``_sum`` and ``_count``). Families and
    label sets are emitted in sorted order, so the same registry state
    always renders the same bytes — scrape diffs are meaningful.
    """
    snapshot = metrics.snapshot()
    families: dict[tuple[str, str], list[str]] = {}
    helps: dict[str, str] = {}

    def add(family: str, kind: str, line: str) -> None:
        families.setdefault((family, kind), []).append(line)

    for name, value in snapshot["counters"].items():
        base, labels = split_labels(name)
        family = prometheus_name(base) + "_total"
        helps[family] = base
        add(family, "counter", f"{family}{_label_string(labels)} {_prom_value(value)}")
    for name, value in snapshot["gauges"].items():
        base, labels = split_labels(name)
        family = prometheus_name(base)
        helps[family] = base
        add(family, "gauge", f"{family}{_label_string(labels)} {_prom_value(value)}")
    for name, stats in snapshot["histograms"].items():
        base, labels = split_labels(name)
        family = prometheus_name(base)
        helps[family] = base
        for quantile, key in _QUANTILES:
            if key in stats:
                add(
                    family,
                    "summary",
                    f"{family}{_label_string(labels, quantile=quantile)}"
                    f" {_prom_value(stats[key])}",
                )
        add(
            family,
            "summary",
            f"{family}_sum{_label_string(labels)} {_prom_value(stats['total'])}",
        )
        add(
            family,
            "summary",
            f"{family}_count{_label_string(labels)} {_prom_value(stats['count'])}",
        )
    lines: list[str] = []
    for (family, kind) in sorted(families):
        lines.append(f"# HELP {family} repro metric {helps[family]}")
        lines.append(f"# TYPE {family} {kind}")
        lines.extend(families[(family, kind)])
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse :func:`render_prometheus` output back into families.

    Returns ``{family: {"type": kind, "samples": {sample_line_name:
    value}}}`` where sample names keep their label string. Intended for
    tests and the CI smoke job — not a general Prometheus parser.
    """
    families: dict[str, dict] = {}
    current: dict | None = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            current = {"type": kind, "samples": {}}
            families[family] = current
            continue
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if current is None:
            raise ValueError(f"sample before any # TYPE line: {line!r}")
        current["samples"][name] = float(value)
    return families


# ----------------------------------------------------------------------
# the slow-request / error log (threshold-gated JSONL)


def slow_request_record(
    *,
    kind: str,
    op: str,
    seconds: float,
    trace_id: str | None = None,
    request_id: str | None = None,
    threshold: float | None = None,
    error: str | None = None,
    cache_hits: float = 0,
    cache_misses: float = 0,
    unix_time: float | None = None,
) -> dict:
    """One slow-request (``kind="slow"``) or error (``kind="error"``)
    log record in the stable v1 schema."""
    if kind not in ("slow", "error"):
        raise ValueError(f"kind must be 'slow' or 'error', got {kind!r}")
    record = {
        "schema": SLOW_LOG_SCHEMA_VERSION,
        "kind": kind,
        "unix_time": round(
            time.time() if unix_time is None else unix_time, 6
        ),
        "op": op,
        "seconds": round(seconds, 6),
        "trace_id": trace_id,
        "request_id": request_id,
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
    }
    if threshold is not None:
        record["threshold"] = threshold
    if error is not None:
        record["error"] = error
    return record


def append_jsonl(path: str, record: dict) -> None:
    """Append one JSON object as a line (the slow-log write primitive)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True, default=str) + "\n")
