"""Structured tracing as JSONL span/event records.

A :class:`Tracer` accumulates flat dict records. Spans nest: each span
record carries its parent's id, its start offset (seconds since the
tracer was created), and its duration. Events attach to the innermost
open span. :meth:`Tracer.to_jsonl` / :meth:`Tracer.write` serialize the
whole trace, one JSON object per line.

A tracer can carry a **bound context** — a small dict of correlation
attributes (typically ``trace_id``/``request_id``, see
:mod:`repro.observability.context`) stamped onto every record it emits.
``bind`` sets it persistently, ``context`` scopes it to a ``with``
block, and ``absorb`` forwards the parent's bound context onto absorbed
child records (without overwriting ids the child stamped itself).

:class:`NullTracer` is the zero-overhead default: ``span`` yields an
attribute sink without touching the clock, and ``event``/``record``
discard their input.
"""

from __future__ import annotations

import json
import logging
import time
from contextlib import contextmanager

_LOG = logging.getLogger("repro.trace")


class Tracer:
    """Collects span and event records with monotonic timestamps."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._origin = clock()
        self._unix_start = time.time()
        self._records: list[dict] = [
            {"type": "trace_start", "unix_time": self._unix_start}
        ]
        self._stack: list[int] = []
        self._next_id = 1
        self._context: dict = {}

    # ------------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._origin

    @property
    def unix_start(self) -> float | None:
        """Wall-clock time of trace start (t=0), for cross-trace rebasing."""
        return getattr(self, "_unix_start", None)

    # ------------------------------------------------------------------
    # bound context: correlation attrs stamped onto every record

    def bind(self, **attrs) -> None:
        """Persistently stamp ``attrs`` onto every record emitted from
        now on (e.g. ``trace_id=...``); ``None`` values are ignored."""
        self._context.update(
            {key: value for key, value in attrs.items() if value is not None}
        )

    def bound_context(self) -> dict:
        """The currently bound correlation attributes (a copy)."""
        return dict(self._context)

    @contextmanager
    def context(self, **attrs):
        """Scope extra bound attributes to a ``with`` block."""
        saved = dict(self._context)
        self.bind(**attrs)
        try:
            yield
        finally:
            self._context = saved

    @contextmanager
    def span(self, name: str, /, **attrs):
        """Open a span; yields its attribute dict for late additions.

        The record is emitted when the span closes, so attributes added
        to the yielded dict inside the ``with`` body are included.
        """
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        start = self._now()
        self._stack.append(span_id)
        try:
            yield attrs
        finally:
            self._stack.pop()
            record = {
                "type": "span",
                "id": span_id,
                "parent": parent,
                "name": name,
                "start": round(start, 6),
                "seconds": round(self._now() - start, 6),
            }
            if attrs:
                record["attrs"] = attrs
            self._emit(record)

    def event(self, name: str, /, **attrs) -> None:
        """Emit a point-in-time record attached to the open span."""
        record = {
            "type": "event",
            "name": name,
            "t": round(self._now(), 6),
            "span": self._stack[-1] if self._stack else None,
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def record(self, record: dict) -> None:
        """Emit a pre-built structured record (e.g. an inline decision)."""
        record = dict(record)
        record.setdefault("t", round(self._now(), 6))
        self._emit(record)

    def _emit(self, record: dict) -> None:
        for key, value in self._context.items():
            record.setdefault(key, value)
        self._records.append(record)
        if _LOG.isEnabledFor(logging.DEBUG):
            _LOG.debug("%s", json.dumps(record, sort_keys=True, default=str))

    def absorb(self, child: "Tracer", **attrs) -> None:
        """Merge a child tracer's records into this trace.

        Used by parallel suite execution: each worker records into its
        own tracer, and the parent absorbs them afterwards. Child span
        ids are renumbered past this tracer's id space; top-level child
        spans are re-parented under the currently open span (if any);
        ``attrs`` (e.g. ``worker="suite-3"``) are stamped onto every
        absorbed record, and this tracer's bound context is forwarded
        (without overwriting attributes the child stamped itself).

        Child timestamps are recorded as offsets from the *child's* own
        start; they are rebased onto this tracer's timeline using the
        wall-clock delta between the two trace starts, so spans from
        different processes line up in one flamegraph. A child pickled
        by an old version (no recorded start) is absorbed un-rebased.
        """
        if not self.enabled:
            return
        offset = self._next_id
        parent_span = self._stack[-1] if self._stack else None
        child_start = getattr(child, "unix_start", None)
        base_start = self.unix_start
        rebase = 0.0
        if child_start is not None and base_start is not None:
            rebase = child_start - base_start
        highest = 0
        for record in child.records:
            if record.get("type") == "trace_start":
                continue
            record = dict(record)
            if "id" in record:
                record["id"] += offset
                highest = max(highest, record["id"])
            if record.get("parent") is not None:
                record["parent"] += offset
            elif record.get("type") == "span":
                record["parent"] = parent_span
            if record.get("span") is not None:
                record["span"] += offset
            if rebase:
                if isinstance(record.get("start"), (int, float)):
                    record["start"] = round(record["start"] + rebase, 6)
                if isinstance(record.get("t"), (int, float)):
                    record["t"] = round(record["t"] + rebase, 6)
            record.update(attrs)
            for key, value in self._context.items():
                record.setdefault(key, value)
            self._records.append(record)
        self._next_id = max(self._next_id, highest + 1)

    # ------------------------------------------------------------------

    @property
    def records(self) -> list[dict]:
        return list(self._records)

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(record, sort_keys=True, default=str)
            for record in self._records
        ) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


class NullTracer(Tracer):
    """Discards everything; safe to call from hot paths."""

    enabled = False

    def __init__(self):  # no clock, no origin record
        self._records = []
        self._context = {}

    @contextmanager
    def span(self, name: str, /, **attrs):
        yield attrs

    def bind(self, **attrs) -> None:
        pass

    def bound_context(self) -> dict:
        return {}

    @contextmanager
    def context(self, **attrs):
        yield

    def event(self, name: str, /, **attrs) -> None:
        pass

    def record(self, record: dict) -> None:
        pass

    def absorb(self, child: "Tracer", **attrs) -> None:
        pass
