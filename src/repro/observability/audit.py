"""The inline-decision audit log.

Every call-graph arc the selector considers produces exactly one
:class:`InlineDecision` carrying the §2.3.3 cost inputs and a reason
code, making the paper's cost function fully inspectable:

===================  ==============================================
Reason code          §3 cost-function clause
===================  ==============================================
``ACCEPTED``         final clause — cost is ``code_size(callee)``
``NOT_DIRECT``       precondition: callee body unavailable (``$$$``)
                     or call through a pointer (``###``)
``ORDER_VIOLATION``  §3.3 linearization: callee not strictly before
                     its caller in the linear sequence
``CALLEE_UNAVAILABLE``  the callee has no body in the module (or no
                     position in the linear sequence at all), so there
                     is nothing to expand — distinct from a mere
                     ordering conflict between two available bodies
``SELF_RECURSIVE``   §2.3 scope: simple recursion never expanded
``RECURSIVE_LIMIT``  first clause — recursive path and
                     ``control_stack_usage > BOUND``
``BELOW_THRESHOLD``  second clause — ``weight(arc) < T``
``SIZE_LIMIT``       third clause — expansion would push the program
                     past the code-size limit
``RETURN_MISMATCH``  the call site consumes a result but the callee
                     has a valueless ``RET``: physical expansion would
                     leave the destination register unwritten, so the
                     arc is never expandable
``MAX_EXPANSIONS``   implementation safety valve on the number of
                     physical expansions
===================  ==============================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DecisionReason(enum.Enum):
    """Why an arc was accepted for — or excluded from — expansion."""

    ACCEPTED = "ACCEPTED"
    NOT_DIRECT = "NOT_DIRECT"
    ORDER_VIOLATION = "ORDER_VIOLATION"
    CALLEE_UNAVAILABLE = "CALLEE_UNAVAILABLE"
    SELF_RECURSIVE = "SELF_RECURSIVE"
    RECURSIVE_LIMIT = "RECURSIVE_LIMIT"
    BELOW_THRESHOLD = "BELOW_THRESHOLD"
    SIZE_LIMIT = "SIZE_LIMIT"
    RETURN_MISMATCH = "RETURN_MISMATCH"
    MAX_EXPANSIONS = "MAX_EXPANSIONS"


@dataclass
class InlineDecision:
    """One selector verdict on one call-graph arc."""

    site: int
    caller: str
    callee: str
    weight: float
    reason: DecisionReason
    #: The §2.3.3 cost for accepted arcs (the callee's code size);
    #: ``None`` when the arc never reached the cost function.
    cost: float | None = None
    #: The cost-function inputs at decision time (threshold, sizes,
    #: limits, stack usage — whatever the reached clauses examined).
    inputs: dict = field(default_factory=dict)

    @property
    def accepted(self) -> bool:
        return self.reason is DecisionReason.ACCEPTED

    def to_record(self) -> dict:
        """Flatten into a JSONL-ready trace record."""
        return {
            "type": "inline_decision",
            "site": self.site,
            "caller": self.caller,
            "callee": self.callee,
            "weight": self.weight,
            "reason": self.reason.value,
            "cost": self.cost,
            "inputs": dict(self.inputs),
        }


def summarize_decisions(
    decisions: list[InlineDecision],
) -> dict[str, int]:
    """Reason-code histogram over a decision list."""
    summary: dict[str, int] = {}
    for decision in decisions:
        summary[decision.reason.value] = summary.get(decision.reason.value, 0) + 1
    return summary
