"""Benchmark telemetry records and regression detection.

The paper's claim is quantitative, so this module makes every suite run
a durable, comparable measurement. A :class:`BenchRecorder` (or the
lower-level :func:`record_from_results`) turns one
:func:`~repro.experiments.pipeline.run_suite` execution into a
schema-versioned :class:`BenchRecord` — per-benchmark dynamic
instruction counts and VM :class:`~repro.vm.counters.Counters`, code
sizes, per-phase and per-pass wall time (from
:class:`~repro.observability.Tracer` spans and the
:class:`~repro.pipeline.manager.PassManager` metrics),
``pipeline.cache.*`` hit rates, and inline-audit reason-code rollups —
stamped with timestamp, git SHA, and run configuration. Records are
written as ``BENCH_<config>.json`` files (repo root by convention).

:func:`compare` classifies the deltas between two records:

- **exact** metrics (dynamic instructions, control transfers, calls,
  code size, expansion counts) are deterministic VM outputs, so any
  increase beyond a small relative ``epsilon`` is a regression;
- **time** metrics (per-phase and total wall seconds) are noisy, so
  they only regress beyond a configurable ``time_tolerance`` and by
  default do not affect the comparison's exit status.

Rendering of comparisons (terminal table, markdown/HTML report, text
flamegraph) lives in :mod:`repro.observability.report`.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass, field

#: Bump when the record layout changes incompatibly; :func:`load_record`
#: refuses records from a different major schema.
BENCH_SCHEMA_VERSION = 1

#: Default relative slack for exact metrics (deterministic counts).
DEFAULT_EPSILON = 0.0

#: Default relative slack for wall-clock metrics.
DEFAULT_TIME_TOLERANCE = 0.25

#: The exact (deterministic) per-benchmark metrics compare() gates on.
EXACT_METRICS = (
    "il",
    "ct",
    "calls",
    "returns",
    "post_il",
    "post_ct",
    "post_calls",
    "post_returns",
    "code_size_after",
)


def git_sha(default: str = "unknown") -> str:
    """The current git commit hash, or ``default`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return default
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else default


def collect_phase_seconds(tracer) -> dict[str, dict]:
    """Aggregate a tracer's span records by span name.

    Returns ``{span_name: {"seconds": total, "count": n}}`` — the
    per-phase wall-time attribution (``benchmark.compile``,
    ``benchmark.profile``, ``frontend.*``, ``profile.run`` …).
    """
    phases: dict[str, dict] = {}
    for record in tracer.records:
        if record.get("type") != "span":
            continue
        entry = phases.setdefault(
            record["name"], {"seconds": 0.0, "count": 0}
        )
        entry["seconds"] = round(entry["seconds"] + record["seconds"], 6)
        entry["count"] += 1
    return phases


def _benchmark_payload(result) -> dict:
    """Flatten one BenchmarkResult into the record's per-benchmark dict."""
    from repro.observability.audit import summarize_decisions

    return {
        "runs": result.runs,
        "counters": result.profile.total.to_summary(),
        "post_counters": result.post_profile.total.to_summary(),
        "code_size_before": result.inline.original_size,
        "code_size_after": result.inline.final_size,
        "code_increase": result.code_increase,
        "call_decrease": result.call_decrease,
        "expansions": len(result.inline.records),
        "functions_removed": len(result.inline.removed_functions),
        "outputs_match": result.outputs_match,
        "audit": summarize_decisions(result.inline.decisions),
    }


def _cache_payload(counters: dict) -> dict:
    """Cache hit/miss statistics from a metrics counter dict."""
    hits = counters.get("pipeline.cache.hits", 0)
    misses = counters.get("pipeline.cache.misses", 0)
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "disk_hits": counters.get("pipeline.cache.disk_hits", 0),
        "evictions": counters.get("pipeline.cache.evictions", 0),
        "hit_rate": hits / lookups if lookups else 0.0,
    }


@dataclass
class BenchRecord:
    """One schema-versioned suite measurement."""

    config: dict
    benchmarks: dict[str, dict]
    phase_seconds: dict[str, dict] = field(default_factory=dict)
    pass_seconds: dict[str, dict] = field(default_factory=dict)
    cache: dict = field(default_factory=dict)
    audit_total: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    created_unix: float = 0.0
    git_sha: str = "unknown"
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "kind": "bench_record",
            "created_unix": self.created_unix,
            "git_sha": self.git_sha,
            "config": dict(self.config),
            "wall_seconds": self.wall_seconds,
            "benchmarks": {
                name: dict(data) for name, data in self.benchmarks.items()
            },
            "phase_seconds": dict(self.phase_seconds),
            "pass_seconds": dict(self.pass_seconds),
            "cache": dict(self.cache),
            "audit_total": dict(self.audit_total),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchRecord":
        if not isinstance(payload, dict) or payload.get("kind") != "bench_record":
            raise ValueError("not a bench record")
        version = payload.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(
                f"bench record schema {version!r} is not supported"
                f" (expected {BENCH_SCHEMA_VERSION})"
            )
        return cls(
            config=payload.get("config", {}),
            benchmarks=payload.get("benchmarks", {}),
            phase_seconds=payload.get("phase_seconds", {}),
            pass_seconds=payload.get("pass_seconds", {}),
            cache=payload.get("cache", {}),
            audit_total=payload.get("audit_total", {}),
            wall_seconds=payload.get("wall_seconds", 0.0),
            created_unix=payload.get("created_unix", 0.0),
            git_sha=payload.get("git_sha", "unknown"),
            schema_version=version,
        )

    # ------------------------------------------------------------------

    @property
    def config_name(self) -> str:
        return self.config.get("name", "suite")

    def default_path(self) -> str:
        return f"BENCH_{self.config_name}.json"

    def write(self, path: str | None = None) -> str:
        """Serialize to ``path`` (default ``BENCH_<config>.json``)."""
        path = path or self.default_path()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def load_record(path: str) -> BenchRecord:
    """Load and schema-check one ``BENCH_*.json`` record."""
    with open(path, encoding="utf-8") as handle:
        return BenchRecord.from_dict(json.load(handle))


def record_from_results(
    results,
    obs,
    config: dict,
    wall_seconds: float = 0.0,
    sha: str | None = None,
    timestamp: float | None = None,
) -> BenchRecord:
    """Build a record from ``run_suite`` results plus their live obs."""
    from repro.pipeline.manager import pass_timings

    benchmarks = {result.name: _benchmark_payload(result) for result in results}
    audit_total: dict[str, int] = {}
    for data in benchmarks.values():
        for reason, count in data["audit"].items():
            audit_total[reason] = audit_total.get(reason, 0) + count
    return BenchRecord(
        config=dict(config),
        benchmarks=benchmarks,
        phase_seconds=collect_phase_seconds(obs.tracer),
        pass_seconds=pass_timings(obs.metrics),
        cache=_cache_payload(obs.metrics.counters),
        audit_total=audit_total,
        wall_seconds=round(wall_seconds, 6),
        created_unix=timestamp if timestamp is not None else time.time(),
        git_sha=sha if sha is not None else git_sha(),
    )


class BenchRecorder:
    """Runs the suite under full telemetry and produces a BenchRecord."""

    def __init__(
        self,
        config_name: str = "suite",
        scale: str = "small",
        names: list[str] | None = None,
        jobs: int = 1,
        executor: str = "thread",
        pass_spec: str | None = None,
        params=None,
        cache_dir: str | None = None,
        engine: str = "counting",
    ):
        self.config_name = config_name
        self.scale = scale
        self.names = names
        self.jobs = jobs
        self.executor = executor
        self.pass_spec = pass_spec
        self.params = params
        self.cache_dir = cache_dir
        self.engine = engine

    def config(self) -> dict:
        from repro.inliner.params import InlineParameters

        params = self.params or InlineParameters()
        return {
            "name": self.config_name,
            "scale": self.scale,
            "benchmarks": self.names,
            "jobs": self.jobs,
            "executor": self.executor,
            "pass_spec": self.pass_spec,
            "engine": self.engine,
            "threshold": params.weight_threshold,
            "size_limit_factor": params.size_limit_factor,
        }

    def run(self, obs=None) -> BenchRecord:
        """Execute the suite and return the telemetry record.

        A live :class:`~repro.observability.Observability` may be
        passed in (e.g. to also export the trace); by default the
        recorder creates its own.
        """
        from repro.experiments.pipeline import run_suite
        from repro.observability import Observability
        from repro.pipeline.session import CompilationSession

        obs = obs if obs is not None else Observability.create()
        session = (
            CompilationSession(cache_dir=self.cache_dir)
            if self.cache_dir
            else None
        )
        start = time.perf_counter()
        results = run_suite(
            self.scale,
            params=self.params,
            names=self.names,
            obs=obs,
            jobs=self.jobs,
            session=session,
            pass_spec=self.pass_spec,
            executor=self.executor,
            engine=self.engine,
        )
        wall = time.perf_counter() - start
        return record_from_results(
            results, obs, self.config(), wall_seconds=wall
        )


# ----------------------------------------------------------------------
# comparison engine


@dataclass
class MetricDelta:
    """One compared metric between baseline and current records."""

    benchmark: str  # benchmark name, or "(suite)" for suite-wide metrics
    metric: str
    baseline: float
    current: float
    kind: str  # "exact" | "time"
    status: str  # "ok" | "improved" | "regressed" | "added" | "removed"

    @property
    def delta(self) -> float:
        return self.current - self.baseline

    @property
    def relative(self) -> float:
        if self.baseline == 0:
            return 0.0 if self.current == 0 else float("inf")
        return self.current / self.baseline - 1.0

    def describe(self) -> str:
        return (
            f"{self.benchmark}.{self.metric}: {self.baseline:g} ->"
            f" {self.current:g} ({self.relative:+.1%})"
        )


@dataclass
class BenchComparison:
    """The classified delta set between two bench records."""

    baseline: BenchRecord
    current: BenchRecord
    deltas: list[MetricDelta] = field(default_factory=list)
    epsilon: float = DEFAULT_EPSILON
    time_tolerance: float = DEFAULT_TIME_TOLERANCE

    def _by_status(self, status: str, kind: str | None = None):
        return [
            delta
            for delta in self.deltas
            if delta.status == status and (kind is None or delta.kind == kind)
        ]

    @property
    def regressions(self) -> list[MetricDelta]:
        """Exact-metric regressions — the ones that gate exit status."""
        return self._by_status("regressed", "exact")

    @property
    def time_regressions(self) -> list[MetricDelta]:
        return self._by_status("regressed", "time")

    @property
    def improvements(self) -> list[MetricDelta]:
        return self._by_status("improved")

    @property
    def missing_benchmarks(self) -> list[str]:
        return sorted(
            set(self.baseline.benchmarks) - set(self.current.benchmarks)
        )

    @property
    def added_benchmarks(self) -> list[str]:
        return sorted(
            set(self.current.benchmarks) - set(self.baseline.benchmarks)
        )

    def ok(self, fail_on_time: bool = False) -> bool:
        """True when no gating regressions (and no dropped benchmarks)."""
        if self.regressions or self.missing_benchmarks:
            return False
        if fail_on_time and self.time_regressions:
            return False
        return True

    def verdict(self, fail_on_time: bool = False) -> str:
        if self.ok(fail_on_time):
            return "PASS"
        return "REGRESSED"


def _classify(baseline: float, current: float, tolerance: float) -> str:
    if current > baseline * (1.0 + tolerance):
        return "regressed"
    if current < baseline:
        return "improved"
    return "ok"


def compare(
    baseline: BenchRecord,
    current: BenchRecord,
    epsilon: float = DEFAULT_EPSILON,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
) -> BenchComparison:
    """Classify every shared metric of two records.

    Exact metrics regress on any increase beyond ``epsilon`` (relative);
    wall-clock metrics regress beyond ``time_tolerance``. Benchmarks
    present on only one side are reported as removed/added rather than
    silently skipped.
    """
    comparison = BenchComparison(
        baseline, current, epsilon=epsilon, time_tolerance=time_tolerance
    )
    deltas = comparison.deltas
    for name in sorted(set(baseline.benchmarks) | set(current.benchmarks)):
        base = baseline.benchmarks.get(name)
        cur = current.benchmarks.get(name)
        if base is None or cur is None:
            status = "added" if base is None else "removed"
            deltas.append(
                MetricDelta(
                    benchmark=name,
                    metric="il",
                    baseline=0.0 if base is None else _exact_value(base, "il"),
                    current=0.0 if cur is None else _exact_value(cur, "il"),
                    kind="exact",
                    status=status,
                )
            )
            continue
        for metric in EXACT_METRICS:
            base_value = _exact_value(base, metric)
            cur_value = _exact_value(cur, metric)
            deltas.append(
                MetricDelta(
                    benchmark=name,
                    metric=metric,
                    baseline=base_value,
                    current=cur_value,
                    kind="exact",
                    status=_classify(base_value, cur_value, epsilon),
                )
            )
    for phase in sorted(
        set(baseline.phase_seconds) & set(current.phase_seconds)
    ):
        base_value = baseline.phase_seconds[phase]["seconds"]
        cur_value = current.phase_seconds[phase]["seconds"]
        deltas.append(
            MetricDelta(
                benchmark="(suite)",
                metric=f"phase.{phase}.seconds",
                baseline=base_value,
                current=cur_value,
                kind="time",
                status=_classify(base_value, cur_value, time_tolerance),
            )
        )
    if baseline.wall_seconds and current.wall_seconds:
        deltas.append(
            MetricDelta(
                benchmark="(suite)",
                metric="wall_seconds",
                baseline=baseline.wall_seconds,
                current=current.wall_seconds,
                kind="time",
                status=_classify(
                    baseline.wall_seconds,
                    current.wall_seconds,
                    time_tolerance,
                ),
            )
        )
    return comparison


def _exact_value(payload: dict, metric: str) -> float:
    """Resolve one EXACT_METRICS name against a per-benchmark payload."""
    if metric.startswith("post_"):
        return payload.get("post_counters", {}).get(metric[len("post_") :], 0)
    if metric in ("il", "ct", "calls", "returns"):
        return payload.get("counters", {}).get(metric, 0)
    return payload.get(metric, 0)
