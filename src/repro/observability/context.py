"""Trace-context propagation across processes and the service wire.

A :class:`TraceContext` is the pair of correlation ids that follows one
request end-to-end:

- ``trace_id`` — minted once, at the client (or at the server edge when
  a client sends none), and carried unchanged through every hop: the
  NDJSON request envelope, the server's dispatch queue, the worker
  pool, and back in the response. Every span/event a request produces
  — client send, server dispatch, worker compile/inline, response —
  carries it, so ``grep <trace_id> trace.jsonl`` reconstructs the
  request across process boundaries.
- ``request_id`` — distinguishes individual requests that share a
  computation. When identical in-flight requests coalesce, each keeps
  its own (trace_id, request_id) and the primary computation records
  every attached trace_id.

The ids are plain lowercase hex so they survive JSON, filenames, and
grep unmangled. :meth:`TraceContext.from_wire` validates foreign input
and returns ``None`` rather than raising, so a malformed ``trace``
field degrades to a server-minted context instead of an error.

Stamping happens through :meth:`repro.observability.tracer.Tracer.bind`
/ ``Tracer.context``: binding ``trace_id=...`` on a tracer stamps the
id onto every record it emits from then on, and
:meth:`~repro.observability.tracer.Tracer.absorb` forwards the parent's
bound context onto absorbed child records, so worker-side records stay
correlated even when the worker itself did not bind anything.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

_HEX = frozenset("0123456789abcdef")

#: Accepted id lengths (inclusive); W3C-style 16-byte trace ids fit.
_MIN_ID_LENGTH = 4
_MAX_ID_LENGTH = 64


def new_trace_id() -> str:
    """A fresh 64-bit lowercase-hex trace id."""
    return os.urandom(8).hex()


def new_request_id() -> str:
    """A fresh 32-bit lowercase-hex request id."""
    return os.urandom(4).hex()


def valid_id(value) -> bool:
    """True for a plausible wire id: bounded lowercase/uppercase hex."""
    return (
        isinstance(value, str)
        and _MIN_ID_LENGTH <= len(value) <= _MAX_ID_LENGTH
        and all(ch in _HEX for ch in value.lower())
    )


@dataclass(frozen=True)
class TraceContext:
    """The (trace_id, request_id) pair that follows one request."""

    trace_id: str
    request_id: str

    @classmethod
    def mint(cls) -> "TraceContext":
        """A brand-new context (client send, or the server edge)."""
        return cls(trace_id=new_trace_id(), request_id=new_request_id())

    # ------------------------------------------------------------------
    # the wire form: a plain dict inside the NDJSON envelope

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "request_id": self.request_id}

    @classmethod
    def from_wire(cls, data) -> "TraceContext | None":
        """Parse a request's ``trace`` field; ``None`` when unusable.

        A valid ``trace_id`` with a missing/invalid ``request_id`` still
        parses (the request_id is re-minted) so a minimal client can
        send just the trace id it cares about.
        """
        if not isinstance(data, dict):
            return None
        trace_id = data.get("trace_id")
        if not valid_id(trace_id):
            return None
        request_id = data.get("request_id")
        if not valid_id(request_id):
            request_id = new_request_id()
        return cls(trace_id=trace_id, request_id=request_id)

    def attrs(self) -> dict:
        """The stamp for :meth:`Tracer.bind` / ``Tracer.context``."""
        return {"trace_id": self.trace_id, "request_id": self.request_id}
