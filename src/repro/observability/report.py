"""Performance-report rendering for bench records and comparisons.

Three output shapes over :mod:`repro.observability.bench` data:

- :func:`render_comparison_table` — an aligned terminal table of the
  classified deltas (regressions first);
- :func:`render_markdown_report` / :func:`render_html_report` — a full
  performance report: verdict, regression/improvement tables, per-pass
  and per-phase wall-time attribution, cache hit rates, and the
  inline-audit reason rollup;
- :func:`render_flamegraph` — a text flamegraph built from a trace's
  JSONL span tree (the files ``--trace`` writes), siblings of the same
  name merged, bar widths proportional to root wall time.
"""

from __future__ import annotations

import html
import json

from repro.observability.bench import BenchComparison, BenchRecord, MetricDelta


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def _relative(delta: MetricDelta) -> str:
    relative = delta.relative
    if relative == float("inf"):
        return "new"
    return f"{relative:+.1%}"


def _delta_rows(deltas: list[MetricDelta]) -> list[list[str]]:
    return [
        [
            delta.benchmark,
            delta.metric,
            _fmt(delta.baseline),
            _fmt(delta.current),
            _relative(delta),
            delta.status,
        ]
        for delta in deltas
    ]


_DELTA_HEADERS = ["benchmark", "metric", "baseline", "current", "delta", "status"]


def render_comparison_table(
    comparison: BenchComparison, show_ok: bool = False
) -> str:
    """Terminal rendering of a comparison: regressions first."""
    interesting = (
        comparison.regressions
        + comparison.time_regressions
        + comparison.improvements
        + [d for d in comparison.deltas if d.status in ("added", "removed")]
    )
    if show_ok:
        interesting = interesting + [
            delta for delta in comparison.deltas if delta.status == "ok"
        ]
    lines = [
        f"bench comparison: {comparison.verdict()}"
        f" ({len(comparison.regressions)} regressions,"
        f" {len(comparison.time_regressions)} time regressions,"
        f" {len(comparison.improvements)} improvements)"
    ]
    if comparison.missing_benchmarks:
        lines.append(
            "missing benchmarks: " + ", ".join(comparison.missing_benchmarks)
        )
    if interesting:
        lines.append(_table(_DELTA_HEADERS, _delta_rows(interesting)))
    else:
        lines.append("no metric moved; records are equivalent.")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# markdown / HTML


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _record_header_rows(
    baseline: BenchRecord, current: BenchRecord | None
) -> list[list[str]]:
    records = [("baseline", baseline)] + (
        [("current", current)] if current else []
    )
    out = []
    for label, record in records:
        out.append(
            [
                label,
                record.config_name,
                record.git_sha[:12],
                _fmt(record.wall_seconds),
                str(len(record.benchmarks)),
            ]
        )
    return out


def _pass_attribution_rows(record: BenchRecord) -> list[list[str]]:
    rows = []
    for name, stats in sorted(
        record.pass_seconds.items(),
        key=lambda item: item[1].get("seconds", 0.0),
        reverse=True,
    ):
        rows.append(
            [
                name,
                f"{stats.get('seconds', 0.0):.4f}",
                str(int(stats.get("invocations", 0))),
                str(int(stats.get("changes", 0))),
                f"{stats.get('p99', 0.0):.5f}",
            ]
        )
    return rows


def _phase_attribution_rows(record: BenchRecord) -> list[list[str]]:
    rows = []
    for name, stats in sorted(
        record.phase_seconds.items(),
        key=lambda item: item[1].get("seconds", 0.0),
        reverse=True,
    ):
        rows.append(
            [
                name,
                f"{stats.get('seconds', 0.0):.4f}",
                str(int(stats.get("count", 0))),
            ]
        )
    return rows


def render_markdown_report(
    comparison: BenchComparison, flame: str | None = None
) -> str:
    """A markdown performance report for a baseline/current comparison."""
    baseline, current = comparison.baseline, comparison.current
    parts = [
        "# Performance report",
        "",
        f"**Verdict: {comparison.verdict()}** — "
        f"{len(comparison.regressions)} regressions, "
        f"{len(comparison.time_regressions)} wall-time regressions "
        f"(tolerance {comparison.time_tolerance:.0%}), "
        f"{len(comparison.improvements)} improvements.",
        "",
        _markdown_table(
            ["record", "config", "git", "wall s", "benchmarks"],
            _record_header_rows(baseline, current),
        ),
    ]
    if comparison.missing_benchmarks:
        parts += [
            "",
            "**Missing benchmarks:** "
            + ", ".join(comparison.missing_benchmarks),
        ]
    if comparison.added_benchmarks:
        parts += [
            "",
            "**New benchmarks:** " + ", ".join(comparison.added_benchmarks),
        ]
    regressions = comparison.regressions + comparison.time_regressions
    if regressions:
        parts += [
            "",
            "## Regressions",
            "",
            _markdown_table(_DELTA_HEADERS, _delta_rows(regressions)),
        ]
    if comparison.improvements:
        parts += [
            "",
            "## Improvements",
            "",
            _markdown_table(
                _DELTA_HEADERS, _delta_rows(comparison.improvements)
            ),
        ]
    if current.pass_seconds:
        parts += [
            "",
            "## Per-pass time attribution (current)",
            "",
            _markdown_table(
                ["pass", "seconds", "invocations", "changes", "p99 s"],
                _pass_attribution_rows(current),
            ),
        ]
    if current.phase_seconds:
        parts += [
            "",
            "## Per-phase wall time (current)",
            "",
            _markdown_table(
                ["phase", "seconds", "spans"],
                _phase_attribution_rows(current),
            ),
        ]
    if current.cache:
        cache = current.cache
        parts += [
            "",
            "## Cache",
            "",
            f"hits {int(cache.get('hits', 0))}, misses"
            f" {int(cache.get('misses', 0))}, disk hits"
            f" {int(cache.get('disk_hits', 0))}, hit rate"
            f" {cache.get('hit_rate', 0.0):.1%}.",
        ]
    if current.audit_total:
        parts += [
            "",
            "## Inline-audit reason rollup (current)",
            "",
            _markdown_table(
                ["reason", "arcs"],
                [
                    [reason, str(count)]
                    for reason, count in sorted(
                        current.audit_total.items(),
                        key=lambda item: -item[1],
                    )
                ],
            ),
        ]
    if flame:
        parts += ["", "## Flamegraph", "", "```", flame.rstrip("\n"), "```"]
    return "\n".join(parts) + "\n"


def render_html_report(
    comparison: BenchComparison, flame: str | None = None
) -> str:
    """The markdown report wrapped as a minimal standalone HTML page.

    Markdown tables become ``<table>`` elements; everything else is
    escaped prose, so the file opens cleanly in any browser without
    external assets.
    """
    markdown = render_markdown_report(comparison, flame=flame)
    out = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'>",
        "<title>Performance report</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:2px 8px;text-align:left}"
        "pre{background:#f4f4f4;padding:1em}</style>",
        "</head><body>",
    ]
    in_table = False
    in_code = False
    for line in markdown.splitlines():
        if line.startswith("```"):
            out.append("<pre>" if not in_code else "</pre>")
            in_code = not in_code
            continue
        if in_code:
            out.append(html.escape(line))
            continue
        if line.startswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if all(set(cell) <= {"-"} for cell in cells):
                continue
            if not in_table:
                out.append("<table>")
                tag = "th"
                in_table = True
            else:
                tag = "td"
            out.append(
                "<tr>"
                + "".join(f"<{tag}>{html.escape(c)}</{tag}>" for c in cells)
                + "</tr>"
            )
            continue
        if in_table:
            out.append("</table>")
            in_table = False
        if line.startswith("# "):
            out.append(f"<h1>{html.escape(line[2:])}</h1>")
        elif line.startswith("## "):
            out.append(f"<h2>{html.escape(line[3:])}</h2>")
        elif line.strip():
            text = html.escape(line)
            while "**" in text:
                text = text.replace("**", "<strong>", 1).replace(
                    "**", "</strong>", 1
                )
            out.append(f"<p>{text}</p>")
    if in_table:
        out.append("</table>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"


# ----------------------------------------------------------------------
# flamegraph


def load_trace(path: str) -> list[dict]:
    """Read a ``--trace`` JSONL file back into its record list."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def render_flamegraph(records: list[dict], width: int = 40) -> str:
    """A text flamegraph from a trace's span tree.

    Sibling spans with the same name are merged (seconds summed, counts
    kept), children indent under their parents, and each line carries a
    bar proportional to the root total, so the hot phase is visible at
    a glance without any tooling.
    """
    spans = [r for r in records if r.get("type") == "span"]
    if not spans:
        return "flamegraph: (no spans in trace)"
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)
    total = sum(span["seconds"] for span in children.get(None, [])) or 1.0

    lines: list[str] = []

    def emit(parents: list[int | None], depth: int) -> None:
        merged: dict[str, dict] = {}
        for parent in parents:
            for span in children.get(parent, []):
                entry = merged.setdefault(
                    span["name"], {"seconds": 0.0, "count": 0, "ids": []}
                )
                entry["seconds"] += span["seconds"]
                entry["count"] += 1
                entry["ids"].append(span["id"])
        for name, entry in sorted(
            merged.items(), key=lambda item: -item[1]["seconds"]
        ):
            bar = "#" * max(1, round(width * entry["seconds"] / total))
            label = f"{'  ' * depth}{name}"
            count = f" x{entry['count']}" if entry["count"] > 1 else ""
            lines.append(
                f"{label:<48} {entry['seconds']:>9.4f}s{count:<6} {bar}"
            )
            if depth < 16:
                emit(entry["ids"], depth + 1)

    emit([None], 0)
    return "\n".join(lines)
