"""The PassManager: ordered pass execution with fixpoint rounds.

One engine drives both flavors of pipeline in this codebase:

- the optimizer's function-level fixpoint (``fold → copyprop → cse →
  jumpopt → dce`` rounds until a round changes nothing), and
- the inliner's single-round module-level phase sequence
  (``callgraph → classify → linearize → select → expand → cleanup``).

Per-pass change counts accumulate into :class:`PassStats`; when a live
:class:`~repro.observability.Observability` is supplied, per-pass wall
time and change counts are also reported as
``pipeline.pass.<name>.seconds`` histograms and
``pipeline.pass.<name>.changes`` counters, and module-level passes run
inside their declared tracer spans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.observability import Observability, resolve
from repro.pipeline.passes import (
    DEFAULT_OPT_SPEC,
    Pass,
    PassContext,
    parse_pass_spec,
)


@dataclass
class PassStats:
    """Per-pass change counts accumulated over all rounds."""

    rounds: int = 0
    by_pass: dict[str, int] = field(default_factory=dict)

    def record(self, name: str, count: int) -> None:
        self.by_pass[name] = self.by_pass.get(name, 0) + count

    def merge(self, other: "PassStats") -> None:
        self.rounds = max(self.rounds, other.rounds)
        for name, count in other.by_pass.items():
            self.record(name, count)

    @property
    def total_changes(self) -> int:
        return sum(self.by_pass.values())


def pass_timings(metrics) -> dict[str, dict]:
    """Per-pass wall-time attribution in a stable, JSON-ready schema.

    Reads the ``pipeline.pass.<name>.seconds`` histograms and
    ``pipeline.pass.<name>.changes`` counters that :class:`PassManager`
    reports into a live :class:`~repro.observability.MetricsRegistry`
    and returns ``{pass_name: {"seconds", "invocations", "changes",
    "p50", "p90", "p99"}}``. Consumers (bench records, performance
    reports) rely on exactly these keys.
    """
    snapshot = metrics.snapshot()
    timings: dict[str, dict] = {}
    prefix, suffix = "pipeline.pass.", ".seconds"
    for name, stats in snapshot["histograms"].items():
        if not (name.startswith(prefix) and name.endswith(suffix)):
            continue
        pass_name = name[len(prefix) : -len(suffix)]
        timings[pass_name] = {
            "seconds": stats["total"],
            "invocations": stats["count"],
            "changes": snapshot["counters"].get(
                f"{prefix}{pass_name}.changes", 0
            ),
            "p50": stats.get("p50", stats["mean"]),
            "p90": stats.get("p90", stats["max"]),
            "p99": stats.get("p99", stats["max"]),
        }
    return timings


class PassManager:
    """Runs an ordered pass pipeline over functions or whole modules."""

    def __init__(
        self,
        passes: Sequence[Pass],
        max_rounds: int = 8,
        fixpoint: bool = True,
    ):
        self.passes = list(passes)
        self.max_rounds = max_rounds
        self.fixpoint = fixpoint

    @classmethod
    def from_spec(
        cls,
        spec: str | None = None,
        max_rounds: int = 8,
        fixpoint: bool = True,
    ) -> "PassManager":
        """Build a manager from a spec string (``None`` → default opt)."""
        return cls(
            parse_pass_spec(spec if spec is not None else DEFAULT_OPT_SPEC),
            max_rounds=max_rounds,
            fixpoint=fixpoint,
        )

    @property
    def spec(self) -> str:
        """The canonical spec string this manager runs."""
        return ",".join(pass_.name for pass_ in self.passes)

    # ------------------------------------------------------------------

    def _run_one(self, pass_: Pass, ctx: PassContext, obs: Observability) -> int:
        """Run one pass invocation, reporting time/changes when live."""
        if not obs.metrics.enabled:
            return pass_.run(ctx)
        start = time.perf_counter()
        count = pass_.run(ctx)
        obs.metrics.observe(
            f"pipeline.pass.{pass_.name}.seconds", time.perf_counter() - start
        )
        if count:
            obs.metrics.inc(f"pipeline.pass.{pass_.name}.changes", count)
        return count

    def run_function(
        self,
        function,
        max_rounds: int | None = None,
        obs: Observability | None = None,
    ) -> PassStats:
        """Run the function-level pipeline on one function to fixpoint."""
        for pass_ in self.passes:
            if pass_.level != "function":
                raise ValueError(
                    f"pass {pass_.name!r} is module-level; run_function"
                    " accepts function-level pipelines only"
                )
        obs = resolve(obs)
        rounds = max_rounds if max_rounds is not None else self.max_rounds
        ctx = PassContext(function=function, obs=obs)
        stats = PassStats()
        for _ in range(rounds if self.fixpoint else 1):
            round_changes = 0
            for pass_ in self.passes:
                count = self._run_one(pass_, ctx, obs)
                stats.record(pass_.name, count)
                round_changes += count
            stats.rounds += 1
            if round_changes == 0:
                break
        return stats

    def run_module(
        self,
        module,
        ctx: PassContext | None = None,
        obs: Observability | None = None,
    ) -> PassStats:
        """Run the pipeline over a module.

        Function-level passes apply to every function; module-level
        passes run once per round with the shared context. With
        ``fixpoint`` the rounds repeat until nothing changes (or
        ``max_rounds`` hits); otherwise a single round runs.
        """
        if ctx is None:
            ctx = PassContext(module=module, obs=resolve(obs))
        else:
            ctx.module = module
            if obs is not None:
                ctx.obs = resolve(obs)
        obs = ctx.obs
        stats = PassStats()
        for _ in range(self.max_rounds if self.fixpoint else 1):
            round_changes = 0
            for pass_ in self.passes:
                if pass_.level == "function":
                    count = 0
                    for function in module.functions.values():
                        ctx.function = function
                        count += self._run_one(pass_, ctx, obs)
                    ctx.function = None
                else:
                    span = getattr(pass_, "span", None) or f"pass.{pass_.name}"
                    open_attrs = getattr(pass_, "span_attrs", None)
                    with obs.tracer.span(
                        span, **(open_attrs(ctx) if open_attrs else {})
                    ) as attrs:
                        count = self._run_one(pass_, ctx, obs)
                        result_attr = getattr(pass_, "result_attr", None)
                        if result_attr:
                            attrs[result_attr] = count
                stats.record(pass_.name, count)
                round_changes += count
                if ctx.check and pass_.name != "verify":
                    self._verify_after(pass_, ctx, obs)
            stats.rounds += 1
            if round_changes == 0:
                break
        return stats

    @staticmethod
    def _verify_after(pass_: Pass, ctx: PassContext, obs: Observability) -> None:
        """Re-verify IL well-formedness after one pass (``--check``).

        Any :class:`~repro.errors.ILError` raised here names the pass
        that broke the invariant, so transformation bugs are pinned to
        the phase that introduced them rather than surfacing later.
        """
        from repro.errors import ILError
        from repro.il.verifier import verify_module

        with obs.tracer.span("verify.after_pass", pass_name=pass_.name):
            try:
                verify_module(ctx.module)
            except ILError as error:
                raise ILError(
                    f"IL verification failed after pass {pass_.name!r}: {error}"
                ) from error
        if obs.metrics.enabled:
            obs.metrics.inc("verify.pass_checks")
