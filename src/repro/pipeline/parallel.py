"""Deterministic parallel fan-out for suite and ablation runs.

:func:`parallel_map` runs one task per item on a thread pool and
returns results in item order, so ``jobs=N`` output is indistinguishable
from serial output. Each worker records into its own forked
:class:`~repro.observability.Observability`; the children are absorbed
into the parent (in item order) after every task finishes, so traces
and metrics stay whole — each absorbed record is tagged with its
worker's label.

``jobs=1`` short-circuits to a plain loop over the parent context,
byte-identical to the historical serial code path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.observability import Observability, resolve

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T, Observability], R],
    items: Sequence[T],
    jobs: int = 1,
    obs: Observability | None = None,
    worker_label: str = "worker",
) -> list[R]:
    """Map ``fn(item, obs)`` over ``items``, preserving item order."""
    parent = resolve(obs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item, parent) for item in items]
    children: list[Observability | None] = [
        Observability.create() if parent.enabled else None for _ in items
    ]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(fn, item, resolve(child))
            for item, child in zip(items, children)
        ]
        results = [future.result() for future in futures]
    for index, child in enumerate(children):
        if child is not None:
            parent.absorb(child, worker=f"{worker_label}-{index}")
    return results
