"""Deterministic parallel fan-out for suite and ablation runs.

:func:`parallel_map` runs one task per item on a pluggable executor and
returns results in item order, so ``jobs=N`` output is indistinguishable
from serial output. Two backends:

- ``executor="thread"`` (default) — a ``ThreadPoolExecutor``. Cheap to
  start and shares in-memory state (e.g. a live
  :class:`~repro.pipeline.session.CompilationSession`), but CPU-bound
  work serializes on the GIL.
- ``executor="process"`` — a ``ProcessPoolExecutor``. True parallelism
  for CPU-heavy compile/profile/inline work; the task callable and its
  items must be picklable, and each worker returns its serialized
  result together with its observability child.

Each worker records into its own forked
:class:`~repro.observability.Observability`; children are absorbed into
the parent **in item order, as soon as that item (and every earlier
item) finishes** — so traces and metrics stay whole and deterministic
while no more than the in-flight window of children is held in memory.
Each absorbed record is tagged with its worker's label, and the parent
tracer's bound correlation context (``trace_id`` etc., see
:mod:`repro.observability.context`) is re-bound on every child so
worker records carry it at emit time on either backend.

``jobs=1`` short-circuits to a plain loop over the parent context,
byte-identical to the historical serial code path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from repro.observability import Observability, resolve

T = TypeVar("T")
R = TypeVar("R")

#: The executor backends :func:`parallel_map` accepts.
EXECUTORS = ("thread", "process")


def validate_jobs(jobs: int) -> int:
    """Reject a non-positive worker count with a clear error."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (1 = serial), got {jobs}")
    return jobs


def jobs_argument(value: str) -> int:
    """Argparse ``type=`` for ``--jobs``: a positive worker count."""
    import argparse

    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (1 = serial), got {jobs}"
        )
    return jobs


def validate_executor(executor: str) -> str:
    """Reject an unknown executor backend with a clear error."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; choose from"
            f" {', '.join(EXECUTORS)}"
        )
    return executor


def _process_task(fn, item, want_obs: bool, context: dict | None = None):
    """Run one task in a worker process, capturing its observability.

    Module-level so it pickles; the child context rides back to the
    parent in the return value (tracers and metrics are plain data).
    ``context`` is the parent tracer's bound correlation context
    (e.g. ``trace_id``), re-bound here so worker records carry it at
    emit time even across the process boundary.
    """
    child = Observability.create() if want_obs else None
    if child is not None and context:
        child.tracer.bind(**context)
    result = fn(item, resolve(child))
    return result, child


def parallel_map(
    fn: Callable[[T, Observability], R],
    items: Sequence[T],
    jobs: int = 1,
    obs: Observability | None = None,
    worker_label: str = "worker",
    executor: str = "thread",
) -> list[R]:
    """Map ``fn(item, obs)`` over ``items``, preserving item order.

    With ``executor="process"``, ``fn`` and every item (and result)
    must be picklable — use module-level functions or
    :func:`functools.partial` over module-level functions.
    """
    validate_jobs(jobs)
    validate_executor(executor)
    parent = resolve(obs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item, parent) for item in items]
    results: list[R] = []
    bound = parent.tracer.bound_context()
    if executor == "process":
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_process_task, fn, item, parent.enabled, bound)
                for item in items
            ]
            for index, future in enumerate(futures):
                result, child = future.result()
                results.append(result)
                if child is not None:
                    parent.absorb(child, worker=f"{worker_label}-{index}")
                futures[index] = None  # release the child promptly
        return results
    children: list[Observability | None] = [
        Observability.create() if parent.enabled else None for _ in items
    ]
    if bound:
        for child in children:
            if child is not None:
                child.tracer.bind(**bound)
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [
            pool.submit(fn, item, resolve(child))
            for item, child in zip(items, children)
        ]
        # Absorb each worker context as soon as its item (and every
        # earlier item) has finished: deterministic item order without
        # holding every child's full trace until the end of the run.
        for index, future in enumerate(futures):
            results.append(future.result())
            child = children[index]
            if child is not None:
                parent.absorb(child, worker=f"{worker_label}-{index}")
                children[index] = None
    return results
