"""First-class pipeline passes and the global pass registry.

Every transformation the compiler applies — the five ``opt/`` passes
and the six inline-expansion phases of §3 — is registered here as a
:class:`Pass`: a named unit with a level (``function`` passes rewrite
one :class:`~repro.il.function.ILFunction`; ``module`` passes see the
whole :class:`~repro.il.module.ILModule` plus the shared
:class:`PassContext` state), a ``run`` method returning a change count,
and the metric names it reports under.

Pipelines are described by comma-separated spec strings such as
``"fold,copyprop,cse,jumpopt,dce"`` (short aliases) or the canonical
names (``"constant-fold,copy-propagate,..."``); :func:`parse_pass_spec`
resolves either form and rejects unknown names with the full menu.

Registration is lazy so this module never imports the transformation
modules at import time (they import the pipeline package back).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

from repro.observability import NULL_OBS, Observability

#: The classic post-inline cleanup pipeline (§4.4's "full set").
DEFAULT_OPT_SPEC = "constant-fold,copy-propagate,cse,jump-optimize,dead-code"

#: The §3 inline-expansion phase order.
INLINE_PHASE_SPEC = "callgraph,classify,linearize,select,expand,cleanup"


@dataclass
class PassContext:
    """Everything a pass may need, plus the inter-pass scratch state.

    Module-level passes communicate through ``state``: the callgraph
    phase deposits ``state["graph"]``, linearization ``state["sequence"]``,
    selection ``state["selection"]``, expansion ``state["records"]``, and
    cleanup ``state["removed"]`` — mirroring the §3 dataflow.
    """

    module: Any = None
    function: Any = None
    profile: Any = None
    params: Any = None
    seed: int = 0
    linearize_method: str = "hybrid"
    #: When set, the PassManager re-verifies the module's IL
    #: well-formedness after every pass (the ``--check`` mode).
    check: bool = False
    obs: Observability = field(default_factory=lambda: NULL_OBS)
    state: dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class Pass(Protocol):
    """What the :class:`~repro.pipeline.manager.PassManager` drives."""

    name: str
    level: str  # "function" | "module"
    metrics: tuple[str, ...]

    def run(self, ctx: PassContext) -> int:
        """Apply the pass; return the number of changes made."""
        ...


@dataclass(frozen=True)
class FunctionPass:
    """A pass over one function (``ctx.function``)."""

    name: str
    fn: Callable[[Any], int]
    metrics: tuple[str, ...] = ()
    level: str = "function"

    def run(self, ctx: PassContext) -> int:
        return self.fn(ctx.function)


@dataclass(frozen=True)
class ModulePass:
    """A pass over the whole module and the shared context state.

    ``span`` names the tracer span the manager opens around the pass
    (kept identical to the historical ``inline.*`` phase spans);
    ``span_attrs`` supplies attributes known at span-open time and
    ``result_attr`` names the attribute that receives the change count.
    """

    name: str
    fn: Callable[[PassContext], int]
    metrics: tuple[str, ...] = ()
    span: str | None = None
    span_attrs: Callable[[PassContext], dict] | None = None
    result_attr: str | None = None
    level: str = "module"

    def run(self, ctx: PassContext) -> int:
        return self.fn(ctx)


_REGISTRY: dict[str, Pass] = {}
_ALIASES: dict[str, str] = {}
_REGISTERED = False


def register_pass(pass_: Pass, aliases: tuple[str, ...] = ()) -> Pass:
    """Add a pass (and optional short aliases) to the global registry."""
    if pass_.name in _REGISTRY:
        raise ValueError(f"pass {pass_.name!r} is already registered")
    _REGISTRY[pass_.name] = pass_
    for alias in aliases:
        _ALIASES[alias] = pass_.name
    return pass_


def available_passes() -> list[str]:
    """Canonical names of every registered pass, sorted."""
    _ensure_registered()
    return sorted(_REGISTRY)


def get_pass(name: str) -> Pass:
    """Look up one pass by canonical name or alias."""
    _ensure_registered()
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        raise ValueError(
            f"unknown pass {name!r}; available:"
            f" {', '.join(available_passes())}"
            f" (aliases: {', '.join(sorted(_ALIASES))})"
        ) from None


def parse_pass_spec(spec: str) -> list[Pass]:
    """Parse ``"fold,copyprop,dce"`` into a pass list (order preserved)."""
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise ValueError(f"empty pass spec {spec!r}")
    return [get_pass(name) for name in names]


# ----------------------------------------------------------------------
# Built-in pass registration (lazy: transformation modules import us back)


def _ensure_registered() -> None:
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True

    from repro.opt.constant_fold import fold_constants
    from repro.opt.copy_prop import propagate_copies
    from repro.opt.cse import eliminate_common_subexpressions
    from repro.opt.dce import eliminate_dead_code
    from repro.opt.jump_opt import optimize_jumps

    register_pass(
        FunctionPass("constant-fold", fold_constants,
                     metrics=("pipeline.pass.constant-fold.changes",)),
        aliases=("fold",),
    )
    register_pass(
        FunctionPass("copy-propagate", propagate_copies,
                     metrics=("pipeline.pass.copy-propagate.changes",)),
        aliases=("copyprop",),
    )
    register_pass(
        FunctionPass("cse", eliminate_common_subexpressions,
                     metrics=("pipeline.pass.cse.changes",)),
    )
    register_pass(
        FunctionPass("jump-optimize", optimize_jumps,
                     metrics=("pipeline.pass.jump-optimize.changes",)),
        aliases=("jumpopt",),
    )
    register_pass(
        FunctionPass("dead-code", eliminate_dead_code,
                     metrics=("pipeline.pass.dead-code.changes",)),
        aliases=("dce",),
    )

    from repro.callgraph.build import build_call_graph
    from repro.callgraph.graph import ArcStatus
    from repro.callgraph.reachability import eliminate_unreachable
    from repro.inliner.classify import classify_sites
    from repro.inliner.expand import expand_call_site
    from repro.inliner.linearize import linearize
    from repro.inliner.select import select_sites

    def _phase_callgraph(ctx: PassContext) -> int:
        graph = build_call_graph(ctx.module, ctx.profile, obs=ctx.obs)
        ctx.state["graph"] = graph
        return 0

    def _phase_classify(ctx: PassContext) -> int:
        ctx.state["classified"] = classify_sites(
            ctx.module, ctx.state["graph"], ctx.profile, ctx.params
        )
        return 0

    def _phase_linearize(ctx: PassContext) -> int:
        sequence = linearize(
            ctx.module, ctx.profile, ctx.seed, ctx.linearize_method
        )
        ctx.state["sequence"] = sequence
        return 0

    def _phase_select(ctx: PassContext) -> int:
        selection = select_sites(
            ctx.module,
            ctx.state["graph"],
            ctx.profile,
            ctx.state["sequence"],
            ctx.params,
            seed=ctx.seed,
            obs=ctx.obs,
        )
        ctx.state["selection"] = selection
        return len(selection.selected)

    def _phase_expand(ctx: PassContext) -> int:
        # Physical expansion follows the linear sequence: every selected
        # arc whose caller is the current function is expanded, so each
        # callee is final before anyone inlines it (minimal expansions,
        # §2.7).
        by_caller: dict[str, list] = {}
        for arc in ctx.state["selection"].selected:
            by_caller.setdefault(arc.caller, []).append(arc)
        records = ctx.state.setdefault("records", [])
        for name in ctx.state["sequence"]:
            for arc in by_caller.get(name, ()):
                records.append(expand_call_site(ctx.module, arc.caller, arc.site))
                arc.status = ArcStatus.EXPANDED
        # Snapshot the post-expansion size before cleanup removes
        # unreachable bodies: this is the number the selection's
        # projected_size must reproduce exactly.
        ctx.state["pre_cleanup_size"] = ctx.module.total_code_size()
        return len(records)

    def _phase_cleanup(ctx: PassContext) -> int:
        removed = eliminate_unreachable(ctx.module, build_call_graph(ctx.module))
        ctx.state["removed"] = removed
        return len(removed)

    register_pass(ModulePass("callgraph", _phase_callgraph,
                             span="inline.callgraph"))
    register_pass(ModulePass("classify", _phase_classify,
                             span="inline.classify"))
    register_pass(ModulePass(
        "linearize", _phase_linearize, span="inline.linearize",
        span_attrs=lambda ctx: {"method": ctx.linearize_method},
    ))
    register_pass(ModulePass(
        "select", _phase_select, span="inline.select",
        metrics=("pipeline.pass.select.changes",),
    ))
    register_pass(ModulePass(
        "expand", _phase_expand, span="inline.expand",
        metrics=("pipeline.pass.expand.changes",),
        result_attr="expansions",
    ))
    register_pass(ModulePass(
        "cleanup", _phase_cleanup, span="inline.cleanup",
        metrics=("pipeline.pass.cleanup.changes",),
        result_attr="removed_functions",
    ))

    from repro.il.verifier import verify_function_local

    def _verify_pass(function) -> int:
        # Function-level so it splices into any pipeline, including the
        # optimizer's (--passes 'fold,verify,dce'). Full module-wide
        # verification (call targets, site-id uniqueness) runs under
        # --check and inside InlineExpander.
        verify_function_local(function)
        return 0

    register_pass(
        FunctionPass("verify", _verify_pass), aliases=("check",)
    )
