"""CompilationSession: content-addressed caching of pipeline artifacts.

A session maps stable hash keys to the two expensive artifacts of the
experiment pipeline:

- **compiled modules**, keyed over (source text, defines, ``link_libc``,
  pre-optimization pass spec, entry) — the cached module already has the
  pass pipeline applied, and lookups return a :meth:`~repro.il.module.
  ILModule.clone` so callers can mutate freely;
- **profiles**, keyed over (module content, input specs, scale,
  :class:`~repro.inliner.params.InlineParameters`) — the module content
  key covers every instruction (including call-site ids), so a profile
  is only ever replayed against the exact code it was measured on.

An optional on-disk store (``.repro-cache/`` by convention) makes the
cache survive across processes — and is **shared between concurrent
processes** (the process-pool executor, service workers). The store is
versioned under ``v<FORMAT>/``, sharded as
``v<FORMAT>/<kind>/<first-two-hex-chars>/<key>.pkl`` so no single
directory grows unbounded, and process-safe by construction:

- writes go to a temp file and land via atomic ``os.replace``, so a
  killed writer can never leave a truncated entry under the final name;
- a store-wide advisory lock (``fcntl.flock`` on ``.lock`` where
  available) serializes writers and eviction, so two processes storing
  the same key never interleave;
- eviction (``disk_max_entries``) removes oldest-first under the same
  lock and tolerates entries already removed by a sibling process.

The store stays corruption-tolerant by design: an unreadable,
truncated, or wrong-format entry is silently a miss — never an error —
so a stale or damaged cache directory can always be reused or simply
deleted.

Hit/miss/evict counts are reported as ``pipeline.cache.*`` metrics on
the session's (or each call's) Observability.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any

try:  # advisory locking is POSIX-only; elsewhere atomic rename suffices
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

from repro.observability import Observability, resolve

#: Bump when the pickled artifact layout changes; old entries become
#: invisible (a different subdirectory), not errors.
CACHE_FORMAT = 1

#: Default on-disk store location (created on first use).
DEFAULT_CACHE_DIR = ".repro-cache"


def _digest(payload: Any) -> str:
    """A stable sha256 over any JSON-serializable payload."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def module_cache_key(
    source: str,
    defines: dict[str, str] | None = None,
    link_libc: bool = True,
    pass_spec: str | None = None,
    entry: str = "main",
) -> str:
    """The content-addressed key of a compiled (and pre-optimized) module."""
    return _digest(
        {
            "format": CACHE_FORMAT,
            "kind": "module",
            "source": source,
            "defines": sorted((defines or {}).items()),
            "link_libc": link_libc,
            "pass_spec": pass_spec or "",
            "entry": entry,
        }
    )


def module_content_key(module) -> str:
    """A stable hash over everything that affects a module's execution.

    Unlike :func:`repro.profiler.serialize.module_fingerprint` (which
    deliberately survives body edits), this covers every instruction
    field — including call-site ids — plus globals with their
    initializers, so two modules share a key only when they run (and
    profile) identically.
    """
    digest = hashlib.sha256()
    digest.update(f"entry={module.entry};".encode())
    digest.update(("ext=" + ",".join(sorted(module.externals)) + ";").encode())
    digest.update(
        ("addr=" + ",".join(sorted(module.address_taken)) + ";").encode()
    )
    for data in module.globals.values():
        digest.update(f"g {data.name} {data.size} {data.align}".encode())
        for item in data.init:
            digest.update(
                f" {item.offset}:{item.kind}:{item.value}:{item.size}"
                f":{item.symbol}".encode()
            )
            digest.update(item.data)
        digest.update(b"\n")
    for function in module.functions.values():
        digest.update(
            f"f {function.name}({','.join(function.params)})"
            f" ret={function.returns_value}\n".encode()
        )
        for slot in function.slots.values():
            digest.update(
                f" s {slot.name} {slot.size} {slot.align} {slot.offset}\n".encode()
            )
        for instr in function.body:
            digest.update(
                repr(
                    (
                        int(instr.op), instr.dst, instr.op2, instr.a, instr.b,
                        instr.name, tuple(instr.args), instr.label,
                        instr.label2, tuple(instr.cases), instr.size,
                        instr.site,
                    )
                ).encode()
            )
            digest.update(b"\n")
    return digest.hexdigest()


def _spec_fingerprint(spec) -> dict:
    """A JSON-stable fingerprint of one profiling input."""
    return {
        "stdin": hashlib.sha256(spec.stdin).hexdigest(),
        "files": sorted(
            (path, hashlib.sha256(data).hexdigest())
            for path, data in spec.files.items()
        ),
        "argv": list(spec.argv),
    }


def profile_cache_key(
    module,
    specs,
    scale: str = "",
    params=None,
) -> str:
    """The content-addressed key of a profile over an input set."""
    params_payload = None
    if params is not None:
        params_payload = {
            slot: getattr(params, slot) for slot in params.__slots__
        }
    return _digest(
        {
            "format": CACHE_FORMAT,
            "kind": "profile",
            "module": module_content_key(module),
            "specs": [_spec_fingerprint(spec) for spec in specs],
            "scale": scale,
            "params": params_payload,
        }
    )


def _copy_profile(profile):
    """An isolated copy so cached weights can never be mutated back."""
    return copy.deepcopy(profile)


class CompilationSession:
    """Content-addressed artifact cache for compiles and profiles.

    In-memory entries are LRU-bounded by ``max_entries`` per artifact
    kind; with ``cache_dir`` set, entries are also pickled to disk and
    found again by later sessions (and later processes).
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        max_entries: int = 256,
        disk_max_entries: int | None = None,
        obs: Observability | None = None,
    ):
        self._modules: OrderedDict[str, Any] = OrderedDict()
        self._profiles: OrderedDict[str, Any] = OrderedDict()
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self.disk_max_entries = disk_max_entries
        self._obs = resolve(obs)
        self._lock = threading.Lock()
        self._dir = (
            os.path.join(cache_dir, f"v{CACHE_FORMAT}") if cache_dir else None
        )

    # ------------------------------------------------------------------
    # spec: the picklable recipe for an equivalent session
    #
    # A live session is not picklable (locks, live caches), so parallel
    # process workers and service workers receive a spec instead and
    # open their own session over the same shared disk store.

    def spec(self) -> dict:
        """A picklable description re-creating an equivalent session."""
        return {
            "cache_dir": self.cache_dir,
            "max_entries": self.max_entries,
            "disk_max_entries": self.disk_max_entries,
        }

    @classmethod
    def from_spec(cls, spec: dict | None) -> "CompilationSession | None":
        """Open a session from :meth:`spec` output (``None`` passes through)."""
        if spec is None:
            return None
        return cls(**spec)

    # ------------------------------------------------------------------
    # generic keyed store

    def _count(self, obs: Observability, what: str) -> None:
        if obs.metrics.enabled:
            obs.metrics.inc(f"pipeline.cache.{what}")
            if what in ("hits", "misses"):
                # Keep a live hit-rate gauge alongside the raw counters
                # so scrapers (the service `metrics` op, `--prom-out`)
                # get a ready-made ratio without post-processing.
                hits = obs.metrics.counters.get("pipeline.cache.hits", 0)
                misses = obs.metrics.counters.get("pipeline.cache.misses", 0)
                total = hits + misses
                if total:
                    obs.metrics.gauge("pipeline.cache.hit_rate", hits / total)

    def _lookup(self, table: OrderedDict, kind: str, key: str, obs) -> Any:
        with self._lock:
            if key in table:
                table.move_to_end(key)
                self._count(obs, "hits")
                return table[key]
        value = self._disk_load(kind, key)
        if value is not None:
            self._count(obs, "hits")
            self._count(obs, "disk_hits")
            self._remember(table, key, value, obs)
            return value
        self._count(obs, "misses")
        return None

    def _remember(self, table: OrderedDict, key: str, value: Any, obs) -> None:
        with self._lock:
            table[key] = value
            table.move_to_end(key)
            while len(table) > self.max_entries:
                table.popitem(last=False)
                self._count(obs, "evictions")

    def _store(self, table, kind: str, key: str, value: Any, obs) -> None:
        self._remember(table, key, value, obs)
        self._disk_store(kind, key, value)

    # ------------------------------------------------------------------
    # the on-disk store (sharded, process-safe, corruption-tolerant)

    def _disk_path(self, kind: str, key: str) -> str:
        """Sharded entry path: ``v1/<kind>/<first-2-hex>/<key>.pkl``."""
        return os.path.join(self._dir, kind, key[:2], f"{key}.pkl")

    def _legacy_disk_path(self, kind: str, key: str) -> str:
        """The pre-sharding flat layout, still honored on reads."""
        return os.path.join(self._dir, f"{kind}-{key}.pkl")

    @contextmanager
    def _store_lock(self):
        """Store-wide advisory write lock (no-op where flock is missing).

        Readers never take it — atomic rename means a read sees either
        the old entry, the new entry, or nothing, all of which are
        valid. Writers and eviction serialize on it across processes.
        """
        if fcntl is None or self.cache_dir is None:
            yield
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        with open(os.path.join(self.cache_dir, ".lock"), "a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _read_payload(self, path: str, kind: str) -> Any:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if (
            isinstance(payload, dict)
            and payload.get("format") == CACHE_FORMAT
            and payload.get("kind") == kind
        ):
            return payload["value"]
        return None

    def _disk_load(self, kind: str, key: str) -> Any:
        if self._dir is None:
            return None
        for path in (
            self._disk_path(kind, key),
            self._legacy_disk_path(kind, key),
        ):
            try:
                value = self._read_payload(path, kind)
            except Exception:
                continue
            if value is not None:
                return value
        return None

    def _disk_store(self, kind: str, key: str, value: Any) -> None:
        if self._dir is None:
            return
        try:
            path = self._disk_path(kind, key)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with self._store_lock():
                with open(tmp, "wb") as handle:
                    pickle.dump(
                        {"format": CACHE_FORMAT, "kind": kind, "value": value},
                        handle,
                    )
                os.replace(tmp, path)
                if self.disk_max_entries is not None:
                    self._disk_evict_locked()
        except Exception:
            # A cache that cannot be written is a slow cache, not a bug.
            return

    def _disk_entries(self) -> list[str]:
        """Every entry file in the store (sharded and legacy layouts)."""
        entries: list[str] = []
        for root, _dirs, files in os.walk(self._dir):
            for name in files:
                if name.endswith(".pkl"):
                    entries.append(os.path.join(root, name))
        return entries

    def _disk_evict_locked(self, obs: Observability | None = None) -> int:
        """Drop oldest entries beyond ``disk_max_entries`` (lock held).

        Safe against sibling processes: an entry that vanished between
        listing and unlinking was simply evicted by someone else.
        """
        obs = resolve(obs if obs is not None else self._obs)
        entries = self._disk_entries()
        excess = len(entries) - (self.disk_max_entries or 0)
        if excess <= 0:
            return 0
        def mtime(path: str) -> float:
            try:
                return os.stat(path).st_mtime
            except OSError:
                return 0.0
        evicted = 0
        for path in sorted(entries, key=mtime)[:excess]:
            try:
                os.unlink(path)
                evicted += 1
            except OSError:
                pass
        if evicted and obs.metrics.enabled:
            obs.metrics.inc("pipeline.cache.disk_evictions", evicted)
        return evicted

    # ------------------------------------------------------------------
    # artifacts

    def compiled_module(
        self,
        source: str,
        filename: str = "<input>",
        defines: dict[str, str] | None = None,
        link_libc: bool = True,
        entry: str = "main",
        pass_spec: str | None = None,
        obs: Observability | None = None,
    ):
        """Compile (and pre-optimize, when ``pass_spec`` is set) once.

        Returns a clone of the cached module, so the caller owns it.
        An empty-string ``pass_spec`` means "no pre-optimization";
        any other spec is run through the
        :class:`~repro.pipeline.manager.PassManager` to fixpoint.
        """
        obs = resolve(obs if obs is not None else self._obs)
        key = module_cache_key(source, defines, link_libc, pass_spec, entry)
        cached = self._lookup(self._modules, "module", key, obs)
        if cached is None:
            from repro.compiler import compile_program
            from repro.opt import optimize_module

            cached = compile_program(
                source,
                filename,
                defines=defines,
                link_libc=link_libc,
                entry=entry,
                obs=obs,
            )
            if pass_spec:
                optimize_module(cached, obs=obs, pass_spec=pass_spec)
            self._store(self._modules, "module", key, cached, obs)
        return cached.clone()

    def compile_benchmark(
        self,
        benchmark,
        pre_optimize: bool = True,
        pass_spec: str | None = None,
        obs: Observability | None = None,
    ):
        """Cached compile of one suite benchmark (pre-optimized by default)."""
        from repro.pipeline.passes import DEFAULT_OPT_SPEC

        effective = pass_spec if pass_spec is not None else DEFAULT_OPT_SPEC
        return self.compiled_module(
            benchmark.source,
            filename=f"{benchmark.name}.c",
            pass_spec=effective if pre_optimize else "",
            obs=obs,
        )

    def profile(
        self,
        module,
        specs,
        scale: str = "",
        params=None,
        obs: Observability | None = None,
        engine: str = "counting",
    ):
        """Cached :func:`~repro.profiler.profile.profile_module` call.

        ``engine`` is deliberately absent from the cache key: both VM
        execution tiers produce identical counters, so a profile cached
        under one engine is valid for the other.
        """
        obs = resolve(obs if obs is not None else self._obs)
        key = profile_cache_key(module, specs, scale, params)
        cached = self._lookup(self._profiles, "profile", key, obs)
        if cached is None:
            from repro.profiler.profile import profile_module

            cached = profile_module(module, specs, obs=obs, engine=engine)
            self._store(self._profiles, "profile", key, cached, obs)
        return _copy_profile(cached)

    # ------------------------------------------------------------------

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tables (and the disk store with ``disk``)."""
        with self._lock:
            self._modules.clear()
            self._profiles.clear()
        if disk and self._dir is not None and os.path.isdir(self._dir):
            with self._store_lock():
                for root, dirs, files in os.walk(self._dir, topdown=False):
                    for name in files:
                        try:
                            os.unlink(os.path.join(root, name))
                        except OSError:
                            pass
                    for name in dirs:
                        try:
                            os.rmdir(os.path.join(root, name))
                        except OSError:
                            pass
