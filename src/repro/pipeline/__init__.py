"""Unified pipeline architecture: passes, manager, session, parallelism.

This package is the single home of "how stages run" for the whole
reproduction:

- :mod:`repro.pipeline.passes` — the :class:`Pass` protocol, the global
  registry of the five optimizer passes and six §3 inliner phases, and
  spec-string parsing (``"fold,copyprop,cse,jumpopt,dce"``);
- :mod:`repro.pipeline.manager` — the :class:`PassManager` fixpoint
  engine that ``optimize_module`` and ``InlineExpander`` are thin
  wrappers over;
- :mod:`repro.pipeline.session` — the :class:`CompilationSession`
  content-addressed artifact cache (compiled modules, profiles) with an
  optional on-disk store;
- :mod:`repro.pipeline.parallel` — deterministic thread-pool fan-out
  with per-worker observability merging.
"""

from repro.pipeline.manager import PassManager, PassStats, pass_timings
from repro.pipeline.parallel import parallel_map
from repro.pipeline.passes import (
    DEFAULT_OPT_SPEC,
    INLINE_PHASE_SPEC,
    FunctionPass,
    ModulePass,
    Pass,
    PassContext,
    available_passes,
    get_pass,
    parse_pass_spec,
    register_pass,
)
from repro.pipeline.session import (
    CompilationSession,
    module_cache_key,
    module_content_key,
    profile_cache_key,
)

__all__ = [
    "CompilationSession",
    "DEFAULT_OPT_SPEC",
    "FunctionPass",
    "INLINE_PHASE_SPEC",
    "ModulePass",
    "Pass",
    "PassContext",
    "PassManager",
    "PassStats",
    "pass_timings",
    "available_passes",
    "get_pass",
    "module_cache_key",
    "module_content_key",
    "parallel_map",
    "parse_pass_spec",
    "profile_cache_key",
    "register_pass",
]
