"""Weighted call graph data structures."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Special node summarizing every external function (§3.2): calls to
#: functions with unavailable bodies go *to* it, and it conservatively
#: calls every user function back.
EXTERNAL_NODE = "$$$"

#: Special node summarizing calls through pointers (§3.2).
POINTER_NODE = "###"

SPECIAL_NODES = (EXTERNAL_NODE, POINTER_NODE)


class ArcStatus(enum.Enum):
    """Selection status of an arc (§2.2: "considered for inline
    expansion, rejected for inline expansion, or inline expanded")."""

    EXPANDABLE = "expandable"
    NOT_EXPANDABLE = "not_expandable"
    TO_BE_EXPANDED = "to_be_expanded"
    EXPANDED = "expanded"
    REJECTED = "rejected"


class ArcKind(enum.Enum):
    """What kind of call site an arc represents."""

    DIRECT = "direct"  # ordinary call to a defined function
    EXTERNAL = "external"  # call to a function with no available body
    POINTER = "pointer"  # call through a function pointer
    SYNTHETIC = "synthetic"  # worst-case arcs out of $$$ / ###


@dataclass(eq=False)
class Node:
    """One function (or special node) with its execution-count weight."""

    name: str
    weight: float = 0.0
    out_arcs: list["Arc"] = field(default_factory=list)
    in_arcs: list["Arc"] = field(default_factory=list)

    @property
    def is_special(self) -> bool:
        return self.name in SPECIAL_NODES

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.name} w={self.weight:g}>"


@dataclass(eq=False)
class Arc:
    """One static call site.

    ``site`` is the unique identifier (§2.2 requires one because several
    arcs may connect the same caller/callee pair). Synthetic arcs use
    negative ids.
    """

    site: int
    caller: str
    callee: str
    weight: float = 0.0
    kind: ArcKind = ArcKind.DIRECT
    status: ArcStatus = ArcStatus.EXPANDABLE

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Arc {self.site}: {self.caller} -> {self.callee}"
            f" w={self.weight:g} {self.kind.value} {self.status.value}>"
        )


class CallGraph:
    """G = (N, E, main)."""

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self.nodes: dict[str, Node] = {}
        self.arcs: dict[int, Arc] = {}
        self._next_synthetic = -1

    # ------------------------------------------------------------------

    def add_node(self, name: str, weight: float = 0.0) -> Node:
        node = self.nodes.get(name)
        if node is None:
            node = Node(name, weight)
            self.nodes[name] = node
        else:
            node.weight = weight
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def add_arc(
        self,
        site: int,
        caller: str,
        callee: str,
        weight: float = 0.0,
        kind: ArcKind = ArcKind.DIRECT,
    ) -> Arc:
        if site in self.arcs:
            raise ValueError(f"duplicate arc id {site}")
        arc = Arc(site, caller, callee, weight, kind)
        self.arcs[site] = arc
        self.nodes[caller].out_arcs.append(arc)
        self.nodes[callee].in_arcs.append(arc)
        return arc

    def add_synthetic_arc(self, caller: str, callee: str) -> Arc:
        site = self._next_synthetic
        self._next_synthetic -= 1
        return self.add_arc(site, caller, callee, 0.0, ArcKind.SYNTHETIC)

    # ------------------------------------------------------------------
    # queries

    def call_site_arcs(self) -> list[Arc]:
        """Real (non-synthetic) arcs: one per static call site."""
        return [arc for arc in self.arcs.values() if arc.kind is not ArcKind.SYNTHETIC]

    def arcs_between(self, caller: str, callee: str) -> list[Arc]:
        return [
            arc
            for arc in self.nodes[caller].out_arcs
            if arc.callee == callee
        ]

    def successors(self, name: str) -> set[str]:
        return {arc.callee for arc in self.nodes[name].out_arcs}

    def self_recursive(self, name: str) -> bool:
        """True when the node has an arc to itself (simple recursion)."""
        return any(arc.callee == name for arc in self.nodes[name].out_arcs)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CallGraph {len(self.nodes)} nodes,"
            f" {len(self.arcs)} arcs, entry={self.entry!r}>"
        )
