"""Reachability and function-level dead code elimination (§2.6).

A function is removable when it cannot be reached from ``main``. With
any external function present, the worst case must be assumed — the
external may call anything — so nothing can be removed unless the
caller opts into the aggressive mode (useful for closed programs).
"""

from __future__ import annotations

from repro.callgraph.graph import EXTERNAL_NODE, POINTER_NODE, CallGraph
from repro.il.module import ILModule


def reachable_functions(
    graph: CallGraph,
    entry: str | None = None,
    ignore_external_closure: bool = False,
) -> set[str]:
    """Nodes reachable from the entry by directed paths (entry included).

    With ``ignore_external_closure`` the synthetic worst-case arcs *out
    of* ``$$$`` are skipped — i.e. external functions are assumed not to
    call back into the program. Arcs out of ``###`` are always followed
    (indirect calls are real program behaviour).
    """
    start = entry if entry is not None else graph.entry
    if start not in graph.nodes:
        return set()
    seen = {start}
    frontier = [start]
    while frontier:
        name = frontier.pop()
        if ignore_external_closure and name == EXTERNAL_NODE:
            continue
        for arc in graph.nodes[name].out_arcs:
            if arc.callee not in seen:
                seen.add(arc.callee)
                frontier.append(arc.callee)
    return seen


def eliminate_unreachable(
    module: ILModule,
    graph: CallGraph,
    assume_worst_case: bool = True,
) -> list[str]:
    """Delete functions not reachable from the entry; returns the names.

    ``assume_worst_case`` keeps the paper's conservative stance: when
    the call graph is incomplete (any external call exists), all
    functions are presumed reachable and nothing is removed. Address-
    taken functions are always kept, since an indirect call or an
    asynchronous event (§2.6) could still invoke them.
    """
    has_externals = any(
        arc.callee == EXTERNAL_NODE for arc in graph.call_site_arcs()
    )
    if assume_worst_case and has_externals:
        return []
    reachable = reachable_functions(
        graph, ignore_external_closure=not assume_worst_case
    )
    # ### reachability already covers address-taken functions when an
    # indirect call exists; keep address-taken ones regardless.
    keep = set(reachable) | set(module.address_taken)
    keep.add(module.entry)
    keep.discard(EXTERNAL_NODE)
    keep.discard(POINTER_NODE)
    removed = [name for name in module.functions if name not in keep]
    for name in removed:
        del module.functions[name]
    return removed
