"""Graphviz DOT export of weighted call graphs."""

from __future__ import annotations

from repro.callgraph.graph import (
    EXTERNAL_NODE,
    POINTER_NODE,
    ArcKind,
    ArcStatus,
    CallGraph,
)

_STATUS_COLORS = {
    ArcStatus.EXPANDED: "forestgreen",
    ArcStatus.TO_BE_EXPANDED: "green",
    ArcStatus.REJECTED: "red",
    ArcStatus.NOT_EXPANDABLE: "gray",
    ArcStatus.EXPANDABLE: "black",
}

#: Arc colors keyed by inline-audit reason code (see
#: :mod:`repro.observability.audit`): accepted arcs green, cold arcs
#: gray, hazard rejections red.
_REASON_COLORS = {
    "ACCEPTED": "forestgreen",
    "BELOW_THRESHOLD": "gray",
    "NOT_DIRECT": "gray",
    "ORDER_VIOLATION": "red",
    "SELF_RECURSIVE": "red",
    "RECURSIVE_LIMIT": "red",
    "SIZE_LIMIT": "red",
    "MAX_EXPANSIONS": "red",
}


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def to_dot(
    graph: CallGraph,
    include_synthetic: bool = False,
    min_weight: float = 0.0,
    decisions: dict[int, str] | None = None,
) -> str:
    """Render the call graph as DOT text.

    Node labels carry execution counts, arc labels invocation counts;
    arc colors encode the selection status. Synthetic worst-case arcs
    are hidden unless ``include_synthetic`` is set; ``min_weight`` can
    hide cold arcs in large graphs. With ``decisions`` (a call-site →
    reason-code map from the inline-audit log) arcs are instead colored
    and labeled by the selector's reason for each site, making a
    selection run visually debuggable.
    """
    lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
    for node in graph.nodes.values():
        attributes = [f'label="{node.name}\\n{node.weight:g}"']
        if node.name in (EXTERNAL_NODE, POINTER_NODE):
            attributes.append("style=dashed")
        if node.name == graph.entry:
            attributes.append("style=bold")
        lines.append(f"  {_quote(node.name)} [{', '.join(attributes)}];")
    for arc in graph.arcs.values():
        if arc.kind is ArcKind.SYNTHETIC and not include_synthetic:
            continue
        if arc.kind is not ArcKind.SYNTHETIC and arc.weight < min_weight:
            continue
        color = _STATUS_COLORS.get(arc.status, "black")
        label = f"{arc.weight:g}" if arc.kind is not ArcKind.SYNTHETIC else ""
        if decisions is not None and arc.site in decisions:
            reason = decisions[arc.site]
            color = _REASON_COLORS.get(reason, "black")
            label = f"{label}\\n{reason}" if label else reason
        style = "dotted" if arc.kind is ArcKind.SYNTHETIC else "solid"
        lines.append(
            f"  {_quote(arc.caller)} -> {_quote(arc.callee)}"
            f' [label="{label}", color={color}, style={style}];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
