"""Cycle detection on call graphs.

The paper reduces recursion detection to finding cycles in the call
graph (§2.2). We use Tarjan's strongly-connected-components algorithm
(iterative, so deep graphs cannot overflow Python's stack).
"""

from __future__ import annotations

from repro.callgraph.graph import CallGraph


def find_sccs(graph: CallGraph) -> list[list[str]]:
    """Strongly connected components, in reverse topological order."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in graph.nodes:
        if root in index_of:
            continue
        # Iterative Tarjan: work items are (node, iterator state).
        work = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = graph.nodes[node].out_arcs
            while child_index < len(successors):
                child = successors[child_index].callee
                child_index += 1
                if child not in index_of:
                    work.append((node, child_index))
                    work.append((child, 0))
                    recurse = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def recursive_functions(graph: CallGraph) -> set[str]:
    """Functions on some call-graph cycle.

    A function is recursive when its SCC has more than one member, or
    when it carries a self-arc (the paper's *simple recursion*). The
    worst-case arcs through ``$$$``/``###`` participate, so a function
    that calls an external is conservatively treated as recursive —
    exactly the paper's assumption.
    """
    result: set[str] = set()
    for component in find_sccs(graph):
        if len(component) > 1:
            result.update(component)
    for name in graph.nodes:
        if graph.self_recursive(name):
            result.add(name)
    return result
