"""Construct a weighted call graph from an IL module and a profile.

Follows §3.2 exactly:

1. allocate a node per function,
2. connect nodes for static calls,
3. route calls to unavailable functions through ``$$$`` and calls
   through pointers through ``###``, assuming worst-case behaviour:
   ``$$$`` may call every user function, and ``###`` may reach every
   address-taken function — or *every* function when any external
   exists, because externals could have leaked any address.
"""

from __future__ import annotations

from repro.callgraph.graph import (
    EXTERNAL_NODE,
    POINTER_NODE,
    ArcKind,
    CallGraph,
)
from repro.il.instructions import Opcode
from repro.il.module import ILModule
from repro.observability import Observability, resolve
from repro.profiler.profile import ProfileData


def build_call_graph(
    module: ILModule,
    profile: ProfileData | None = None,
    refine_pointers: bool = False,
    obs: Observability | None = None,
) -> CallGraph:
    """Build the weighted call graph of ``module``.

    Without a profile, all weights are zero (structure-only graph).
    With ``refine_pointers`` the ### successor set is narrowed by the
    signature-based pointer analysis (see
    :mod:`repro.callgraph.pointer_analysis`) instead of the paper's
    worst case; the paper-faithful default assumes the worst.
    """
    graph = CallGraph(module.entry)
    for name in module.functions:
        weight = profile.node_weight(name) if profile else 0.0
        graph.add_node(name, weight)

    has_external_calls = False
    has_pointer_calls = False
    external_weight = 0.0
    pointer_weight = 0.0
    graph.add_node(EXTERNAL_NODE, 0.0)
    graph.add_node(POINTER_NODE, 0.0)

    for caller_name, function in module.functions.items():
        for instr in function.body:
            if instr.op is Opcode.CALL:
                weight = profile.arc_weight(instr.site) if profile else 0.0
                callee = instr.name
                if callee in module.functions:
                    graph.add_arc(instr.site, caller_name, callee, weight)
                else:
                    has_external_calls = True
                    external_weight += weight
                    graph.add_arc(
                        instr.site, caller_name, EXTERNAL_NODE, weight, ArcKind.EXTERNAL
                    )
            elif instr.op is Opcode.ICALL:
                has_pointer_calls = True
                weight = profile.arc_weight(instr.site) if profile else 0.0
                pointer_weight += weight
                graph.add_arc(
                    instr.site, caller_name, POINTER_NODE, weight, ArcKind.POINTER
                )

    graph.node(EXTERNAL_NODE).weight = external_weight
    graph.node(POINTER_NODE).weight = pointer_weight

    # Worst-case closure (§2.5/§3.2). One arc from $$$ to each user
    # function suffices: it keeps cycle detection and conservative
    # function-level dead-code elimination correct.
    if has_external_calls:
        for name in module.functions:
            graph.add_synthetic_arc(EXTERNAL_NODE, name)
    if has_pointer_calls:
        if refine_pointers:
            from repro.callgraph.pointer_analysis import analyze_pointer_calls

            targets = sorted(analyze_pointer_calls(module).all_targets)
        elif has_external_calls:
            # Externals may have captured any function's address, so a
            # call through a pointer may reach any user function.
            targets = list(module.functions)
        else:
            targets = [
                name for name in module.address_taken if name in module.functions
            ]
        for name in targets:
            graph.add_synthetic_arc(POINTER_NODE, name)
        # A pointer call may also land in an external function.
        graph.add_synthetic_arc(POINTER_NODE, EXTERNAL_NODE)

    obs = resolve(obs)
    if obs.enabled:
        kinds: dict[str, int] = {}
        for arc in graph.arcs.values():
            kinds[arc.kind.value] = kinds.get(arc.kind.value, 0) + 1
        metrics = obs.metrics
        metrics.inc("callgraph.builds")
        for kind, count in kinds.items():
            metrics.inc(f"callgraph.arcs_{kind}", count)
        obs.tracer.event(
            "callgraph.built",
            nodes=len(graph.nodes),
            arcs=len(graph.arcs),
            **{f"arcs_{kind}": count for kind, count in sorted(kinds.items())},
        )
    return graph
