"""Weighted call graphs (§2.2, §3.2).

Nodes are functions weighted by execution count; arcs are static call
sites weighted by invocation count, each with a unique id and a status
attribute. Two special nodes model missing information: ``$$$``
(external functions) and ``###`` (calls through pointers).
"""

from repro.callgraph.graph import (
    EXTERNAL_NODE,
    POINTER_NODE,
    Arc,
    ArcKind,
    ArcStatus,
    CallGraph,
    Node,
)
from repro.callgraph.build import build_call_graph
from repro.callgraph.pointer_analysis import (
    PointerCallSummary,
    analyze_pointer_calls,
)
from repro.callgraph.cycles import find_sccs, recursive_functions
from repro.callgraph.reachability import (
    eliminate_unreachable,
    reachable_functions,
)

__all__ = [
    "Arc",
    "ArcKind",
    "ArcStatus",
    "CallGraph",
    "EXTERNAL_NODE",
    "Node",
    "PointerCallSummary",
    "POINTER_NODE",
    "analyze_pointer_calls",
    "build_call_graph",
    "eliminate_unreachable",
    "find_sccs",
    "reachable_functions",
    "recursive_functions",
]
