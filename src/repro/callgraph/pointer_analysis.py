"""Refinement of call-through-pointer callee sets (§2.5).

The paper: "Interprocedural dataflow analysis may reduce the potential
callee sets of call-through-pointer sites", but IMPACT-I skipped it
because external functions force the worst case anyway. This module
implements the refinement for the closed-world case and a sound
signature-based narrowing for the open-world case:

- **address-taken narrowing** (the paper's "maximum set"): only
  functions whose addresses are used in computation can be reached —
  already applied by :func:`repro.callgraph.build.build_call_graph`
  when no external exists;
- **arity narrowing** (ours): a call through a pointer passing k
  arguments can only reach functions of k parameters, because the VM
  (like any real ABI with register windows or stack cleanup) faults on
  a mismatch. This is sound even with externals present, since an
  external can only leak addresses the program took.

The result feeds function-level dead-code elimination and gives cycle
detection fewer spurious cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.il.instructions import Opcode
from repro.il.module import ILModule


@dataclass
class PointerCallSummary:
    """Possible callee sets for every indirect call site."""

    #: site id -> candidate callee names (user functions only).
    callees_by_site: dict[int, set[str]] = field(default_factory=dict)
    #: The union over all sites (the refined ### successor set).
    all_targets: set[str] = field(default_factory=set)
    #: True when an indirect call may still reach an external function.
    may_reach_external: bool = False

    def targets_of(self, site: int) -> set[str]:
        return self.callees_by_site.get(site, set())


def analyze_pointer_calls(module: ILModule) -> PointerCallSummary:
    """Compute refined callee sets for every ICALL site."""
    summary = PointerCallSummary()
    # Candidate pool: address-taken user functions. With externals in
    # the program the pool conservatively also includes every function
    # whose address could have leaked — which is still exactly the
    # address-taken set: taking an address is the only way to leak it.
    pool = {
        name
        for name in module.address_taken
        if name in module.functions
    }
    summary.may_reach_external = any(
        name in module.externals for name in module.address_taken
    ) or bool(module.externals)

    by_arity: dict[int, set[str]] = {}
    for name in pool:
        by_arity.setdefault(len(module.functions[name].params), set()).add(name)

    for _, instr in module.call_sites():
        if instr.op is not Opcode.ICALL:
            continue
        candidates = set(by_arity.get(len(instr.args), set()))
        summary.callees_by_site[instr.site] = candidates
        summary.all_targets |= candidates
    return summary
