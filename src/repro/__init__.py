"""repro — profile-guided inline function expansion for C programs.

A full reproduction of Hwu & Chang, "Inline Function Expansion for
Compiling C Programs" (PLDI 1989): a C-subset compiler front end, a
three-address IL with an executing/profiling VM, the weighted-call-graph
inline expander with the paper's cost function and hazards, the
companion optimizer passes, no-profile baseline heuristics, and the
twelve-benchmark UNIX workload suite with the Table 1–4 harness.

Quickstart::

    from repro import compile_program, profile_module, inline_module, RunSpec, run_once

    module = compile_program(C_SOURCE)
    profile = profile_module(module, [RunSpec(stdin=b"...")])
    result = inline_module(module, profile)
    print(result.code_increase, run_once(result.module).stdout)
"""

from repro.compiler import compile_program, compile_with_analysis
from repro.inliner.manager import InlineExpander, InlineResult, inline_module
from repro.inliner.params import InlineParameters
from repro.observability import Observability
from repro.opt import optimize_function, optimize_module
from repro.pipeline import CompilationSession, PassManager, parse_pass_spec
from repro.profiler.profile import (
    ProfileData,
    RunSpec,
    profile_module,
    run_once,
)
from repro.vm.machine import Machine, RunResult
from repro.vm.os import VirtualOS

__version__ = "1.0.0"

__all__ = [
    "CompilationSession",
    "InlineExpander",
    "InlineParameters",
    "InlineResult",
    "Machine",
    "Observability",
    "PassManager",
    "ProfileData",
    "RunResult",
    "RunSpec",
    "VirtualOS",
    "compile_program",
    "compile_with_analysis",
    "inline_module",
    "optimize_function",
    "optimize_module",
    "parse_pass_spec",
    "profile_module",
    "run_once",
]
