"""Common exception types and source locations for the repro toolchain.

Every stage of the pipeline (preprocessor, lexer, parser, semantic
analysis, lowering, VM) raises a subclass of :class:`ReproError` so that
callers can catch one type at the toolchain boundary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in a source file: 1-based line and column."""

    filename: str = "<input>"
    line: int = 1
    column: int = 1

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used when no better information is available.
UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


class ReproError(Exception):
    """Base class for every error raised by the toolchain."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)


class PreprocessorError(ReproError):
    """Raised for malformed preprocessor directives or macro misuse."""


class LexError(ReproError):
    """Raised for characters or literals the lexer cannot tokenize."""


class ParseError(ReproError):
    """Raised when the token stream does not match the C-subset grammar."""


class SemanticError(ReproError):
    """Raised for type errors, undeclared identifiers, and the like."""


class LoweringError(ReproError):
    """Raised when the AST-to-IL lowering meets an unsupported construct."""


class ILError(ReproError):
    """Raised for malformed IL (verifier failures, bad linkage)."""


class VMError(ReproError):
    """Base class for runtime errors inside the IL virtual machine."""


class VMTrap(VMError):
    """A memory fault, undefined behaviour, or resource exhaustion."""


class InlineError(ReproError):
    """Raised when a physical inline expansion cannot be performed."""


class VerifyError(ReproError):
    """Raised when the differential-correctness harness finds a
    divergence or a broken invariant (see :mod:`repro.verify`)."""
