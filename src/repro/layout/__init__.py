"""Profile-guided code placement.

The companion direction to inline expansion in the IMPACT-I project
(the paper's refs 17–18 cover trace selection and instruction-cache
performance): place functions that call each other hot next to each
other, so call transfers stay within cache lines. Used together with
:mod:`repro.icache` to compare "fix locality by layout" against "fix
locality by inlining".
"""

from repro.layout.placement import (
    PlacementResult,
    affinity_order,
    placement_experiment,
)

__all__ = ["PlacementResult", "affinity_order", "placement_experiment"]
