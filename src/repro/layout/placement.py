"""Pettis–Hansen-style function placement by call affinity.

Greedy chain merging: treat each function as a singleton chain, then
repeatedly merge the two chains connected by the heaviest remaining
call-arc weight, orienting the merge so caller and callee end up
adjacent. The final concatenation is the placement order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.icache.cache import InstructionCache
from repro.il.module import ILModule
from repro.inliner.manager import inline_module
from repro.inliner.params import InlineParameters
from repro.opt import optimize_module
from repro.profiler.profile import ProfileData, RunSpec, profile_module
from repro.vm.machine import Machine
from repro.il.instructions import Opcode


def affinity_order(module: ILModule, profile: ProfileData) -> list[str]:
    """Function order that keeps hot caller/callee pairs adjacent."""
    # Aggregate arc weights between function pairs.
    weights: dict[tuple[str, str], float] = {}
    for caller, instr in module.call_sites():
        if instr.op is not Opcode.CALL or instr.name not in module.functions:
            continue
        if instr.name == caller:
            continue
        key = tuple(sorted((caller, instr.name)))
        weights[key] = weights.get(key, 0.0) + profile.arc_weight(instr.site)

    chain_of: dict[str, int] = {}
    chains: dict[int, list[str]] = {}
    for index, name in enumerate(module.functions):
        chain_of[name] = index
        chains[index] = [name]

    for (a, b), _ in sorted(weights.items(), key=lambda kv: -kv[1]):
        chain_a = chain_of[a]
        chain_b = chain_of[b]
        if chain_a == chain_b:
            continue
        # Orient so the endpoints being joined are adjacent when possible.
        left = chains[chain_a]
        right = chains[chain_b]
        if left[0] == a:
            left.reverse()
        if right[-1] == b:
            right.reverse()
        merged = left + right
        chains[chain_a] = merged
        del chains[chain_b]
        for name in merged:
            chain_of[name] = chain_a

    # Hot chains first (by the max node weight they contain).
    ordered_chains = sorted(
        chains.values(),
        key=lambda chain: -max(profile.node_weight(n) for n in chain),
    )
    return [name for chain in ordered_chains for name in chain]


@dataclass
class PlacementResult:
    """Miss ratios of the layout strategies under one cache config."""

    size_bytes: int
    associativity: int
    miss_scattered: float
    miss_placed: float
    miss_inlined_scattered: float

    @property
    def placement_improvement(self) -> float:
        if self.miss_scattered == 0:
            return 0.0
        return 1.0 - self.miss_placed / self.miss_scattered

    @property
    def inlining_improvement(self) -> float:
        if self.miss_scattered == 0:
            return 0.0
        return 1.0 - self.miss_inlined_scattered / self.miss_scattered


def _miss_ratio(module, specs, size_bytes, associativity, seeds, **kwargs):
    total = 0.0
    for seed in seeds:
        cache = InstructionCache(size_bytes, 16, associativity)
        for spec in specs:
            Machine(
                module, spec.make_os(), icache=cache, layout_seed=seed, **kwargs
            ).run()
        total += cache.stats.miss_ratio
    return total / len(seeds)


def placement_experiment(
    module: ILModule,
    specs: list[RunSpec],
    configs: list[tuple[int, int]] | None = None,
    params: InlineParameters | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> list[PlacementResult]:
    """Compare three locality strategies on the I-cache:

    1. scattered layout (the do-nothing linker),
    2. profile-guided placement of the original program,
    3. inline expansion under the scattered layout (locality made
       internal to functions, robust against placement).
    """
    if configs is None:
        configs = [(512, 1), (1024, 1), (1024, 2)]
    working = module.clone()
    optimize_module(working)
    profile = profile_module(working, specs, check_exit=False)
    order = affinity_order(working, profile)
    inlined = inline_module(working, profile, params).module
    optimize_module(inlined)

    results = []
    for size_bytes, associativity in configs:
        scattered = _miss_ratio(
            working, specs, size_bytes, associativity, seeds,
            code_layout="scattered",
        )
        placed = _miss_ratio(
            working, specs, size_bytes, associativity, (0,),
            function_order=order,
        )
        inlined_scattered = _miss_ratio(
            inlined, specs, size_bytes, associativity, seeds,
            code_layout="scattered",
        )
        results.append(
            PlacementResult(
                size_bytes, associativity, scattered, placed, inlined_scattered
            )
        )
    return results
