"""Intra-procedural analysis infrastructure.

The paper's motivation is that inline expansion "enlarges the scope of
register allocation, code scheduling, and other optimizations" (§1.2);
this package provides the standard analyses such optimizers sit on:
control-flow graphs over the flat IL, dominators, natural-loop
detection, and live-register analysis.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.dominators import dominator_sets, immediate_dominators
from repro.analysis.liveness import LivenessResult, liveness
from repro.analysis.loops import NaturalLoop, call_sites_in_loops, natural_loops

__all__ = [
    "BasicBlock",
    "CFG",
    "LivenessResult",
    "NaturalLoop",
    "build_cfg",
    "call_sites_in_loops",
    "dominator_sets",
    "immediate_dominators",
    "liveness",
    "natural_loops",
]
