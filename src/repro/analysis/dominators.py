"""Dominator computation (iterative set-based algorithm)."""

from __future__ import annotations

from repro.analysis.cfg import CFG


def dominator_sets(cfg: CFG) -> list[set[int]]:
    """dom[b] = set of blocks dominating b (including b itself).

    Unreachable blocks keep the full set, the conventional bottom.
    """
    count = len(cfg.blocks)
    everything = set(range(count))
    dom: list[set[int]] = [everything.copy() for _ in range(count)]
    dom[0] = {0}
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks[1:]:
            if block.predecessors:
                incoming = set.intersection(
                    *(dom[p] for p in block.predecessors)
                )
            else:
                incoming = everything.copy()
            candidate = incoming | {block.index}
            if candidate != dom[block.index]:
                dom[block.index] = candidate
                changed = True
    return dom


def immediate_dominators(cfg: CFG) -> dict[int, int | None]:
    """idom[b] = the unique closest strict dominator (None for entry
    and unreachable blocks)."""
    dom = dominator_sets(cfg)
    reachable = _reachable(cfg)
    idom: dict[int, int | None] = {0: None}
    for block in cfg.blocks[1:]:
        index = block.index
        if index not in reachable:
            idom[index] = None
            continue
        strict = dom[index] - {index}
        # The immediate dominator is the strict dominator dominated by
        # all other strict dominators.
        best = None
        for candidate in strict:
            if all(candidate in dom[other] for other in strict):
                best = candidate
        idom[index] = best
    return idom


def _reachable(cfg: CFG) -> set[int]:
    seen = {0}
    frontier = [0]
    while frontier:
        index = frontier.pop()
        for successor in cfg.blocks[index].successors:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen
