"""Control-flow graphs over the flat IL.

Blocks are derived on demand (the flat list stays the source of truth,
which keeps inline splicing trivial). Leaders are: the first
instruction, every label, and every instruction following a terminator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.il.function import ILFunction
from repro.il.instructions import Instr, Opcode, is_terminator


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run.

    ``start``/``end`` are indices into the function body (end is
    exclusive). ``labels`` holds every label attached to the block head.
    """

    index: int
    start: int
    end: int
    labels: list[str] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)
    predecessors: list[int] = field(default_factory=list)

    def instructions(self, function: ILFunction) -> list[Instr]:
        return function.body[self.start : self.end]


@dataclass
class CFG:
    function: ILFunction
    blocks: list[BasicBlock] = field(default_factory=list)
    #: label name -> index of the block it heads.
    block_of_label: dict[str, int] = field(default_factory=dict)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]


def build_cfg(function: ILFunction) -> CFG:
    """Partition the function into basic blocks and connect them."""
    body = function.body
    cfg = CFG(function)
    if not body:
        cfg.blocks.append(BasicBlock(0, 0, 0))
        return cfg

    # Pass 1: find leaders.
    leaders = {0}
    for index, instr in enumerate(body):
        if instr.op is Opcode.LABEL:
            leaders.add(index)
        elif is_terminator(instr) and index + 1 < len(body):
            leaders.add(index + 1)
    ordered = sorted(leaders)

    # Pass 2: create blocks (labels cling to the following block head).
    for block_index, start in enumerate(ordered):
        end = ordered[block_index + 1] if block_index + 1 < len(ordered) else len(body)
        block = BasicBlock(block_index, start, end)
        cursor = start
        while cursor < end and body[cursor].op is Opcode.LABEL:
            block.labels.append(body[cursor].label)
            cfg.block_of_label[body[cursor].label] = block_index
            cursor += 1
        cfg.blocks.append(block)

    # Merge the case where a label run is split across leaders: a LABEL
    # directly before another leader has end == its own start run; the
    # loop above already mapped each label to its block, because every
    # LABEL is itself a leader and heads its own block whose body then
    # falls through. Now wire edges.
    for block in cfg.blocks:
        last = body[block.end - 1] if block.end > block.start else None
        if last is None:
            if block.index + 1 < len(cfg.blocks):
                _connect(cfg, block.index, block.index + 1)
            continue
        targets = last.labels_used()
        for label in targets:
            _connect(cfg, block.index, cfg.block_of_label[label])
        if not is_terminator(last) and block.index + 1 < len(cfg.blocks):
            _connect(cfg, block.index, block.index + 1)
    return cfg


def _connect(cfg: CFG, source: int, target: int) -> None:
    if target not in cfg.blocks[source].successors:
        cfg.blocks[source].successors.append(target)
    if source not in cfg.blocks[target].predecessors:
        cfg.blocks[target].predecessors.append(source)
