"""Natural-loop detection.

A back edge ``n -> h`` exists when the branch target h dominates n; the
natural loop of that edge is h plus every block that can reach n
without passing through h. This is what the MIPS-style loop-driven
inlining heuristic (§1.2) needs: call sites whose block is inside a
loop body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dominators import dominator_sets
from repro.il.function import ILFunction
from repro.il.instructions import Opcode


@dataclass
class NaturalLoop:
    header: int
    back_edge_source: int
    body: set[int] = field(default_factory=set)

    @property
    def depth_key(self) -> int:
        return len(self.body)


def natural_loops(cfg: CFG) -> list[NaturalLoop]:
    """All natural loops, one per back edge."""
    dom = dominator_sets(cfg)
    loops = []
    for block in cfg.blocks:
        for successor in block.successors:
            if successor in dom[block.index]:
                loops.append(_natural_loop(cfg, successor, block.index))
    return loops


def _natural_loop(cfg: CFG, header: int, source: int) -> NaturalLoop:
    loop = NaturalLoop(header, source, {header, source})
    frontier = [source]
    while frontier:
        index = frontier.pop()
        if index == header:
            continue
        for predecessor in cfg.blocks[index].predecessors:
            if predecessor not in loop.body:
                loop.body.add(predecessor)
                frontier.append(predecessor)
    return loop


def call_sites_in_loops(function: ILFunction) -> set[int]:
    """Site ids of direct calls whose block lies inside some loop."""
    cfg = build_cfg(function)
    loop_blocks: set[int] = set()
    for loop in natural_loops(cfg):
        loop_blocks |= loop.body
    result: set[int] = set()
    for block_index in loop_blocks:
        block = cfg.blocks[block_index]
        for instr in block.instructions(function):
            if instr.op in (Opcode.CALL, Opcode.ICALL):
                result.add(instr.site)
    return result
