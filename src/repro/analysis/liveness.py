"""Live-register analysis (backward iterative dataflow).

Computes, per basic block, the registers live on entry and exit. This
is the analysis a register allocator would consume — the paper's
§1.2 motivation for inlining is precisely to widen its scope — and a
convenient oracle for tests of the optimizer's soundness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import CFG, build_cfg
from repro.il.function import ILFunction


@dataclass
class LivenessResult:
    cfg: CFG
    live_in: list[set[str]] = field(default_factory=list)
    live_out: list[set[str]] = field(default_factory=list)

    def live_anywhere(self) -> set[str]:
        result: set[str] = set()
        for live in self.live_in:
            result |= live
        return result


def _use_def(function: ILFunction, cfg: CFG) -> tuple[list[set[str]], list[set[str]]]:
    uses: list[set[str]] = []
    defs: list[set[str]] = []
    for block in cfg.blocks:
        use: set[str] = set()
        define: set[str] = set()
        for instr in block.instructions(function):
            for reg in instr.source_regs():
                if reg not in define:
                    use.add(reg)
            if instr.dst is not None:
                define.add(instr.dst)
        uses.append(use)
        defs.append(define)
    return uses, defs


def liveness(function: ILFunction) -> LivenessResult:
    """Compute per-block live-in/live-out register sets."""
    cfg = build_cfg(function)
    uses, defs = _use_def(function, cfg)
    count = len(cfg.blocks)
    live_in: list[set[str]] = [set() for _ in range(count)]
    live_out: list[set[str]] = [set() for _ in range(count)]
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            index = block.index
            out: set[str] = set()
            for successor in block.successors:
                out |= live_in[successor]
            incoming = uses[index] | (out - defs[index])
            if out != live_out[index] or incoming != live_in[index]:
                live_out[index] = out
                live_in[index] = incoming
                changed = True
    return LivenessResult(cfg, live_in, live_out)
