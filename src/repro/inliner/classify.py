"""Static call-site classification (Tables 2 and 3).

Every static call site falls into exactly one class:

- ``EXTERNAL``: the callee body is unavailable (library/system call),
- ``POINTER``: call through a pointer — defeats inline expansion,
- ``UNSAFE``: expanding it would push a function body into a recursive
  path with excessive control-stack usage, or its estimated execution
  count is below the threshold (default 10),
- ``SAFE``: everything else — the only candidates for expansion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.callgraph.cycles import recursive_functions
from repro.callgraph.graph import ArcKind, CallGraph
from repro.il.module import ILModule
from repro.inliner.params import InlineParameters
from repro.profiler.profile import ProfileData


class SiteClass(enum.Enum):
    EXTERNAL = "external"
    POINTER = "pointer"
    UNSAFE = "unsafe"
    SAFE = "safe"


@dataclass
class ClassifiedSites:
    """Classification of every static call site of a module."""

    by_site: dict[int, SiteClass] = field(default_factory=dict)
    #: Dynamic (profile-weighted) call counts per class.
    dynamic: dict[SiteClass, float] = field(default_factory=dict)

    @property
    def total_static(self) -> int:
        return len(self.by_site)

    def static_count(self, site_class: SiteClass) -> int:
        return sum(1 for c in self.by_site.values() if c is site_class)

    def static_fraction(self, site_class: SiteClass) -> float:
        total = self.total_static
        return self.static_count(site_class) / total if total else 0.0

    @property
    def total_dynamic(self) -> float:
        return sum(self.dynamic.values())

    def dynamic_fraction(self, site_class: SiteClass) -> float:
        total = self.total_dynamic
        return self.dynamic.get(site_class, 0.0) / total if total else 0.0


def classify_sites(
    module: ILModule,
    graph: CallGraph,
    profile: ProfileData,
    params: InlineParameters | None = None,
) -> ClassifiedSites:
    """Classify every static call site of ``module``."""
    params = params or InlineParameters()
    recursive = recursive_functions(graph)
    result = ClassifiedSites()
    for site_class in SiteClass:
        result.dynamic[site_class] = 0.0

    for arc in graph.call_site_arcs():
        weight = profile.arc_weight(arc.site)
        if arc.kind is ArcKind.EXTERNAL:
            site_class = SiteClass.EXTERNAL
        elif arc.kind is ArcKind.POINTER:
            site_class = SiteClass.POINTER
        else:
            callee = module.functions[arc.callee]
            stack_hazard = (
                (arc.callee in recursive or arc.caller in recursive)
                and callee.stack_usage() > params.stack_bound
            ) or arc.callee == arc.caller
            if stack_hazard or weight < params.weight_threshold:
                site_class = SiteClass.UNSAFE
            else:
                site_class = SiteClass.SAFE
        result.by_site[arc.site] = site_class
        result.dynamic[site_class] += weight
    return result
