"""The cost function of §2.3.3.

::

    cost(G, arc Ai) =
        if (callee is recursive) and (control_stack_usage(Ai) > BOUND):
            INFINITY
        elif weight(Ai) < T:
            INFINITY
        elif code_size(callee) + code_size(program) > limit:
            INFINITY
        else:
            code_size(callee)   # benefit term dropped: call costs are
                                # roughly equal for all sites

The model tracks *current* sizes and frame usage: both are re-evaluated
as expansions are accepted, per §3.4 ("the code size of each function
body must be re-evaluated as new function calls are considered") and §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import Arc, ArcKind, CallGraph
from repro.il.function import CALL_OVERHEAD_BYTES, PARAM_WORD_BYTES
from repro.il.module import ILModule
from repro.inliner.params import InlineParameters
from repro.observability.audit import DecisionReason

INFINITY = float("inf")


@dataclass(frozen=True)
class CostDecision:
    """One cost-function verdict: the cost, why, and what it examined."""

    cost: float
    reason: DecisionReason
    #: Values the reached clauses examined (weight, threshold, sizes,
    #: limits, stack usage) — the audit log's cost inputs.
    inputs: dict


@dataclass
class CostModel:
    """Evaluates arc costs against evolving program state."""

    module: ILModule
    params: InlineParameters
    recursive: set[str]
    #: Current estimated code size per function (IL instructions).
    sizes: dict[str, int] = field(default_factory=dict)
    #: Current estimated frame size per function (bytes).
    frames: dict[str, int] = field(default_factory=dict)
    #: RET count per function. Each RET of an inlined body becomes a
    #: jump plus (for value returns) a move, so it contributes to the
    #: splice size. Inlining *into* a function never changes its own
    #: RET count, so this is a constant per function.
    rets: dict[str, int] = field(default_factory=dict)
    program_size: int = 0
    original_size: int = 0

    def __post_init__(self) -> None:
        from repro.il.instructions import Opcode

        for name, function in self.module.functions.items():
            self.sizes[name] = function.code_size()
            self.frames[name] = function.layout_frame()
            self.rets[name] = sum(
                1 for instr in function.body if instr.op is Opcode.RET
            )
        self.program_size = sum(self.sizes.values())
        self.original_size = self.program_size

    # ------------------------------------------------------------------

    def control_stack_usage(self, arc: Arc) -> int:
        """Control-stack bytes one activation of the callee adds at this
        site (§2.3.2: parameters, saved registers, locals, return value)."""
        callee = self.module.functions[arc.callee]
        return (
            CALL_OVERHEAD_BYTES
            + self.frames[arc.callee]
            + PARAM_WORD_BYTES * len(callee.params)
        )

    def cost(self, arc: Arc) -> float:
        """§2.3.3's cost; INFINITY means the arc must not be expanded."""
        return self.evaluate(arc).cost

    def evaluate(self, arc: Arc) -> CostDecision:
        """§2.3.3's cost plus the clause that fired and its inputs."""
        inputs: dict = {"weight": arc.weight}
        if arc.kind is not ArcKind.DIRECT:
            inputs["kind"] = arc.kind.value
            return CostDecision(INFINITY, DecisionReason.NOT_DIRECT, inputs)
        if arc.caller == arc.callee:
            # Simple recursion is out of scope (§2.3): the recursive
            # call must target the original copy anyway.
            return CostDecision(INFINITY, DecisionReason.SELF_RECURSIVE, inputs)
        # Control-stack hazard (§2.3.2): expanding a call with high
        # stack usage *into a recursion* explodes the stack. The paper's
        # m(x)/n(x) example makes the caller's recursion the danger, its
        # cost function names the callee's; guard both.
        stack_usage = self.control_stack_usage(arc)
        inputs["stack_usage"] = stack_usage
        inputs["stack_bound"] = self.params.stack_bound
        inputs["callee_recursive"] = arc.callee in self.recursive
        inputs["caller_recursive"] = arc.caller in self.recursive
        if (
            arc.callee in self.recursive or arc.caller in self.recursive
        ) and stack_usage > self.params.stack_bound:
            return CostDecision(INFINITY, DecisionReason.RECURSIVE_LIMIT, inputs)
        inputs["weight_threshold"] = self.params.weight_threshold
        if arc.weight < self.params.weight_threshold:
            return CostDecision(INFINITY, DecisionReason.BELOW_THRESHOLD, inputs)
        callee = self.module.functions[arc.callee]
        added = (
            self.sizes[arc.callee] + len(callee.params) + self.rets[arc.callee] - 1
        )
        inputs["callee_size"] = self.sizes[arc.callee]
        inputs["size_delta"] = added
        inputs["program_size"] = self.program_size
        inputs["size_limit"] = self.params.size_limit(self.original_size)
        if self.program_size + added > self.params.size_limit(self.original_size):
            return CostDecision(INFINITY, DecisionReason.SIZE_LIMIT, inputs)
        return CostDecision(
            float(self.sizes[arc.callee]), DecisionReason.ACCEPTED, inputs
        )

    def commit(self, arc: Arc) -> None:
        """Account for an accepted expansion.

        Mirrors :func:`repro.inliner.expand.expand_call_site` exactly:
        the caller gains the callee's body, one parameter-buffer move
        per formal, and one result move per RET (upper bound: value
        calls), while the call instruction itself disappears.
        """
        callee_size = self.sizes[arc.callee]
        callee = self.module.functions[arc.callee]
        added = callee_size + len(callee.params) + self.rets[arc.callee]
        self.sizes[arc.caller] += added - 1  # the call itself goes away
        self.program_size += added - 1
        self.frames[arc.caller] += self.frames[arc.callee]
        # When the caller is inlined later, its body carries the copy's
        # rewritten returns; its own RET count is unchanged.


def make_cost_model(
    module: ILModule,
    graph: CallGraph,
    params: InlineParameters,
) -> CostModel:
    from repro.callgraph.cycles import recursive_functions

    return CostModel(module, params, recursive_functions(graph))
