"""The cost function of §2.3.3.

::

    cost(G, arc Ai) =
        if (callee is recursive) and (control_stack_usage(Ai) > BOUND):
            INFINITY
        elif weight(Ai) < T:
            INFINITY
        elif code_size(callee) + code_size(program) > limit:
            INFINITY
        else:
            code_size(callee)   # benefit term dropped: call costs are
                                # roughly equal for all sites

The model tracks *current* sizes and frame usage: both are re-evaluated
as expansions are accepted, per §3.4 ("the code size of each function
body must be re-evaluated as new function calls are considered") and §5.

Size bookkeeping is reconciled against physical expansion exactly:
:meth:`CostModel.splice_delta` computes the same real-instruction delta
:func:`repro.inliner.expand.expand_call_site` produces (parameter-buffer
moves, one jump per ``RET``, and a result move per ``RET`` *only when
the call site consumes a value* — the spliced ``…/return`` label is a
pseudo-instruction and never counts toward code size). Because the
selector accepts arcs in weight order while physical expansion runs in
linear order, :meth:`CostModel.commit` replays the committed set in
linear order whenever the model knows the sequence, so
``program_size``/``sizes`` always equal what expansion will physically
produce. :class:`~repro.inliner.manager.InlineExpander` asserts this
reconciliation after every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.graph import Arc, ArcKind, CallGraph
from repro.il.function import CALL_OVERHEAD_BYTES, PARAM_WORD_BYTES
from repro.il.module import ILModule
from repro.inliner.params import InlineParameters
from repro.observability.audit import DecisionReason

INFINITY = float("inf")


@dataclass(frozen=True)
class CostDecision:
    """One cost-function verdict: the cost, why, and what it examined."""

    cost: float
    reason: DecisionReason
    #: Values the reached clauses examined (weight, threshold, sizes,
    #: limits, stack usage) — the audit log's cost inputs.
    inputs: dict


@dataclass
class CostModel:
    """Evaluates arc costs against evolving program state."""

    module: ILModule
    params: InlineParameters
    recursive: set[str]
    #: Current estimated code size per function (IL instructions).
    sizes: dict[str, int] = field(default_factory=dict)
    #: Current estimated frame size per function (bytes).
    frames: dict[str, int] = field(default_factory=dict)
    #: RET count per function. Each RET of an inlined body becomes a
    #: jump plus (for value-consuming call sites) a result move, so it
    #: contributes to the splice size. Inlining *into* a function never
    #: changes its own RET count, so this is a constant per function.
    rets: dict[str, int] = field(default_factory=dict)
    #: Valueless-RET count per function: a callee with one can never be
    #: expanded into a value-consuming call site (RETURN_MISMATCH).
    void_rets: dict[str, int] = field(default_factory=dict)
    #: The linear expansion sequence (§3.3). When set, commits replay in
    #: this order so sizes match physical expansion exactly even though
    #: the selector commits in weight order.
    sequence: list[str] | None = None
    program_size: int = 0
    original_size: int = 0

    def __post_init__(self) -> None:
        from repro.il.instructions import Opcode

        for name, function in self.module.functions.items():
            self.sizes[name] = function.code_size()
            self.frames[name] = function.layout_frame()
            self.rets[name] = sum(
                1 for instr in function.body if instr.op is Opcode.RET
            )
            self.void_rets[name] = sum(
                1
                for instr in function.body
                if instr.op is Opcode.RET and instr.a is None
            )
        #: Whether each call site's instruction consumes the result —
        #: exactly when expansion emits a result move per callee RET.
        self._site_consumes_value: dict[int, bool] = {}
        for function in self.module.functions.values():
            for instr in function.body:
                if instr.op is Opcode.CALL:
                    self._site_consumes_value[instr.site] = instr.dst is not None
        self.program_size = sum(self.sizes.values())
        self.original_size = self.program_size
        self._initial_sizes = dict(self.sizes)
        self._initial_frames = dict(self.frames)
        #: Arcs accepted so far, in acceptance (weight) order.
        self.committed: list[Arc] = []

    # ------------------------------------------------------------------

    def control_stack_usage(self, arc: Arc) -> int:
        """Control-stack bytes one activation of the callee adds at this
        site (§2.3.2: parameters, saved registers, locals, return value)."""
        callee = self.module.functions[arc.callee]
        return (
            CALL_OVERHEAD_BYTES
            + self.frames[arc.callee]
            + PARAM_WORD_BYTES * len(callee.params)
        )

    def site_consumes_value(self, site: int) -> bool:
        """Whether the call instruction at ``site`` has a destination."""
        return self._site_consumes_value.get(site, False)

    def splice_delta(self, arc: Arc, sizes: dict[str, int] | None = None) -> int:
        """Real-instruction growth :func:`expand_call_site` causes for
        ``arc``, given the callee sizes in ``sizes`` (default: current).

        Mirrors the splice exactly: the caller gains the callee's body
        (each ``RET`` replaced one-for-one by a jump), one
        parameter-buffer move per formal, and one result move per RET
        *only when the call consumes a value*, while the call itself
        disappears. The appended ``…/return`` label is a
        pseudo-instruction and contributes nothing to code size.
        """
        callee = self.module.functions[arc.callee]
        current = (sizes if sizes is not None else self.sizes)[arc.callee]
        result_moves = self.rets[arc.callee] if self.site_consumes_value(arc.site) else 0
        return current + len(callee.params) + result_moves - 1

    def cost(self, arc: Arc) -> float:
        """§2.3.3's cost; INFINITY means the arc must not be expanded."""
        return self.evaluate(arc).cost

    def evaluate(self, arc: Arc) -> CostDecision:
        """§2.3.3's cost plus the clause that fired and its inputs."""
        inputs: dict = {"weight": arc.weight}
        if arc.kind is not ArcKind.DIRECT:
            inputs["kind"] = arc.kind.value
            return CostDecision(INFINITY, DecisionReason.NOT_DIRECT, inputs)
        if arc.caller == arc.callee:
            # Simple recursion is out of scope (§2.3): the recursive
            # call must target the original copy anyway.
            return CostDecision(INFINITY, DecisionReason.SELF_RECURSIVE, inputs)
        if self.site_consumes_value(arc.site) and self.void_rets.get(arc.callee, 0):
            # Expansion would leave the call's destination register
            # unwritten on the valueless-return path.
            inputs["callee_void_rets"] = self.void_rets[arc.callee]
            inputs["call_consumes_value"] = True
            return CostDecision(INFINITY, DecisionReason.RETURN_MISMATCH, inputs)
        # Control-stack hazard (§2.3.2): expanding a call with high
        # stack usage *into a recursion* explodes the stack. The paper's
        # m(x)/n(x) example makes the caller's recursion the danger, its
        # cost function names the callee's; guard both.
        stack_usage = self.control_stack_usage(arc)
        inputs["stack_usage"] = stack_usage
        inputs["stack_bound"] = self.params.stack_bound
        inputs["callee_recursive"] = arc.callee in self.recursive
        inputs["caller_recursive"] = arc.caller in self.recursive
        if (
            arc.callee in self.recursive or arc.caller in self.recursive
        ) and stack_usage > self.params.stack_bound:
            return CostDecision(INFINITY, DecisionReason.RECURSIVE_LIMIT, inputs)
        inputs["weight_threshold"] = self.params.weight_threshold
        if arc.weight < self.params.weight_threshold:
            return CostDecision(INFINITY, DecisionReason.BELOW_THRESHOLD, inputs)
        added = self.splice_delta(arc)
        inputs["callee_size"] = self.sizes[arc.callee]
        inputs["size_delta"] = added
        inputs["program_size"] = self.program_size
        inputs["size_limit"] = self.params.size_limit(self.original_size)
        if self.program_size + added > self.params.size_limit(self.original_size):
            return CostDecision(INFINITY, DecisionReason.SIZE_LIMIT, inputs)
        return CostDecision(
            float(self.sizes[arc.callee]), DecisionReason.ACCEPTED, inputs
        )

    def commit(self, arc: Arc) -> None:
        """Account for an accepted expansion.

        Matches :func:`repro.inliner.expand.expand_call_site` exactly
        (see :meth:`splice_delta`). When the model knows the linear
        ``sequence``, the whole committed set is replayed in linear
        order — the order physical expansion uses — so nested
        expansions are sized correctly no matter what order the
        selector accepts them in. Without a sequence (direct unit use),
        the delta is applied incrementally, which is exact whenever
        commits already arrive in linear order.
        """
        self.committed.append(arc)
        if self.sequence is not None:
            self._replay()
            return
        delta = self.splice_delta(arc)
        self.sizes[arc.caller] += delta
        self.program_size += delta
        self.frames[arc.caller] += self.frames[arc.callee]
        # When the caller is inlined later, its body carries the copy's
        # rewritten returns; its own RET count is unchanged.

    def _replay(self) -> None:
        """Recompute sizes/frames by replaying commits in linear order.

        Physical expansion finishes every expansion *into* a function
        before that function is copied anywhere (§2.7), so the committed
        arcs grouped by caller and walked in sequence order reproduce
        the exact post-expansion sizes.
        """
        assert self.sequence is not None
        sizes = dict(self._initial_sizes)
        frames = dict(self._initial_frames)
        by_caller: dict[str, list[Arc]] = {}
        for arc in self.committed:
            by_caller.setdefault(arc.caller, []).append(arc)
        for name in self.sequence:
            for arc in by_caller.get(name, ()):
                sizes[arc.caller] += self.splice_delta(arc, sizes)
                frames[arc.caller] += frames[arc.callee]
        self.sizes = sizes
        self.frames = frames
        self.program_size = sum(sizes.values())


def make_cost_model(
    module: ILModule,
    graph: CallGraph,
    params: InlineParameters,
    sequence: list[str] | None = None,
) -> CostModel:
    from repro.callgraph.cycles import recursive_functions

    return CostModel(
        module, params, recursive_functions(graph), sequence=sequence
    )
