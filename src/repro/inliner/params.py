"""Tunable parameters of the inline expander."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class InlineParameters:
    """Knobs of the paper's cost function and hazard guards (§2.3).

    ``weight_threshold``
        T in the cost function: arcs whose expected invocation count is
        below it are never expanded. The paper's static classification
        uses 10 ("an estimated execution count less than 10").
    ``stack_bound``
        BOUND in the cost function: a call that would place more than
        this many bytes of control stack into a recursive cycle is
        rejected (cost = INFINITY), preventing control stack explosion
        (§2.3.2).
    ``size_limit_factor``
        Upper limit on program size as a multiple of the original IL
        size (§2.3.1's "function of the original program size").
    ``size_limit_fixed``
        Alternative fixed instruction-count cap (§2.3.1's "fixed
        number", mandatory on virtual-space-limited machines). ``None``
        means no fixed cap; when both are set the tighter one wins.
    ``max_expansions``
        Safety valve on the number of physical expansions.
    """

    weight_threshold: float = 10.0
    stack_bound: int = 16384
    size_limit_factor: float = 1.25
    size_limit_fixed: int | None = None
    max_expansions: int = 100_000

    def size_limit(self, original_size: int) -> int:
        """Program-size ceiling for an original size, in IL instructions."""
        scaled = int(original_size * self.size_limit_factor)
        if self.size_limit_fixed is not None:
            return min(scaled, self.size_limit_fixed)
        return scaled
