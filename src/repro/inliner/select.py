"""Expansion-site selection (§3.4).

Arcs violating the linear order, and all arcs touching ``$$$``/``###``,
are marked not-expandable. The remaining arcs are visited from heaviest
to lightest; each is accepted when the cost function says it is finite,
and the cost model's size/frame state is updated immediately so later
decisions see the grown caller.

Every arc the selector considers — expandable or not — produces exactly
one :class:`~repro.observability.audit.InlineDecision` in
``SelectionResult.decisions``, so the audit log accounts for 100% of
call-graph arcs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.callgraph.graph import Arc, ArcKind, ArcStatus, CallGraph
from repro.il.module import ILModule
from repro.inliner.cost import INFINITY, CostModel, make_cost_model
from repro.inliner.linearize import order_index
from repro.inliner.params import InlineParameters
from repro.observability import Observability, resolve
from repro.observability.audit import DecisionReason, InlineDecision
from repro.profiler.profile import ProfileData


@dataclass
class SelectionResult:
    """Outcome of the selection phase."""

    #: Arcs to physically expand, heaviest first.
    selected: list[Arc] = field(default_factory=list)
    rejected: list[Arc] = field(default_factory=list)
    not_expandable: list[Arc] = field(default_factory=list)
    #: One audit record per considered arc (every call-site arc of the
    #: graph appears exactly once).
    decisions: list[InlineDecision] = field(default_factory=list)
    #: Projected program size after expansion (IL instructions).
    projected_size: int = 0
    original_size: int = 0
    #: Expected dynamic calls eliminated (sum of selected arc weights).
    expected_calls_eliminated: float = 0.0


def select_sites(
    module: ILModule,
    graph: CallGraph,
    profile: ProfileData,
    sequence: list[str],
    params: InlineParameters | None = None,
    cost_model: CostModel | None = None,
    seed: int = 0,
    obs: Observability | None = None,
) -> SelectionResult:
    """Choose the arcs to expand, following the paper's §3.4."""
    params = params or InlineParameters()
    obs = resolve(obs)
    model = cost_model or make_cost_model(module, graph, params)
    # Give the model the linear order so committed sizes replay exactly
    # as physical expansion will apply them (nested expansions included).
    model.sequence = sequence
    position = order_index(sequence)
    result = SelectionResult(original_size=model.program_size)

    def audit(
        arc: Arc,
        reason: DecisionReason,
        cost: float | None = None,
        inputs: dict | None = None,
    ) -> None:
        result.decisions.append(
            InlineDecision(
                site=arc.site,
                caller=arc.caller,
                callee=arc.callee,
                weight=arc.weight,
                reason=reason,
                cost=cost,
                inputs=inputs if inputs is not None else {},
            )
        )

    expandable: list[Arc] = []
    for arc in graph.call_site_arcs():
        if arc.kind is not ArcKind.DIRECT:
            arc.status = ArcStatus.NOT_EXPANDABLE
            result.not_expandable.append(arc)
            audit(arc, DecisionReason.NOT_DIRECT, inputs={"kind": arc.kind.value})
            continue
        callee_pos = position.get(arc.callee)
        caller_pos = position.get(arc.caller)
        if arc.callee not in module.functions or callee_pos is None:
            # No body (or no place in the sequence at all) — there is
            # nothing to expand. Distinct from an ordering conflict
            # between two available bodies.
            arc.status = ArcStatus.NOT_EXPANDABLE
            result.not_expandable.append(arc)
            audit(
                arc,
                DecisionReason.CALLEE_UNAVAILABLE,
                inputs={
                    "callee_defined": arc.callee in module.functions,
                    "callee_position": callee_pos,
                },
            )
            continue
        if caller_pos is None or callee_pos >= caller_pos:
            arc.status = ArcStatus.NOT_EXPANDABLE
            result.not_expandable.append(arc)
            audit(
                arc,
                DecisionReason.ORDER_VIOLATION,
                inputs={"caller_position": caller_pos, "callee_position": callee_pos},
            )
            continue
        arc.status = ArcStatus.EXPANDABLE
        expandable.append(arc)

    # "Place all expandable arcs randomly in a list; sort the list
    # according to the arc weights" — the shuffle only breaks ties.
    rng = random.Random(seed)
    rng.shuffle(expandable)
    expandable.sort(key=lambda arc: -arc.weight)

    for arc in expandable:
        if len(result.selected) >= params.max_expansions:
            arc.status = ArcStatus.REJECTED
            result.rejected.append(arc)
            audit(
                arc,
                DecisionReason.MAX_EXPANSIONS,
                inputs={"max_expansions": params.max_expansions},
            )
            continue
        decision = model.evaluate(arc)
        if decision.cost < INFINITY:
            arc.status = ArcStatus.TO_BE_EXPANDED
            model.commit(arc)
            result.selected.append(arc)
            result.expected_calls_eliminated += arc.weight
            audit(arc, DecisionReason.ACCEPTED, decision.cost, decision.inputs)
        else:
            arc.status = ArcStatus.REJECTED
            result.rejected.append(arc)
            audit(arc, decision.reason, inputs=decision.inputs)

    # With the sequence set above, commits were replayed in linear
    # order, so this projection equals the physical post-expansion code
    # size exactly; InlineExpander asserts the reconciliation.
    result.projected_size = model.program_size
    if obs.enabled:
        metrics = obs.metrics
        metrics.inc("inliner.arcs_considered", len(result.decisions))
        metrics.inc("inliner.arcs_selected", len(result.selected))
        metrics.inc("inliner.arcs_rejected", len(result.rejected))
        metrics.inc("inliner.arcs_not_expandable", len(result.not_expandable))
        for decision in result.decisions:
            metrics.inc(f"inliner.reason.{decision.reason.value}")
        obs.tracer.event(
            "inliner.selection",
            considered=len(result.decisions),
            selected=len(result.selected),
            projected_size=result.projected_size,
            original_size=result.original_size,
            expected_calls_eliminated=result.expected_calls_eliminated,
        )
    return result
