"""Expansion-site selection (§3.4).

Arcs violating the linear order, and all arcs touching ``$$$``/``###``,
are marked not-expandable. The remaining arcs are visited from heaviest
to lightest; each is accepted when the cost function says it is finite,
and the cost model's size/frame state is updated immediately so later
decisions see the grown caller.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.callgraph.graph import Arc, ArcKind, ArcStatus, CallGraph
from repro.il.module import ILModule
from repro.inliner.cost import INFINITY, CostModel, make_cost_model
from repro.inliner.linearize import order_index
from repro.inliner.params import InlineParameters
from repro.profiler.profile import ProfileData


@dataclass
class SelectionResult:
    """Outcome of the selection phase."""

    #: Arcs to physically expand, heaviest first.
    selected: list[Arc] = field(default_factory=list)
    rejected: list[Arc] = field(default_factory=list)
    not_expandable: list[Arc] = field(default_factory=list)
    #: Projected program size after expansion (IL instructions).
    projected_size: int = 0
    original_size: int = 0
    #: Expected dynamic calls eliminated (sum of selected arc weights).
    expected_calls_eliminated: float = 0.0


def select_sites(
    module: ILModule,
    graph: CallGraph,
    profile: ProfileData,
    sequence: list[str],
    params: InlineParameters | None = None,
    cost_model: CostModel | None = None,
    seed: int = 0,
) -> SelectionResult:
    """Choose the arcs to expand, following the paper's §3.4."""
    params = params or InlineParameters()
    model = cost_model or make_cost_model(module, graph, params)
    position = order_index(sequence)
    result = SelectionResult(original_size=model.program_size)

    expandable: list[Arc] = []
    for arc in graph.call_site_arcs():
        if arc.kind is not ArcKind.DIRECT:
            arc.status = ArcStatus.NOT_EXPANDABLE
            result.not_expandable.append(arc)
            continue
        callee_pos = position.get(arc.callee)
        caller_pos = position.get(arc.caller)
        if callee_pos is None or caller_pos is None or callee_pos >= caller_pos:
            arc.status = ArcStatus.NOT_EXPANDABLE
            result.not_expandable.append(arc)
            continue
        arc.status = ArcStatus.EXPANDABLE
        expandable.append(arc)

    # "Place all expandable arcs randomly in a list; sort the list
    # according to the arc weights" — the shuffle only breaks ties.
    rng = random.Random(seed)
    rng.shuffle(expandable)
    expandable.sort(key=lambda arc: -arc.weight)

    for arc in expandable:
        if len(result.selected) >= params.max_expansions:
            arc.status = ArcStatus.REJECTED
            result.rejected.append(arc)
            continue
        if model.cost(arc) < INFINITY:
            arc.status = ArcStatus.TO_BE_EXPANDED
            model.commit(arc)
            result.selected.append(arc)
            result.expected_calls_eliminated += arc.weight
        else:
            arc.status = ArcStatus.REJECTED
            result.rejected.append(arc)

    result.projected_size = model.program_size
    return result
