"""Profile-guided inline function expansion (the paper's §3).

Pipeline: classify call sites → linearize functions by execution count →
select expansion sites with the hazard-aware cost function → physically
expand in linear order with path-qualified renaming.

>>> from repro.inliner import InlineExpander, InlineParameters
>>> # expander = InlineExpander(module, profile, InlineParameters())
>>> # result = expander.run()
"""

from repro.inliner.classify import SiteClass, classify_sites, ClassifiedSites
from repro.inliner.cost import INFINITY, CostModel
from repro.inliner.expand import ExpansionRecord, expand_call_site
from repro.inliner.linearize import linearize
from repro.inliner.manager import InlineExpander, InlineResult
from repro.inliner.params import InlineParameters
from repro.inliner.select import SelectionResult, select_sites

__all__ = [
    "ClassifiedSites",
    "CostModel",
    "ExpansionRecord",
    "INFINITY",
    "InlineExpander",
    "InlineParameters",
    "InlineResult",
    "SelectionResult",
    "SiteClass",
    "classify_sites",
    "expand_call_site",
    "linearize",
    "select_sites",
]
